//! Quickstart: generate a synthetic fleet, train the paper's
//! classification-tree model, and evaluate it with voting-based detection.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hddpred::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic data-center fleet: 5% of the paper's family "W"
    //    (≈1,100 good drives + 22 that will fail), sampled hourly.
    let dataset = DatasetGenerator::new(FamilyProfile::w().scaled(0.05), 42).generate();
    println!(
        "fleet: {} good + {} failed drives",
        dataset.good_drives().count(),
        dataset.failed_drives().count()
    );

    // 2. The paper's experiment: 13 statistically selected features,
    //    failed samples from the last 168 h before failure, time-based
    //    70/30 split, 11-voter detection.
    let experiment = Experiment::builder()
        .time_window_hours(168)
        .voters(11)
        .build()?;

    // 3. Train the classification tree and evaluate.
    let outcome = experiment.run_ct(&dataset)?;
    println!("CT model: {}", outcome.metrics);
    println!(
        "tree: {} leaves, depth {}",
        outcome.model.tree().n_leaves(),
        outcome.model.tree().depth()
    );

    // 4. Trees are white boxes: print the learned rules (Figure 1 style).
    println!(
        "\nlearned rules:\n{}",
        outcome.model.rules(&experiment.feature_set().names())
    );

    // 5. Classify a fresh sample.
    let spec = dataset.failed_drives().next().expect("has failed drives");
    let series = dataset.series(spec);
    let last = series.len() - 1;
    if let Some(features) = experiment.feature_set().extract(&series, last) {
        println!(
            "last sample of {} classified as: {}",
            spec.id,
            outcome.model.predict(&features)
        );
    }

    // 6. Compile to the flat serving form and persist it as JSON — the
    //    same format `hddpred train --out model.json` writes.
    let saved = SavedModel::from(outcome.model.compile());
    let json = hddpred::hdd_json::to_string(&saved.to_json());
    let restored = SavedModel::from_json(&hddpred::hdd_json::parse(&json)?)?;
    println!(
        "\nsaved model: {} bytes of JSON ({} features), reloads bit-identically",
        json.len(),
        restored.n_features()
    );
    Ok(())
}
