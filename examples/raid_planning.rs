//! Capacity planning with the reliability models: how much reliability —
//! or cost — does failure prediction buy a storage system? (§VI of the
//! paper.)
//!
//! ```text
//! cargo run --release --example raid_planning
//! ```

use hddpred::reliability::{
    mttdl_raid5_with_prediction, mttdl_raid6_no_prediction, mttdl_raid6_with_prediction,
    mttdl_single_drive, PredictionQuality, HOURS_PER_YEAR,
};

const SAS_MTTF: f64 = 1_990_000.0; // enterprise drives
const SATA_MTTF: f64 = 1_390_000.0; // consumer drives
const MTTR: f64 = 8.0;

fn main() {
    // Your prediction model's measured operating point (the paper's CT).
    let ct = PredictionQuality::ct_paper();

    println!("single SATA drive, MTTF 1.39M h:");
    let plain = mttdl_single_drive(SATA_MTTF, MTTR, None) / HOURS_PER_YEAR;
    let with_ct = mttdl_single_drive(SATA_MTTF, MTTR, Some(ct)) / HOURS_PER_YEAR;
    println!("  without prediction: {plain:>10.0} years MTTDL");
    println!(
        "  with the CT model:  {with_ct:>10.0} years MTTDL ({:.0}x)",
        with_ct / plain
    );

    println!("\nplanning a 1000-drive pool:");
    let n = 1000;
    let configs: [(&str, f64); 4] = [
        (
            "SAS RAID-6, no prediction (expensive)",
            mttdl_raid6_no_prediction(SAS_MTTF, MTTR, n),
        ),
        (
            "SATA RAID-6, no prediction",
            mttdl_raid6_no_prediction(SATA_MTTF, MTTR, n),
        ),
        (
            "SATA RAID-6 + CT prediction",
            mttdl_raid6_with_prediction(SATA_MTTF, MTTR, n, ct),
        ),
        (
            "SATA RAID-5 + CT prediction (less redundancy)",
            mttdl_raid5_with_prediction(SATA_MTTF, MTTR, n, ct),
        ),
    ];
    for (label, hours) in configs {
        println!("  {label:<48} {:>12.3e} years", hours / HOURS_PER_YEAR);
    }

    println!("\ntakeaways (the paper's §VI):");
    println!(" * adding prediction to cheap SATA RAID-6 beats expensive SAS RAID-6");
    println!("   without prediction by orders of magnitude;");
    println!(" * RAID-5 + prediction is comparable to RAID-6 without it — you can");
    println!("   trade a whole parity drive per group for a prediction model.");

    // Sensitivity: how good does the model need to be?
    println!("\nsensitivity of 1000-drive SATA RAID-6 MTTDL to detection rate:");
    for k in [0.0, 0.5, 0.8, 0.9, 0.95, 0.99] {
        let quality = PredictionQuality::new(k, 355.0);
        let years = mttdl_raid6_with_prediction(SATA_MTTF, MTTR, n, quality) / HOURS_PER_YEAR;
        println!("  k = {k:<5} -> {years:>12.3e} years");
    }
}
