//! Eight weeks in production: why prediction models must be retrained.
//!
//! Simulates deploying a classification tree over the paper's eight-week
//! horizon under the three updating strategies of §V-B3 and prints the
//! weekly false-alarm rate of each.
//!
//! ```text
//! cargo run --release --example model_lifecycle
//! ```

use hddpred::cart::ClassificationTreeBuilder;
use hddpred::eval::{weekly_far, UpdateStrategy};
use hddpred::prelude::*;

fn main() {
    let dataset = DatasetGenerator::new(FamilyProfile::w().scaled(0.08), 11).generate();
    let experiment = Experiment::builder()
        .voters(11)
        .build()
        .expect("valid configuration");
    let builder = ClassificationTreeBuilder::new();

    println!("weekly false alarm rate (%) of a CT model, weeks 2-8:");
    println!("{:<20} w2    w3    w4    w5    w6    w7    w8", "strategy");
    let strategies = [
        UpdateStrategy::Fixed,
        UpdateStrategy::Accumulation,
        UpdateStrategy::Replacing { cycle_weeks: 1 },
        UpdateStrategy::Replacing { cycle_weeks: 2 },
        UpdateStrategy::Replacing { cycle_weeks: 3 },
    ];
    let mut week8_fixed = 0.0;
    let mut week8_weekly = 0.0;
    for strategy in strategies {
        let outcome = weekly_far(&experiment, &dataset, strategy, |samples| {
            builder.build(samples).expect("trainable").compile()
        });
        let row: Vec<String> = outcome
            .weekly
            .iter()
            .map(|p| format!("{:5.2}", p.far * 100.0))
            .collect();
        println!("{:<20} {}", strategy.label(), row.join(" "));
        match strategy {
            UpdateStrategy::Fixed => week8_fixed = outcome.weekly[6].far,
            UpdateStrategy::Replacing { cycle_weeks: 1 } => {
                week8_weekly = outcome.weekly[6].far;
            }
            _ => {}
        }
    }

    println!();
    if week8_weekly > 0.0 {
        println!(
            "by week 8, the never-updated model false-alarms {:.0}x more than the",
            week8_fixed / week8_weekly
        );
        println!("weekly-retrained one.");
    } else {
        println!(
            "by week 8, the never-updated model false-alarms on {:.2}% of drives;",
            week8_fixed * 100.0
        );
        println!("the weekly-retrained one raised no false alarms at all.");
    }
    println!("moral: retrain weekly on the latest week of telemetry (§V-B3).");
}
