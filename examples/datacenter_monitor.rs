//! Data-center monitoring with the health-degree model: instead of a
//! binary alarm, every drive gets a health score, and warnings are
//! processed in order of urgency — the paper's §III-B deployment story.
//!
//! ```text
//! cargo run --release --example datacenter_monitor
//! ```

use hddpred::eval::HealthTargets;
use hddpred::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DatasetGenerator::new(FamilyProfile::w().scaled(0.05), 7).generate();
    let experiment = Experiment::builder()
        .voters(11)
        .rt_threshold(-0.2)
        .build()?;

    // Train the health-degree model: a CT model first determines each
    // failed training drive's personalized deterioration window, then the
    // regression tree learns health degrees in [-1, +1].
    let outcome = experiment.run_rt(&dataset, HealthTargets::Personalized)?;
    let model = &outcome.model;
    println!("health model: {}", outcome.metrics);

    // Simulate "this morning in the ops room": score every drive's latest
    // sample and triage.
    let now = Hour(160);
    let mut scored: Vec<(hddpred::smart::DriveId, f64)> = Vec::new();
    for spec in dataset.drives() {
        let series = dataset.series_in(spec, Hour(120)..Hour(161));
        if series.is_empty() {
            continue; // already failed by `now`
        }
        let idx = series.len() - 1;
        if let Some(features) = experiment.feature_set().extract(&series, idx) {
            scored.push((spec.id, model.health(&features)));
        }
    }

    let warnings = model.rank_warnings(scored);
    println!(
        "\n{} drives below the warning threshold ({:+.2}) at {now}:",
        warnings.len(),
        model.threshold()
    );
    println!("{:<12} {:>8}  ground truth", "drive", "health");
    for (id, health) in warnings.iter().take(15) {
        let truth = match dataset.get(*id).and_then(|s| s.class.fail_hour()) {
            Some(fail) => format!("fails at {fail}"),
            None => "good (false alarm)".to_string(),
        };
        println!("{:<12} {:>+8.3}  {}", id.to_string(), health, truth);
    }
    println!("\nmost-urgent drives first: back these up and swap them today.");
    Ok(())
}
