//! The quarantine circuit breaker: degraded mode for corrupt feeds.
//!
//! Batch ingestion refuses a whole import when too much of it is
//! quarantined ([`hdd_smart::csv::IngestPolicy`]); a daemon has no
//! "whole import" to refuse. Instead it watches the quarantined fraction
//! over a sliding window of the most recent data rows and *degrades*
//! when the feed turns to garbage: alarms are suppressed (and counted)
//! because a model voting on the survivors of a mostly-corrupt stream is
//! voting on a biased sample.
//!
//! The state machine is the classic three-state breaker, driven by row
//! counts rather than wall-clock time so that every transition is a pure
//! function of the processed line prefix (which is what makes
//! kill-and-restart runs byte-identical):
//!
//! * **Healthy** — alarms flow; trips when the window is full and the
//!   quarantined fraction exceeds the ceiling.
//! * **Degraded** (open) — alarms suppressed for `cooldown` rows while
//!   the window refreshes.
//! * **Recovering** (half-open) — alarms flow again on probation for
//!   `window` rows; one excursion above the ceiling re-trips, a clean
//!   probation closes the breaker.

use hdd_json::{JsonCodec, JsonError, Value};
use std::collections::VecDeque;

/// Sizing and ceiling for the [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding-window length in data rows.
    pub window: usize,
    /// Quarantined fraction above which the breaker trips.
    pub max_fraction: f64,
    /// Rows to stay degraded before going half-open.
    pub cooldown: usize,
}

impl BreakerConfig {
    /// A breaker over the last `window` rows tripping above
    /// `max_fraction`, with a cooldown of one full window.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `cooldown` is zero, or `max_fraction` is
    /// outside `[0, 1]`.
    #[must_use]
    pub fn new(window: usize, max_fraction: f64) -> Self {
        let config = BreakerConfig {
            window,
            max_fraction,
            cooldown: window,
        };
        config.validate();
        config
    }

    fn validate(&self) {
        assert!(self.window >= 1, "breaker window must be at least 1 row");
        assert!(
            self.cooldown >= 1,
            "breaker cooldown must be at least 1 row"
        );
        assert!(
            (0.0..=1.0).contains(&self.max_fraction),
            "breaker ceiling must be a fraction in [0, 1]"
        );
    }
}

/// Where the breaker currently is; the counter is rows remaining in the
/// degraded / probation period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Alarms flow normally.
    Healthy,
    /// Open: alarms suppressed until the counter reaches zero.
    Degraded {
        /// Rows left before going half-open.
        remaining: usize,
    },
    /// Half-open: alarms flow, but the window is on probation.
    Recovering {
        /// Clean rows left before closing.
        probation: usize,
    },
}

impl BreakerState {
    /// Short label for status output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Healthy => "healthy",
            BreakerState::Degraded { .. } => "degraded",
            BreakerState::Recovering { .. } => "recovering",
        }
    }
}

/// The sliding-window quarantine breaker; see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    /// Quarantine flags of the last `≤ window` data rows, oldest first.
    flags: VecDeque<bool>,
    /// Count of `true` flags in the window.
    quarantined: usize,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed (healthy) breaker.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        config.validate();
        CircuitBreaker {
            config,
            flags: VecDeque::with_capacity(config.window),
            quarantined: 0,
            state: BreakerState::Healthy,
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether alarms must be suppressed right now.
    #[must_use]
    pub fn suppressing(&self) -> bool {
        matches!(self.state, BreakerState::Degraded { .. })
    }

    /// Quarantined fraction of the current window (`0.0` while empty).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.flags.is_empty() {
            0.0
        } else {
            self.quarantined as f64 / self.flags.len() as f64
        }
    }

    fn over_ceiling(&self) -> bool {
        self.quarantined as f64 > self.config.max_fraction * self.flags.len() as f64
    }

    /// Record one data row (`quarantined` = it was dropped as unusable)
    /// and advance the state machine. Returns the new state when a
    /// transition happened, for logging.
    pub fn record(&mut self, quarantined: bool) -> Option<BreakerState> {
        if self.flags.len() == self.config.window && self.flags.pop_front() == Some(true) {
            self.quarantined -= 1;
        }
        self.flags.push_back(quarantined);
        self.quarantined += usize::from(quarantined);

        let next = match self.state {
            BreakerState::Healthy => {
                if self.flags.len() == self.config.window && self.over_ceiling() {
                    BreakerState::Degraded {
                        remaining: self.config.cooldown,
                    }
                } else {
                    self.state
                }
            }
            BreakerState::Degraded { remaining } => {
                if remaining <= 1 {
                    BreakerState::Recovering {
                        probation: self.config.window,
                    }
                } else {
                    BreakerState::Degraded {
                        remaining: remaining - 1,
                    }
                }
            }
            BreakerState::Recovering { probation } => {
                if self.over_ceiling() {
                    // One bad excursion on probation re-trips.
                    BreakerState::Degraded {
                        remaining: self.config.cooldown,
                    }
                } else if probation <= 1 {
                    BreakerState::Healthy
                } else {
                    BreakerState::Recovering {
                        probation: probation - 1,
                    }
                }
            }
        };
        let changed = next.label() != self.state.label();
        self.state = next;
        changed.then_some(next)
    }
}

impl JsonCodec for CircuitBreaker {
    fn to_json(&self) -> Value {
        let (state, counter) = match self.state {
            BreakerState::Healthy => ("healthy", 0),
            BreakerState::Degraded { remaining } => ("degraded", remaining),
            BreakerState::Recovering { probation } => ("recovering", probation),
        };
        Value::Obj(vec![
            ("window".to_string(), Value::Num(self.config.window as f64)),
            (
                "max_fraction".to_string(),
                Value::Num(self.config.max_fraction),
            ),
            (
                "cooldown".to_string(),
                Value::Num(self.config.cooldown as f64),
            ),
            (
                "flags".to_string(),
                Value::from_usizes(self.flags.iter().map(|&q| usize::from(q))),
            ),
            ("state".to_string(), Value::Str(state.to_string())),
            ("counter".to_string(), Value::Num(counter as f64)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let config = BreakerConfig {
            window: value.usize_field("window")?,
            max_fraction: value.f64_field("max_fraction")?,
            cooldown: value.usize_field("cooldown")?,
        };
        if config.window == 0 || config.cooldown == 0 || !(0.0..=1.0).contains(&config.max_fraction)
        {
            return Err(JsonError::new("invalid breaker configuration"));
        }
        let raw_flags = value.usize_vec_field("flags")?;
        if raw_flags.len() > config.window {
            return Err(JsonError::new(format!(
                "{} flags in a {}-row breaker window",
                raw_flags.len(),
                config.window
            )));
        }
        let counter = value.usize_field("counter")?;
        let state = match value.str_field("state")? {
            "healthy" => BreakerState::Healthy,
            "degraded" => BreakerState::Degraded { remaining: counter },
            "recovering" => BreakerState::Recovering { probation: counter },
            other => return Err(JsonError::new(format!("unknown breaker state `{other}`"))),
        };
        let flags: VecDeque<bool> = raw_flags.iter().map(|&f| f != 0).collect();
        let quarantined = flags.iter().filter(|&&q| q).count();
        Ok(CircuitBreaker {
            config,
            flags,
            quarantined,
            state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(window: usize, max_fraction: f64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig::new(window, max_fraction))
    }

    #[test]
    fn stays_healthy_below_the_ceiling() {
        let mut b = breaker(10, 0.3);
        for i in 0..100 {
            b.record(i % 5 == 0); // 20% quarantined
        }
        assert_eq!(b.state(), BreakerState::Healthy);
        assert!(!b.suppressing());
    }

    #[test]
    fn trips_only_once_the_window_is_full() {
        let mut b = breaker(10, 0.3);
        // Four straight quarantined rows: 100% of a partial window, but
        // no trip until ten rows have been seen.
        for _ in 0..4 {
            b.record(true);
        }
        assert_eq!(b.state(), BreakerState::Healthy);
        for _ in 0..6 {
            b.record(false);
        }
        assert!(b.suppressing(), "4/10 quarantined is over a 0.3 ceiling");
    }

    #[test]
    fn full_cycle_heals_on_a_clean_feed() {
        let mut b = breaker(10, 0.2);
        let mut transitions = Vec::new();
        // 10 corrupt rows trip it; then a clean feed forever.
        for i in 0..200 {
            if let Some(state) = b.record(i < 10) {
                transitions.push((i, state.label()));
            }
        }
        // Tripped at the 10th row, half-open after the 10-row cooldown,
        // healthy after the 10-row probation.
        assert_eq!(
            transitions,
            vec![(9, "degraded"), (19, "recovering"), (29, "healthy")]
        );
    }

    #[test]
    fn dirty_probation_re_trips() {
        let mut b = breaker(4, 0.25);
        for _ in 0..4 {
            b.record(true);
        }
        assert!(b.suppressing());
        for _ in 0..4 {
            b.record(false); // cooldown passes
        }
        assert!(matches!(b.state(), BreakerState::Recovering { .. }));
        // One bad row is exactly the 1-in-4 ceiling — still on probation.
        b.record(true);
        assert!(matches!(b.state(), BreakerState::Recovering { .. }));
        // A second bad row (2/4 > 0.25) re-trips.
        b.record(true);
        assert!(b.suppressing(), "excursion on probation must re-trip");
    }

    #[test]
    fn fraction_tracks_the_window() {
        let mut b = breaker(4, 0.9);
        assert_eq!(b.fraction(), 0.0);
        b.record(true);
        b.record(false);
        assert!((b.fraction() - 0.5).abs() < 1e-12);
        for _ in 0..4 {
            b.record(false);
        }
        assert_eq!(b.fraction(), 0.0, "old flags slide out");
    }

    #[test]
    fn json_round_trip_preserves_behavior() {
        let mut a = breaker(8, 0.25);
        for i in 0..13 {
            a.record(i % 3 == 0);
        }
        let mut b = CircuitBreaker::from_json(
            &hdd_json::parse(&hdd_json::to_string(&a.to_json())).unwrap(),
        )
        .unwrap();
        assert_eq!(a.state().label(), b.state().label());
        assert_eq!(a.fraction(), b.fraction());
        // Identical future behavior, not just identical snapshots.
        for i in 0..40 {
            let q = i % 2 == 0;
            assert_eq!(a.record(q), b.record(q), "diverged at row {i}");
        }
    }

    #[test]
    fn json_rejects_bad_shapes() {
        let mut b = breaker(4, 0.5);
        b.record(true);
        let text = hdd_json::to_string(&b.to_json());
        for bad in [
            text.replacen("\"window\":4", "\"window\":0", 1),
            text.replacen("\"max_fraction\":0.5", "\"max_fraction\":7", 1),
            text.replacen("healthy", "confused", 1),
            text.replacen("\"flags\":[1]", "\"flags\":[1,0,0,1,1]", 1),
        ] {
            assert!(
                CircuitBreaker::from_json(&hdd_json::parse(&bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_is_rejected() {
        let _ = BreakerConfig::new(0, 0.1);
    }
}
