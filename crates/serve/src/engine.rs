//! The streaming detection engine: per-drive voting state over a line feed.
//!
//! The engine consumes feed lines *in order* and is, by construction, a
//! pure function of the processed line prefix: every counter, voting
//! window and breaker transition advances only when a line commits,
//! never on tick boundaries or wall-clock time. That single invariant is
//! what makes kill-and-restart runs byte-identical — a checkpoint is
//! just "the state after the first `k` lines", and replaying the rest of
//! the feed from there cannot diverge from the uninterrupted run.
//!
//! A batch is processed in three steps:
//!
//! 1. **Decide** (read-only): classify every line — quarantine kinds,
//!    stale/conflicting drops, rotation markers — and extract feature
//!    vectors for the accepted samples against a *preview* of each
//!    drive's history.
//! 2. **Score**: the feature vectors go to the worker pool under the
//!    tick's [`CancelToken`]; on deadline or cancellation *nothing* has
//!    been committed and the whole batch stays queued for the next tick.
//! 3. **Commit** (in feed order): counters, breaker, histories and
//!    voting windows advance line by line; alarms fire (or are
//!    suppressed while degraded) exactly where a serial run would fire
//!    them.
//!
//! Streaming deviates from the batch reader in one documented way: the
//! batch reader buffers a whole drive, sorts, and resolves duplicate
//! timestamps last-write-wins; a daemon cannot hold alarms back to wait
//! for retransmissions, so rows at or before a drive's latest seen hour
//! are dropped (first-write-wins) and counted as stale.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use hdd_eval::{ModelError, Predictor, SavedModel, VotingRule, VotingState};
use hdd_json::{JsonCodec, JsonError, Value};
use hdd_par::{CancelToken, ParError, ThreadPool};
use hdd_smart::csv::{is_header_line, parse_data_line, CsvRow, ValueFault};
use hdd_smart::{DriveClass, Hour, SmartSample, SmartSeries, NUM_ATTRIBUTES};
use hdd_stats::FeatureSet;
use std::collections::BTreeMap;
use std::fmt;

/// One tailed feed line, tagged with where it ends so the engine can
/// checkpoint an exact resume position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedLine {
    /// The line's text (no terminator).
    pub text: String,
    /// Feed offset just past this line.
    pub end_offset: u64,
    /// Rotation generation the offset belongs to.
    pub generation: u64,
}

/// Sizing for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// The paper's `N`: voting-window length per drive.
    pub voters: usize,
    /// How window scores combine into an alarm decision.
    pub rule: VotingRule,
    /// Quarantine circuit-breaker sizing.
    pub breaker: BreakerConfig,
}

impl EngineConfig {
    /// A majority-voting engine with `voters` = `N` and a breaker over
    /// the last 100 rows tripping above `max_quarantine`.
    ///
    /// # Panics
    ///
    /// Panics if `voters` is zero (via the voting state) or the breaker
    /// parameters are invalid.
    #[must_use]
    pub fn new(voters: usize, rule: VotingRule, max_quarantine: f64) -> Self {
        EngineConfig {
            voters,
            rule,
            breaker: BreakerConfig::new(100, max_quarantine),
        }
    }
}

/// One emitted alarm: the sink line is `drive,hour`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alarm {
    /// Drive that alarmed.
    pub drive: u32,
    /// Hour of the sample whose vote tipped the window.
    pub hour: u32,
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.drive, self.hour)
    }
}

/// Everything the daemon counts, serialized into every checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Data rows seen (header and blank lines excluded).
    pub rows_seen: usize,
    /// Rows accepted into a drive's history.
    pub rows_accepted: usize,
    /// Rows that failed structural parsing.
    pub parse_failures: usize,
    /// Rows carrying NaN or infinite values.
    pub non_finite_rows: usize,
    /// Rows with values outside the plausible range.
    pub out_of_range_rows: usize,
    /// Rows contradicting their drive's class metadata.
    pub conflicting_rows: usize,
    /// Rows at or before their drive's latest seen hour (late arrivals
    /// and duplicates; streaming is first-write-wins).
    pub stale_rows: usize,
    /// Feed rotations observed (file shrinkage + mid-stream headers).
    pub rotations: usize,
    /// Queued events shed by backpressure.
    pub dropped_events: usize,
    /// Alarms written to the sink.
    pub alarms_emitted: usize,
    /// Alarm decisions suppressed while degraded.
    pub alarms_suppressed: usize,
    /// Successful hot model reloads.
    pub model_reloads: usize,
    /// Rejected model replacements (kept last-known-good).
    pub reload_failures: usize,
}

impl ServeStats {
    /// Rows dropped as unusable (the breaker's numerator).
    #[must_use]
    pub fn quarantined_rows(&self) -> usize {
        self.parse_failures + self.non_finite_rows + self.out_of_range_rows + self.conflicting_rows
    }
}

/// One entry of [`STAT_FIELDS`]: a stats counter's JSON key plus its
/// shared and mutable accessors.
type StatField = (
    &'static str,
    fn(&ServeStats) -> &usize,
    fn(&mut ServeStats) -> &mut usize,
);

/// `(json key, accessor)` for every stats counter — one table drives the
/// codec in both directions so a field can't be forgotten in one of them.
const STAT_FIELDS: [StatField; 13] = [
    ("rows_seen", |s| &s.rows_seen, |s| &mut s.rows_seen),
    (
        "rows_accepted",
        |s| &s.rows_accepted,
        |s| &mut s.rows_accepted,
    ),
    (
        "parse_failures",
        |s| &s.parse_failures,
        |s| &mut s.parse_failures,
    ),
    (
        "non_finite_rows",
        |s| &s.non_finite_rows,
        |s| &mut s.non_finite_rows,
    ),
    (
        "out_of_range_rows",
        |s| &s.out_of_range_rows,
        |s| &mut s.out_of_range_rows,
    ),
    (
        "conflicting_rows",
        |s| &s.conflicting_rows,
        |s| &mut s.conflicting_rows,
    ),
    ("stale_rows", |s| &s.stale_rows, |s| &mut s.stale_rows),
    ("rotations", |s| &s.rotations, |s| &mut s.rotations),
    (
        "dropped_events",
        |s| &s.dropped_events,
        |s| &mut s.dropped_events,
    ),
    (
        "alarms_emitted",
        |s| &s.alarms_emitted,
        |s| &mut s.alarms_emitted,
    ),
    (
        "alarms_suppressed",
        |s| &s.alarms_suppressed,
        |s| &mut s.alarms_suppressed,
    ),
    (
        "model_reloads",
        |s| &s.model_reloads,
        |s| &mut s.model_reloads,
    ),
    (
        "reload_failures",
        |s| &s.reload_failures,
        |s| &mut s.reload_failures,
    ),
];

impl JsonCodec for ServeStats {
    fn to_json(&self) -> Value {
        Value::Obj(
            STAT_FIELDS
                .iter()
                .map(|(key, get, _)| ((*key).to_string(), Value::Num(*get(self) as f64)))
                .collect(),
        )
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mut stats = ServeStats::default();
        for (key, _, get_mut) in &STAT_FIELDS {
            *get_mut(&mut stats) = value.usize_field(key)?;
        }
        Ok(stats)
    }
}

/// Live state of one drive the feed has mentioned.
#[derive(Debug, Clone, PartialEq)]
struct DriveMonitor {
    class: DriveClass,
    /// Recent samples, strictly increasing in hour, pruned to the
    /// feature set's lookback window — exactly the suffix extraction
    /// can ever reference.
    history: Vec<SmartSample>,
    voting: VotingState,
    /// Latched once an alarm was *emitted* for this drive.
    alarmed: bool,
}

fn class_to_json(class: DriveClass) -> Vec<(String, Value)> {
    match class {
        DriveClass::Good => vec![("failed".to_string(), Value::Bool(false))],
        DriveClass::Failed { fail_hour } => vec![
            ("failed".to_string(), Value::Bool(true)),
            ("fail_hour".to_string(), Value::Num(f64::from(fail_hour.0))),
        ],
    }
}

fn class_from_json(value: &Value) -> Result<DriveClass, JsonError> {
    let failed = value
        .field("failed")?
        .as_bool()
        .ok_or_else(|| JsonError::new("`failed` must be a boolean"))?;
    if failed {
        Ok(DriveClass::Failed {
            fail_hour: Hour(value.usize_field("fail_hour")? as u32),
        })
    } else {
        Ok(DriveClass::Good)
    }
}

impl JsonCodec for DriveMonitor {
    fn to_json(&self) -> Value {
        let mut fields = class_to_json(self.class);
        fields.push(("alarmed".to_string(), Value::Bool(self.alarmed)));
        fields.push((
            "history".to_string(),
            Value::Arr(
                self.history
                    .iter()
                    .map(|s| {
                        Value::Obj(vec![
                            ("hour".to_string(), Value::Num(f64::from(s.hour.0))),
                            (
                                "values".to_string(),
                                Value::from_f64s(s.values.iter().map(|&v| f64::from(v))),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
        fields.push(("voting".to_string(), self.voting.to_json()));
        Value::Obj(fields)
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let class = class_from_json(value)?;
        let alarmed = value
            .field("alarmed")?
            .as_bool()
            .ok_or_else(|| JsonError::new("`alarmed` must be a boolean"))?;
        let raw_history = value
            .field("history")?
            .as_arr()
            .ok_or_else(|| JsonError::new("`history` must be an array"))?;
        let mut history = Vec::with_capacity(raw_history.len());
        for entry in raw_history {
            let hour = Hour(entry.usize_field("hour")? as u32);
            let values = entry.f64_vec_field("values")?;
            if values.len() != NUM_ATTRIBUTES {
                return Err(JsonError::new(format!(
                    "history sample has {} values, expected {NUM_ATTRIBUTES}",
                    values.len()
                )));
            }
            let mut sample = SmartSample {
                hour,
                values: [0.0; NUM_ATTRIBUTES],
            };
            for (slot, v) in sample.values.iter_mut().zip(&values) {
                *slot = *v as f32;
            }
            history.push(sample);
        }
        if !history.windows(2).all(|w| w[0].hour < w[1].hour) {
            return Err(JsonError::new(
                "history must be strictly increasing in time",
            ));
        }
        Ok(DriveMonitor {
            class,
            history,
            voting: VotingState::from_json(value.field("voting")?)?,
            alarmed,
        })
    }
}

/// How one feed line will be handled; computed read-only, committed in
/// feed order.
#[derive(Debug, Clone)]
enum Decision {
    /// Blank line: ignored entirely.
    Blank,
    /// A header line (expected at a generation's start, a rotation
    /// marker anywhere else).
    Header,
    /// Structurally unparseable row.
    ParseFailure,
    /// Parsed row carrying an unusable measurement.
    BadValue(ValueFault),
    /// Row contradicting its drive's class metadata.
    Conflicting,
    /// Row at or before the drive's latest seen hour.
    Stale,
    /// Usable row; `scored` indexes into the batch's feature rows when
    /// the sample had enough history to extract.
    Accept { row: CsvRow, scored: Option<usize> },
}

/// What one committed batch produced.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Alarms to append to the sink, in feed order.
    pub alarms: Vec<Alarm>,
    /// Breaker transitions that happened inside the batch, in order.
    pub transitions: Vec<BreakerState>,
}

/// The streaming engine; see the module docs.
#[derive(Debug)]
pub struct Engine {
    model: SavedModel,
    features: FeatureSet,
    config: EngineConfig,
    drives: BTreeMap<u32, DriveMonitor>,
    breaker: CircuitBreaker,
    stats: ServeStats,
    /// Feed offset just past the last committed line.
    processed_offset: u64,
    /// Rotation generation that offset belongs to.
    generation: u64,
}

impl Engine {
    /// A fresh engine serving `model` over `features`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] when the model does not
    /// score the feature set's dimensionality.
    pub fn new(
        model: SavedModel,
        features: FeatureSet,
        config: EngineConfig,
    ) -> Result<Self, ModelError> {
        model.expect_features(features.len())?;
        // Validate eagerly so a bad config fails at startup, not on the
        // first row.
        let breaker = CircuitBreaker::new(config.breaker);
        let _ = VotingState::new(config.voters, config.rule);
        Ok(Engine {
            model,
            features,
            config,
            drives: BTreeMap::new(),
            breaker,
            stats: ServeStats::default(),
            processed_offset: 0,
            generation: 0,
        })
    }

    /// Feed offset just past the last committed line.
    #[must_use]
    pub fn processed_offset(&self) -> u64 {
        self.processed_offset
    }

    /// Rotation generation the processed offset belongs to.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The counters so far.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// The breaker's current state.
    #[must_use]
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// One-line status summary for the operator log.
    #[must_use]
    pub fn status_line(&self) -> String {
        let s = &self.stats;
        format!(
            "state={} rows={} accepted={} quarantined={} stale={} rotations={} dropped={} \
             alarms={} suppressed={} reloads={} reload_failures={}",
            self.breaker.state().label(),
            s.rows_seen,
            s.rows_accepted,
            s.quarantined_rows(),
            s.stale_rows,
            s.rotations,
            s.dropped_events,
            s.alarms_emitted,
            s.alarms_suppressed,
            s.model_reloads,
            s.reload_failures
        )
    }

    /// Swap in a hot-reloaded model (already validated by the loader).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] when the replacement does
    /// not score the engine's feature dimensionality; the current model
    /// keeps serving.
    pub fn swap_model(&mut self, model: SavedModel) -> Result<(), ModelError> {
        model.expect_features(self.features.len())?;
        self.model = model;
        self.stats.model_reloads += 1;
        Ok(())
    }

    /// Count a rejected model replacement (last-known-good kept).
    pub fn note_reload_failure(&mut self) {
        self.stats.reload_failures += 1;
    }

    /// Count a physical feed rotation observed by the tailer.
    pub fn note_rotation(&mut self) {
        self.stats.rotations += 1;
    }

    /// Count events shed by queue backpressure.
    pub fn note_drops(&mut self, n: usize) {
        self.stats.dropped_events += n;
    }

    /// Process a batch of feed lines under the tick's cancel token.
    ///
    /// All-or-nothing: on `Cancelled`/`DeadlineExceeded` *no* state has
    /// changed and the caller retries the same lines next tick; the
    /// committed outcome is therefore independent of how lines were
    /// grouped into batches.
    ///
    /// # Errors
    ///
    /// Returns [`ParError::Cancelled`] / [`ParError::DeadlineExceeded`]
    /// from the token, or [`ParError::Panic`] if the model panicked
    /// while scoring (a bug, not an operational condition).
    pub fn process(
        &mut self,
        pool: &ThreadPool,
        token: &CancelToken,
        lines: &[FeedLine],
    ) -> Result<BatchOutcome, ParError> {
        token.check().map_err(ParError::from)?;
        let (decisions, rows) = self.decide(lines);
        let scores = if rows.is_empty() {
            Vec::new()
        } else {
            let model = &self.model;
            pool.try_parallel_map_cancel(token, &rows, |features| model.score(features))?
        };
        Ok(self.commit(lines, &decisions, &scores))
    }

    /// Step 1: classify every line read-only and extract feature rows
    /// for accepted samples against per-drive history previews.
    fn decide(&self, lines: &[FeedLine]) -> (Vec<Decision>, Vec<Vec<f64>>) {
        let mut decisions = Vec::with_capacity(lines.len());
        let mut rows: Vec<Vec<f64>> = Vec::new();
        // Drive id → (class, samples incl. rows accepted earlier in this
        // same batch) — the commit phase will arrive at exactly this.
        let mut previews: BTreeMap<u32, (DriveClass, Vec<SmartSample>)> = BTreeMap::new();
        for line in lines {
            if line.text.trim().is_empty() {
                decisions.push(Decision::Blank);
                continue;
            }
            if is_header_line(&line.text) {
                decisions.push(Decision::Header);
                continue;
            }
            let (row, fault) = match parse_data_line(&line.text) {
                Ok(parsed) => parsed,
                Err(_) => {
                    decisions.push(Decision::ParseFailure);
                    continue;
                }
            };
            if let Some(fault) = fault {
                decisions.push(Decision::BadValue(fault));
                continue;
            }
            let preview = previews.entry(row.drive.0).or_insert_with(|| {
                match self.drives.get(&row.drive.0) {
                    Some(monitor) => (monitor.class, monitor.history.clone()),
                    None => (row.class, Vec::new()),
                }
            });
            if preview.0 != row.class {
                decisions.push(Decision::Conflicting);
                continue;
            }
            if preview.1.last().is_some_and(|s| row.sample.hour <= s.hour) {
                decisions.push(Decision::Stale);
                continue;
            }
            preview.1.push(row.sample);
            prune_history(&mut preview.1, self.features.max_lookback_hours());
            let series = SmartSeries::new(row.drive, row.class, preview.1.clone());
            let scored = self
                .features
                .extract(&series, series.len() - 1)
                .map(|features| {
                    rows.push(features);
                    rows.len() - 1
                });
            decisions.push(Decision::Accept { row, scored });
        }
        (decisions, rows)
    }

    /// Step 3: advance counters, breaker, histories and voting windows
    /// line by line, in feed order.
    fn commit(
        &mut self,
        lines: &[FeedLine],
        decisions: &[Decision],
        scores: &[f64],
    ) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        for (line, decision) in lines.iter().zip(decisions) {
            // Where this line starts: the previous line's end, or byte
            // zero right after a rotation.
            let line_start = if line.generation == self.generation {
                self.processed_offset
            } else {
                0
            };
            self.processed_offset = line.end_offset;
            self.generation = line.generation;
            match decision {
                Decision::Blank => {}
                Decision::Header => {
                    // The header at a generation's start is expected; one
                    // appearing mid-stream marks a copy-truncate rotation.
                    if line_start != 0 {
                        self.stats.rotations += 1;
                    }
                }
                Decision::ParseFailure => {
                    self.stats.rows_seen += 1;
                    self.stats.parse_failures += 1;
                    self.record_breaker(true, &mut outcome);
                }
                Decision::BadValue(fault) => {
                    self.stats.rows_seen += 1;
                    match fault {
                        ValueFault::NonFinite => self.stats.non_finite_rows += 1,
                        ValueFault::OutOfRange => self.stats.out_of_range_rows += 1,
                    }
                    self.record_breaker(true, &mut outcome);
                }
                Decision::Conflicting => {
                    self.stats.rows_seen += 1;
                    self.stats.conflicting_rows += 1;
                    self.record_breaker(true, &mut outcome);
                }
                Decision::Stale => {
                    self.stats.rows_seen += 1;
                    self.stats.stale_rows += 1;
                    // Stale rows parsed fine — ordering jitter is not
                    // corruption, so the breaker sees a clean row.
                    self.record_breaker(false, &mut outcome);
                }
                Decision::Accept { row, scored } => {
                    self.stats.rows_seen += 1;
                    self.stats.rows_accepted += 1;
                    self.record_breaker(false, &mut outcome);
                    let monitor = self
                        .drives
                        .entry(row.drive.0)
                        .or_insert_with(|| DriveMonitor {
                            class: row.class,
                            history: Vec::new(),
                            voting: VotingState::new(self.config.voters, self.config.rule),
                            alarmed: false,
                        });
                    monitor.history.push(row.sample);
                    prune_history(&mut monitor.history, self.features.max_lookback_hours());
                    if let Some(idx) = scored {
                        let alarm_vote = monitor.voting.push(scores[*idx]);
                        if alarm_vote && !monitor.alarmed {
                            if self.breaker.suppressing() {
                                self.stats.alarms_suppressed += 1;
                            } else {
                                monitor.alarmed = true;
                                self.stats.alarms_emitted += 1;
                                outcome.alarms.push(Alarm {
                                    drive: row.drive.0,
                                    hour: row.sample.hour.0,
                                });
                            }
                        }
                    }
                }
            }
        }
        outcome
    }

    fn record_breaker(&mut self, quarantined: bool, outcome: &mut BatchOutcome) {
        if let Some(state) = self.breaker.record(quarantined) {
            outcome.transitions.push(state);
        }
    }

    /// Serialize everything a checkpoint needs to resume this engine.
    #[must_use]
    pub fn state_to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "offset".to_string(),
                Value::Num(self.processed_offset as f64),
            ),
            ("generation".to_string(), Value::Num(self.generation as f64)),
            ("stats".to_string(), self.stats.to_json()),
            ("breaker".to_string(), self.breaker.to_json()),
            (
                "drives".to_string(),
                Value::Arr(
                    self.drives
                        .iter()
                        .map(|(id, monitor)| {
                            let mut fields =
                                vec![("drive".to_string(), Value::Num(f64::from(*id)))];
                            if let Value::Obj(monitor_fields) = monitor.to_json() {
                                fields.extend(monitor_fields);
                            }
                            Value::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Restore state serialized by [`Engine::state_to_json`], replacing
    /// whatever this engine held.
    ///
    /// The model and feature set are *not* part of the state — the
    /// caller loads the (possibly newer) model file separately; restored
    /// drives keep their checkpointed voting windows even if the
    /// configured voter count changed in between.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the document does not describe a valid
    /// engine state.
    pub fn restore_state(&mut self, value: &Value) -> Result<(), JsonError> {
        let offset = value.usize_field("offset")? as u64;
        let generation = value.usize_field("generation")? as u64;
        let stats = ServeStats::from_json(value.field("stats")?)?;
        let breaker = CircuitBreaker::from_json(value.field("breaker")?)?;
        let raw_drives = value
            .field("drives")?
            .as_arr()
            .ok_or_else(|| JsonError::new("`drives` must be an array"))?;
        let mut drives = BTreeMap::new();
        for entry in raw_drives {
            let id = entry.usize_field("drive")? as u32;
            if drives.insert(id, DriveMonitor::from_json(entry)?).is_some() {
                return Err(JsonError::new(format!("drive {id} appears twice")));
            }
        }
        self.processed_offset = offset;
        self.generation = generation;
        self.stats = stats;
        self.breaker = breaker;
        self.drives = drives;
        Ok(())
    }
}

/// Drop samples too old for any feature lookback from `newest`: a sample
/// is kept iff `hour + lookback >= newest.hour`, exactly the
/// `change_rate_at` search bound, so extraction over the pruned history
/// is bit-identical to extraction over the full series.
fn prune_history(history: &mut Vec<SmartSample>, lookback: u32) {
    if let Some(newest) = history.last().map(|s| s.hour.0) {
        history.retain(|s| s.hour.0 + lookback >= newest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd_cart::classifier::ClassificationTreeBuilder;
    use hdd_cart::sample::{Class, ClassSample};
    use hdd_eval::VotingDetector;
    use hdd_smart::csv::{write_header, write_series};
    use hdd_smart::rng::DeterministicRng;
    use hdd_smart::{DatasetGenerator, FamilyProfile};

    const VOTERS: usize = 11;

    fn fleet() -> Vec<SmartSeries> {
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.004), 99).generate();
        ds.drives().iter().map(|spec| ds.series(spec)).collect()
    }

    /// Train a small CT on the fleet, mirroring the CLI's training set.
    fn model(series: &[SmartSeries], features: &FeatureSet) -> SavedModel {
        let rng = DeterministicRng::new(0x5EED);
        let mut samples = Vec::new();
        for (d, s) in series.iter().enumerate() {
            match s.class.fail_hour() {
                None => {
                    for k in 0..3u64 {
                        let u = rng.uniform(d as u64, k);
                        let idx = (u * s.len() as f64) as usize;
                        if let Some(f) = features.extract(s, idx) {
                            samples.push(ClassSample::new(f, Class::Good));
                        }
                    }
                }
                Some(fail) => {
                    for idx in 0..s.len() {
                        if s.samples()[idx].hour.0 + 168 < fail.0 {
                            continue;
                        }
                        if let Some(f) = features.extract(s, idx) {
                            samples.push(ClassSample::new(f, Class::Failed));
                        }
                    }
                }
            }
        }
        let tree = ClassificationTreeBuilder::new().build(&samples).unwrap();
        SavedModel::from(tree.compile())
    }

    /// CSV-encode a fleet and split it into tagged feed lines.
    fn feed_lines(series: &[SmartSeries]) -> Vec<FeedLine> {
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        for s in series {
            write_series(&mut buf, s).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let mut lines = Vec::new();
        let mut offset = 0u64;
        for line in text.lines() {
            offset += line.len() as u64 + 1;
            lines.push(FeedLine {
                text: line.to_string(),
                end_offset: offset,
                generation: 0,
            });
        }
        lines
    }

    fn engine(model: SavedModel, features: &FeatureSet) -> Engine {
        Engine::new(
            model,
            features.clone(),
            EngineConfig::new(VOTERS, VotingRule::Majority, 0.1),
        )
        .unwrap()
    }

    /// Run lines through an engine in batches of `batch`, concatenating
    /// the emitted alarms.
    fn run(engine: &mut Engine, lines: &[FeedLine], batch: usize) -> Vec<Alarm> {
        let pool = ThreadPool::global();
        let token = CancelToken::new();
        let mut alarms = Vec::new();
        for chunk in lines.chunks(batch.max(1)) {
            alarms.extend(engine.process(&pool, &token, chunk).unwrap().alarms);
        }
        alarms
    }

    #[test]
    fn streaming_matches_batch_detection() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let lines = feed_lines(&series);

        let mut eng = engine(model.clone(), &features);
        let streamed = run(&mut eng, &lines, 37);

        let detector = VotingDetector::new(&model, &features, VOTERS, VotingRule::Majority);
        let mut expected = Vec::new();
        for s in &series {
            if let Some(hour) = detector.first_alarm(s, Hour(0)..Hour(u32::MAX)) {
                expected.push(Alarm {
                    drive: s.drive.0,
                    hour: hour.0,
                });
            }
        }
        assert!(!expected.is_empty(), "fleet must produce reference alarms");
        assert_eq!(streamed, expected);
        assert_eq!(eng.stats().rows_seen, eng.stats().rows_accepted);
    }

    #[test]
    fn batch_size_cannot_change_the_outcome() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let lines = feed_lines(&series);
        let reference = run(&mut engine(model.clone(), &features), &lines, usize::MAX);
        for batch in [1, 3, 64] {
            let mut eng = engine(model.clone(), &features);
            assert_eq!(run(&mut eng, &lines, batch), reference, "batch={batch}");
        }
    }

    #[test]
    fn checkpoint_split_resumes_bit_identically() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let lines = feed_lines(&series);

        let mut reference_engine = engine(model.clone(), &features);
        let reference = run(&mut reference_engine, &lines, 64);
        let reference_state = hdd_json::to_string(&reference_engine.state_to_json());

        for split in [0, 1, 17, lines.len() / 2, lines.len() - 1] {
            let mut first = engine(model.clone(), &features);
            let mut alarms = run(&mut first, &lines[..split], 64);
            let snapshot = first.state_to_json();
            // Serialize through text, like a real checkpoint file.
            let restored = hdd_json::parse(&hdd_json::to_string(&snapshot)).unwrap();
            let mut second = engine(model.clone(), &features);
            second.restore_state(&restored).unwrap();
            alarms.extend(run(&mut second, &lines[split..], 64));
            assert_eq!(alarms, reference, "split at line {split}");
            assert_eq!(
                hdd_json::to_string(&second.state_to_json()),
                reference_state,
                "state after split at line {split}"
            );
        }
    }

    /// An engine whose rule alarms on any full window, so alarm flow can
    /// be tested without caring what the model outputs.
    fn always_alarm_engine(features: &FeatureSet, model: SavedModel) -> Engine {
        Engine::new(
            model,
            features.clone(),
            EngineConfig {
                voters: 3,
                rule: VotingRule::MeanBelow(f64::MAX),
                breaker: BreakerConfig {
                    window: 4,
                    max_fraction: 0.25,
                    // Long enough that degraded mode covers the first
                    // alarm votes below.
                    cooldown: 16,
                },
            },
        )
        .unwrap()
    }

    /// A well-formed good-drive row.
    fn data_row(drive: u32, hour: u32) -> String {
        let mut out = format!("{drive},0,,{hour}");
        for i in 0..NUM_ATTRIBUTES {
            out.push_str(&format!(",{}", i + 1));
        }
        out
    }

    fn tagged(lines: &[String]) -> Vec<FeedLine> {
        let mut offset = 0u64;
        lines
            .iter()
            .map(|text| {
                offset += text.len() as u64 + 1;
                FeedLine {
                    text: text.clone(),
                    end_offset: offset,
                    generation: 0,
                }
            })
            .collect()
    }

    #[test]
    fn degraded_mode_suppresses_alarms_and_recovers() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let mut eng = always_alarm_engine(&features, model);
        let pool = ThreadPool::global();
        let token = CancelToken::new();

        // Trip the breaker (4-row window, 0.25 ceiling, cooldown 16).
        let garbage: Vec<String> = (0..4).map(|i| format!("garbage-{i}")).collect();
        let outcome = eng.process(&pool, &token, &tagged(&garbage)).unwrap();
        assert_eq!(outcome.transitions.len(), 1);
        assert!(eng.breaker_state() != BreakerState::Healthy);

        // Drive 7 would alarm at hour 8 (3 scored samples from hour 6);
        // while degraded the decision is suppressed and counted.
        let rows: Vec<String> = (0..=8).map(|h| data_row(7, h)).collect();
        let outcome = eng.process(&pool, &token, &tagged(&rows)).unwrap();
        assert!(outcome.alarms.is_empty(), "degraded mode must suppress");
        assert!(eng.stats().alarms_suppressed >= 1);

        // A long clean stretch exhausts the cooldown (half-open at hour
        // 15) and the probation (healthy at hour 19); the drive was
        // never latched, so the first vote after suppression ends fires
        // for real, exactly once.
        let more: Vec<String> = (9..40).map(|h| data_row(7, h)).collect();
        let outcome = eng.process(&pool, &token, &tagged(&more)).unwrap();
        assert_eq!(eng.breaker_state(), BreakerState::Healthy);
        assert_eq!(
            outcome.alarms,
            vec![Alarm { drive: 7, hour: 15 }],
            "first vote after recovery fires once"
        );
        assert_eq!(eng.stats().alarms_emitted, 1);
        assert_eq!(eng.stats().alarms_suppressed, 7);
    }

    #[test]
    fn stale_and_conflicting_rows_are_dropped_and_counted() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let mut eng = engine(model, &features);
        let pool = ThreadPool::global();
        let token = CancelToken::new();

        let mut failed_row = data_row(5, 3);
        failed_row = failed_row.replacen(",0,,", ",1,500,", 1);
        let lines = vec![
            data_row(5, 1),
            data_row(5, 2),
            data_row(5, 2), // duplicate hour: stale
            data_row(5, 1), // late arrival: stale
            failed_row,     // class conflict
            data_row(5, 3),
        ];
        let outcome = eng.process(&pool, &token, &tagged(&lines)).unwrap();
        assert!(outcome.alarms.is_empty());
        let stats = eng.stats();
        assert_eq!(stats.rows_seen, 6);
        assert_eq!(stats.rows_accepted, 3);
        assert_eq!(stats.stale_rows, 2);
        assert_eq!(stats.conflicting_rows, 1);
    }

    #[test]
    fn mid_stream_headers_count_as_rotations() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let mut eng = engine(model, &features);
        let pool = ThreadPool::global();
        let token = CancelToken::new();

        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        let header = String::from_utf8(buf).unwrap().trim_end().to_string();
        let lines = vec![
            header.clone(), // expected at start: not a rotation
            data_row(1, 1),
            header.clone(), // mid-stream: rotation marker
            data_row(1, 2),
            String::new(), // blank: ignored
        ];
        eng.process(&pool, &token, &tagged(&lines)).unwrap();
        let stats = eng.stats();
        assert_eq!(stats.rotations, 1);
        assert_eq!(stats.rows_seen, 2);
        eng.note_rotation();
        assert_eq!(eng.stats().rotations, 2);
    }

    #[test]
    fn cancelled_batch_commits_nothing() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let mut eng = engine(model, &features);
        let pool = ThreadPool::global();

        let lines = tagged(&(0..20).map(|h| data_row(9, h)).collect::<Vec<_>>());
        let token = CancelToken::new();
        token.cancel();
        let err = eng.process(&pool, &token, &lines).unwrap_err();
        assert!(matches!(err, ParError::Cancelled), "{err}");
        assert_eq!(eng.stats(), ServeStats::default(), "nothing committed");
        assert_eq!(eng.processed_offset(), 0);

        // The identical retry under a fresh token commits normally.
        let retried = eng.process(&pool, &CancelToken::new(), &lines).unwrap();
        let _ = retried;
        assert_eq!(eng.stats().rows_seen, 20);
    }

    #[test]
    fn swap_model_enforces_the_feature_contract() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let m = model(&series, &features);
        let mut eng = engine(m.clone(), &features);

        // A 2-feature model cannot replace a 13-feature one.
        let narrow_samples: Vec<ClassSample> = (0..100)
            .map(|i| {
                let x = (i % 13) as f64;
                let class = if x < 6.0 { Class::Failed } else { Class::Good };
                ClassSample::new(vec![x, 1.0], class)
            })
            .collect();
        let narrow = ClassificationTreeBuilder::new()
            .build(&narrow_samples)
            .unwrap();
        let err = eng
            .swap_model(SavedModel::from(narrow.compile()))
            .unwrap_err();
        assert!(matches!(err, ModelError::FeatureMismatch { .. }), "{err}");
        eng.note_reload_failure();
        assert_eq!(eng.stats().reload_failures, 1);
        assert_eq!(eng.stats().model_reloads, 0);

        eng.swap_model(m).unwrap();
        assert_eq!(eng.stats().model_reloads, 1);
    }

    #[test]
    fn restore_rejects_malformed_state() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let mut eng = engine(model, &features);
        let good = hdd_json::to_string(&eng.state_to_json());
        for bad in [
            good.replacen("\"offset\"", "\"offzet\"", 1),
            good.replacen("\"drives\":[]", "\"drives\":7", 1),
        ] {
            assert!(
                eng.restore_state(&hdd_json::parse(&bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }
}
