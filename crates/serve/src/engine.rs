//! One detection shard: per-drive voting state over its routed lines.
//!
//! An [`EngineShard`] consumes the [`RoutedLine`]s the ingest layer
//! assigned to it *in routing order* and is, by construction, a pure
//! function of that committed line prefix: every counter, voting window
//! and breaker transition advances only when a line commits, never on
//! tick boundaries or wall-clock time. That single invariant is what
//! makes kill-and-restart runs byte-identical — a shard checkpoint is
//! just "the state after the first `k` lines routed here", and
//! replaying the rest of the feeds from there cannot diverge from the
//! uninterrupted run.
//!
//! Replay is keyed by sequence number: a shard's per-feed
//! [`FeedCursor`]s record the next unprocessed line index of each feed,
//! and a replayed line whose index is below the cursor is skipped with
//! **zero** state effect — it must not touch counters, the breaker
//! window, or voting, or a resumed run would diverge from an
//! uninterrupted one.
//!
//! A batch is processed in three steps:
//!
//! 1. **Decide** (read-only): classify every line — replay skips,
//!    quarantine kinds, stale/conflicting drops — and extract feature
//!    vectors for the accepted samples against a *preview* of each
//!    drive's history.
//! 2. **Score**: the feature vectors go to the worker pool under the
//!    tick's [`CancelToken`]; on deadline or cancellation *nothing* has
//!    been committed and the whole batch stays queued for the next tick.
//! 3. **Commit** (in routing order): counters, breaker, histories,
//!    voting windows and feed cursors advance line by line; alarms are
//!    produced (or suppressed while degraded) exactly where a serial
//!    run would produce them, tagged with their line's seq and buffered
//!    in the shard's *unmerged* list until the topology merge emits
//!    them in global seq order.
//!
//! Streaming deviates from the batch reader in one documented way: the
//! batch reader buffers a whole drive, sorts, and resolves duplicate
//! timestamps last-write-wins; a daemon cannot hold alarms back to wait
//! for retransmissions, so rows at or before a drive's latest seen hour
//! are dropped (first-write-wins) and counted as stale.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::ingest::{FeedCursor, RoutedLine};
use crate::monitor::{prune_history, Decision, DriveMonitor};
use crate::stats::ShardStats;
use hdd_eval::{FeatureMatrix, ModelError, Predictor, SavedModel, VotingRule, VotingState};
use hdd_json::{JsonCodec, JsonError, Value};
use hdd_par::{CancelToken, ParError, ThreadPool};
use hdd_smart::csv::{parse_data_line, ValueFault};
use hdd_smart::{DriveClass, SmartSeries};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Rows per scoring chunk in [`EngineShard::process`]. Fixed (not derived
/// from the thread count) so chunk contents — and therefore the exact
/// floating-point scores — are a pure function of the batch.
const SCORE_CHUNK_ROWS: usize = 256;

/// Sizing for an [`EngineShard`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// The paper's `N`: voting-window length per drive.
    pub voters: usize,
    /// How window scores combine into an alarm decision.
    pub rule: VotingRule,
    /// Quarantine circuit-breaker sizing.
    pub breaker: BreakerConfig,
}

impl EngineConfig {
    /// A majority-voting engine with `voters` = `N` and a breaker over
    /// the last 100 rows tripping above `max_quarantine`.
    ///
    /// # Panics
    ///
    /// Panics if `voters` is zero (via the voting state) or the breaker
    /// parameters are invalid.
    #[must_use]
    pub fn new(voters: usize, rule: VotingRule, max_quarantine: f64) -> Self {
        EngineConfig {
            voters,
            rule,
            breaker: BreakerConfig::new(100, max_quarantine),
        }
    }
}

/// One produced alarm: the sink line is `drive,hour`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alarm {
    /// Drive that alarmed.
    pub drive: u32,
    /// Hour of the sample whose vote tipped the window.
    pub hour: u32,
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.drive, self.hour)
    }
}

/// One committed, accepted, *scored* row, recorded for the model
/// lifecycle (training buffer + shadow scorer) when event recording is
/// enabled. Events carry the row's ground-truth labels (the feed format
/// embeds class and fail hour), the extracted feature vector the
/// incumbent scored, and the incumbent's score — everything a candidate
/// model needs to be trained and shadow-evaluated without re-reading
/// feeds. Like alarms, events are tagged with the line's seq so the
/// topology can release them in global order.
#[derive(Debug, Clone, PartialEq)]
pub struct RowEvent {
    /// Seq of the committed line this row arrived on.
    pub seq: u64,
    /// Drive the row belongs to.
    pub drive: u32,
    /// Hour of the sample.
    pub hour: u32,
    /// The drive's labelled failure hour (`None` for good drives).
    pub fail_hour: Option<u32>,
    /// Feature vector extracted against the drive's history.
    pub features: Vec<f64>,
    /// The incumbent model's score for this row.
    pub incumbent_score: f64,
}

impl JsonCodec for RowEvent {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("seq".to_string(), Value::Num(self.seq as f64)),
            ("drive".to_string(), Value::Num(f64::from(self.drive))),
            ("hour".to_string(), Value::Num(f64::from(self.hour))),
        ];
        if let Some(fail) = self.fail_hour {
            fields.push(("fail_hour".to_string(), Value::Num(f64::from(fail))));
        }
        fields.push((
            "features".to_string(),
            Value::from_f64s(self.features.iter().copied()),
        ));
        fields.push(("score".to_string(), Value::Num(self.incumbent_score)));
        Value::Obj(fields)
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let fail_hour = match value.get("fail_hour") {
            None => None,
            Some(v) => Some(
                v.as_usize()
                    .ok_or_else(|| JsonError::expected("an hour", "fail_hour"))?
                    as u32,
            ),
        };
        Ok(RowEvent {
            seq: value.usize_field("seq")? as u64,
            drive: value.usize_field("drive")? as u32,
            hour: value.usize_field("hour")? as u32,
            fail_hour,
            features: value.f64_vec_field("features")?,
            incumbent_score: value.f64_field("score")?,
        })
    }
}

/// An alarm tagged with the seq of the line that raised it — the merge
/// stage's global order key (seqs are unique, one line raises at most
/// one alarm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqAlarm {
    /// Seq of the committed line whose vote tipped the window.
    pub seq: u64,
    /// The alarm itself.
    pub alarm: Alarm,
}

impl JsonCodec for SeqAlarm {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("seq".to_string(), Value::Num(self.seq as f64)),
            ("drive".to_string(), Value::Num(f64::from(self.alarm.drive))),
            ("hour".to_string(), Value::Num(f64::from(self.alarm.hour))),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(SeqAlarm {
            seq: value.usize_field("seq")? as u64,
            alarm: Alarm {
                drive: value.usize_field("drive")? as u32,
                hour: value.usize_field("hour")? as u32,
            },
        })
    }
}

/// What one committed batch produced.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Alarms produced by this batch, in routing order (also appended
    /// to the shard's unmerged list).
    pub alarms: Vec<SeqAlarm>,
    /// Breaker transitions that happened inside the batch, in order.
    pub transitions: Vec<BreakerState>,
    /// Lines skipped because a cursor showed them already committed
    /// before a crash (zero state effect; an operational counter, not
    /// part of the checkpointed stream state).
    pub replayed: usize,
}

/// One detection shard; see the module docs.
#[derive(Debug)]
pub struct EngineShard {
    model: Arc<SavedModel>,
    features: hdd_stats::FeatureSet,
    config: EngineConfig,
    n_feeds: usize,
    drives: BTreeMap<u32, DriveMonitor>,
    breaker: CircuitBreaker,
    stats: ShardStats,
    /// Per-feed replay cursors; see [`FeedCursor`].
    cursors: Vec<FeedCursor>,
    /// Alarms produced but not yet emitted by the topology merge.
    unmerged: Vec<SeqAlarm>,
    /// Whether committed scored rows are recorded as [`RowEvent`]s.
    record_events: bool,
    /// Events recorded but not yet released by the topology merge.
    events: Vec<RowEvent>,
}

impl EngineShard {
    /// A fresh shard serving `model` over `features`, consuming lines
    /// routed from `n_feeds` feeds.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] when the model does not
    /// score the feature set's dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `n_feeds` is zero.
    pub fn new(
        model: Arc<SavedModel>,
        features: hdd_stats::FeatureSet,
        config: EngineConfig,
        n_feeds: usize,
    ) -> Result<Self, ModelError> {
        assert!(n_feeds >= 1, "at least one feed is required");
        model.expect_features(features.len())?;
        // Validate eagerly so a bad config fails at startup, not on the
        // first row.
        let breaker = CircuitBreaker::new(config.breaker);
        let _ = VotingState::new(config.voters, config.rule);
        Ok(EngineShard {
            model,
            features,
            config,
            n_feeds,
            drives: BTreeMap::new(),
            breaker,
            stats: ShardStats::default(),
            cursors: vec![FeedCursor::default(); n_feeds],
            unmerged: Vec::new(),
            record_events: false,
            events: Vec::new(),
        })
    }

    /// Turn [`RowEvent`] recording on or off. Off (the default) keeps
    /// the commit path allocation-free for deployments without a model
    /// lifecycle; the flag is configuration, not stream state, so it is
    /// not checkpointed.
    pub fn set_record_events(&mut self, on: bool) {
        self.record_events = on;
    }

    /// Events recorded but not yet released by the merge stage.
    #[must_use]
    pub fn events(&self) -> &[RowEvent] {
        &self.events
    }

    /// Remove (and return) recorded events selected by `take`; the
    /// topology calls this with the same watermark predicate it uses for
    /// alarms, so event release order is independent of shard count.
    pub fn drain_events(&mut self, mut take: impl FnMut(&RowEvent) -> bool) -> Vec<RowEvent> {
        let mut taken = Vec::new();
        self.events.retain(|e| {
            if take(e) {
                taken.push(e.clone());
                false
            } else {
                true
            }
        });
        taken
    }

    /// The per-feed replay cursors.
    #[must_use]
    pub fn cursors(&self) -> &[FeedCursor] {
        &self.cursors
    }

    /// The counters so far.
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Drives this shard is tracking.
    #[must_use]
    pub fn tracked_drives(&self) -> usize {
        self.drives.len()
    }

    /// The breaker's current state.
    #[must_use]
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Alarms produced but not yet emitted by the merge stage.
    #[must_use]
    pub fn unmerged(&self) -> &[SeqAlarm] {
        &self.unmerged
    }

    /// Remove (and return) unmerged alarms selected by `take`; the
    /// topology calls this when the merge emits below a watermark or
    /// flushes on idle.
    pub fn drain_unmerged(&mut self, mut take: impl FnMut(&SeqAlarm) -> bool) -> Vec<SeqAlarm> {
        let mut taken = Vec::new();
        self.unmerged.retain(|a| {
            if take(a) {
                taken.push(*a);
                false
            } else {
                true
            }
        });
        taken
    }

    /// Adopt the ingest's cursor snapshot, per feed, wherever it is
    /// ahead of this shard's own cursor. Only valid once this shard's
    /// queue has fully drained: every line routed here below the
    /// snapshot has then committed, so the snapshot position is safe to
    /// claim. Returns whether anything moved.
    pub fn adopt_cursors(&mut self, snapshot: &[FeedCursor]) -> bool {
        let mut moved = false;
        for (own, snap) in self.cursors.iter_mut().zip(snapshot) {
            if snap.position_key() > own.position_key() {
                *own = *snap;
                moved = true;
            }
        }
        moved
    }

    /// Swap in a hot-reloaded model (already validated by the loader).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] when the replacement does
    /// not score the shard's feature dimensionality; the current model
    /// keeps serving.
    pub fn swap_model(&mut self, model: Arc<SavedModel>) -> Result<(), ModelError> {
        model.expect_features(self.features.len())?;
        self.model = model;
        Ok(())
    }

    /// Process a batch of routed lines under the tick's cancel token.
    ///
    /// All-or-nothing: on `Cancelled`/`DeadlineExceeded` *no* state has
    /// changed and the caller retries the same lines next tick; the
    /// committed outcome is therefore independent of how lines were
    /// grouped into batches.
    ///
    /// # Errors
    ///
    /// Returns [`ParError::Cancelled`] / [`ParError::DeadlineExceeded`]
    /// from the token, or [`ParError::Panic`] if the model panicked
    /// while scoring (a bug, not an operational condition).
    pub fn process(
        &mut self,
        pool: &ThreadPool,
        token: &CancelToken,
        lines: &[RoutedLine],
    ) -> Result<BatchOutcome, ParError> {
        token.check().map_err(ParError::from)?;
        let (decisions, rows) = self.decide(lines);
        let scores = if rows.is_empty() {
            Vec::new()
        } else {
            // Score through the batched traversal kernel in fixed-size
            // chunks: chunk boundaries depend only on the row count, each
            // chunk's scores are bit-identical to scoring its rows alone,
            // and the token is checked per chunk — so the outcome never
            // depends on thread count or timing.
            let model = &self.model;
            let n_chunks = rows.len().div_ceil(SCORE_CHUNK_ROWS);
            let chunk_scores = pool.try_parallel_map_range_cancel(token, n_chunks, |c| {
                let start = c * SCORE_CHUNK_ROWS;
                let end = (start + SCORE_CHUNK_ROWS).min(rows.len());
                // audit:allow(R3) reason="start < end <= rows.len() by construction: end is clamped with min(rows.len())"
                let matrix = FeatureMatrix::from_rows(rows[start..end].iter().map(Vec::as_slice));
                let mut out = vec![0.0; end - start];
                model.predict_batch(&matrix, &mut out);
                out
            })?;
            chunk_scores.into_iter().flatten().collect()
        };
        Ok(self.commit(lines, &decisions, &rows, &scores))
    }

    /// Split a seq into `(feed index, line index)`.
    fn feed_of(&self, seq: u64) -> (usize, u64) {
        let n = self.n_feeds as u64;
        ((seq % n) as usize, seq / n)
    }

    /// Step 1: classify every line read-only and extract feature rows
    /// for accepted samples against per-drive history previews.
    fn decide(&self, lines: &[RoutedLine]) -> (Vec<Decision>, Vec<Vec<f64>>) {
        let mut decisions = Vec::with_capacity(lines.len());
        let mut rows: Vec<Vec<f64>> = Vec::new();
        // Drive id → (class, samples incl. rows accepted earlier in this
        // same batch) — the commit phase will arrive at exactly this.
        let mut previews: BTreeMap<u32, (DriveClass, Vec<hdd_smart::SmartSample>)> =
            BTreeMap::new();
        for line in lines {
            let (feed, index) = self.feed_of(line.seq);
            // audit:allow(R3) reason="feed_of() maps seq into 0..n_feeds and cursors is sized to n_feeds at construction"
            if index < self.cursors[feed].next_line {
                decisions.push(Decision::Replayed);
                continue;
            }
            if line.text.trim().is_empty() {
                decisions.push(Decision::Blank);
                continue;
            }
            let (row, fault) = match parse_data_line(&line.text) {
                Ok(parsed) => parsed,
                Err(_) => {
                    decisions.push(Decision::ParseFailure);
                    continue;
                }
            };
            if let Some(fault) = fault {
                decisions.push(Decision::BadValue(fault));
                continue;
            }
            let preview = previews.entry(row.drive.0).or_insert_with(|| {
                match self.drives.get(&row.drive.0) {
                    Some(monitor) => (monitor.class, monitor.history.clone()),
                    None => (row.class, Vec::new()),
                }
            });
            if preview.0 != row.class {
                decisions.push(Decision::Conflicting);
                continue;
            }
            if preview.1.last().is_some_and(|s| row.sample.hour <= s.hour) {
                decisions.push(Decision::Stale);
                continue;
            }
            preview.1.push(row.sample);
            prune_history(&mut preview.1, self.features.max_lookback_hours());
            let series = SmartSeries::new(row.drive, row.class, preview.1.clone());
            let scored = self
                .features
                .extract(&series, series.len() - 1)
                .map(|features| {
                    rows.push(features);
                    rows.len() - 1
                });
            decisions.push(Decision::Accept { row, scored });
        }
        (decisions, rows)
    }

    /// Step 3: advance counters, breaker, histories, voting windows and
    /// cursors line by line, in routing order.
    fn commit(
        &mut self,
        lines: &[RoutedLine],
        decisions: &[Decision],
        rows: &[Vec<f64>],
        scores: &[f64],
    ) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        for (line, decision) in lines.iter().zip(decisions) {
            if matches!(decision, Decision::Replayed) {
                outcome.replayed += 1;
                continue;
            }
            let (feed, index) = self.feed_of(line.seq);
            // audit:allow(R3) reason="feed_of() maps seq into 0..n_feeds and cursors is sized to n_feeds at construction"
            self.cursors[feed] = FeedCursor {
                next_line: index + 1,
                offset: line.end_offset,
                generation: line.generation,
            };
            match decision {
                Decision::Replayed => unreachable!("handled above"),
                Decision::Blank => {}
                Decision::ParseFailure => {
                    self.stats.rows_seen += 1;
                    self.stats.parse_failures += 1;
                    self.record_breaker(true, &mut outcome);
                }
                Decision::BadValue(fault) => {
                    self.stats.rows_seen += 1;
                    match fault {
                        ValueFault::NonFinite => self.stats.non_finite_rows += 1,
                        ValueFault::OutOfRange => self.stats.out_of_range_rows += 1,
                    }
                    self.record_breaker(true, &mut outcome);
                }
                Decision::Conflicting => {
                    self.stats.rows_seen += 1;
                    self.stats.conflicting_rows += 1;
                    self.record_breaker(true, &mut outcome);
                }
                Decision::Stale => {
                    self.stats.rows_seen += 1;
                    self.stats.stale_rows += 1;
                    // Stale rows parsed fine — ordering jitter is not
                    // corruption, so the breaker sees a clean row.
                    self.record_breaker(false, &mut outcome);
                }
                Decision::Accept { row, scored } => {
                    self.stats.rows_seen += 1;
                    self.stats.rows_accepted += 1;
                    self.record_breaker(false, &mut outcome);
                    let monitor = self
                        .drives
                        .entry(row.drive.0)
                        .or_insert_with(|| DriveMonitor {
                            class: row.class,
                            history: Vec::new(),
                            voting: VotingState::new(self.config.voters, self.config.rule),
                            alarmed: false,
                        });
                    monitor.history.push(row.sample);
                    prune_history(&mut monitor.history, self.features.max_lookback_hours());
                    if let Some(idx) = scored {
                        // audit:allow(R3) reason="idx was pushed while scoring this same batch; scores has one entry per scored row"
                        let score = scores[*idx];
                        if self.record_events {
                            self.events.push(RowEvent {
                                seq: line.seq,
                                drive: row.drive.0,
                                hour: row.sample.hour.0,
                                fail_hour: row.class.fail_hour().map(|h| h.0),
                                // audit:allow(R3) reason="idx was pushed while scoring this same batch; rows has one entry per scored row"
                                features: rows[*idx].clone(),
                                incumbent_score: score,
                            });
                        }
                        let alarm_vote = monitor.voting.push(score);
                        if alarm_vote && !monitor.alarmed {
                            if self.breaker.suppressing() {
                                self.stats.alarms_suppressed += 1;
                            } else {
                                monitor.alarmed = true;
                                self.stats.alarms_emitted += 1;
                                let alarm = SeqAlarm {
                                    seq: line.seq,
                                    alarm: Alarm {
                                        drive: row.drive.0,
                                        hour: row.sample.hour.0,
                                    },
                                };
                                self.unmerged.push(alarm);
                                outcome.alarms.push(alarm);
                            }
                        }
                    }
                }
            }
        }
        outcome
    }

    fn record_breaker(&mut self, quarantined: bool, outcome: &mut BatchOutcome) {
        if let Some(state) = self.breaker.record(quarantined) {
            self.stats.breaker_transitions += 1;
            outcome.transitions.push(state);
        }
    }

    /// Serialize everything a checkpoint needs to resume this shard.
    #[must_use]
    pub fn state_to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "cursors".to_string(),
                Value::Arr(self.cursors.iter().map(JsonCodec::to_json).collect()),
            ),
            ("stats".to_string(), self.stats.to_json()),
            ("breaker".to_string(), self.breaker.to_json()),
            (
                "unmerged".to_string(),
                Value::Arr(self.unmerged.iter().map(JsonCodec::to_json).collect()),
            ),
            (
                "events".to_string(),
                Value::Arr(self.events.iter().map(JsonCodec::to_json).collect()),
            ),
            (
                "drives".to_string(),
                Value::Arr(
                    self.drives
                        .iter()
                        .map(|(id, monitor)| {
                            let mut fields =
                                vec![("drive".to_string(), Value::Num(f64::from(*id)))];
                            if let Value::Obj(monitor_fields) = monitor.to_json() {
                                fields.extend(monitor_fields);
                            }
                            Value::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Restore state serialized by [`EngineShard::state_to_json`],
    /// replacing whatever this shard held.
    ///
    /// The model and feature set are *not* part of the state — the
    /// caller loads the (possibly newer) model file separately; restored
    /// drives keep their checkpointed voting windows even if the
    /// configured voter count changed in between.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the document does not describe a valid
    /// shard state for this shard's feed count.
    pub fn restore_state(&mut self, value: &Value) -> Result<(), JsonError> {
        let raw_cursors = value
            .field("cursors")?
            .as_arr()
            .ok_or_else(|| JsonError::new("`cursors` must be an array"))?;
        if raw_cursors.len() != self.n_feeds {
            return Err(JsonError::new(format!(
                "checkpoint has {} feed cursors, this topology tails {}",
                raw_cursors.len(),
                self.n_feeds
            )));
        }
        let cursors = raw_cursors
            .iter()
            .map(FeedCursor::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let stats = ShardStats::from_json(value.field("stats")?)?;
        let breaker = CircuitBreaker::from_json(value.field("breaker")?)?;
        let unmerged = value
            .field("unmerged")?
            .as_arr()
            .ok_or_else(|| JsonError::new("`unmerged` must be an array"))?
            .iter()
            .map(SeqAlarm::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        // `events` is tolerant-optional: checkpoints written before the
        // lifecycle existed (or with recording off) simply have none.
        let events = match value.get("events") {
            None => Vec::new(),
            Some(raw) => raw
                .as_arr()
                .ok_or_else(|| JsonError::new("`events` must be an array"))?
                .iter()
                .map(RowEvent::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let raw_drives = value
            .field("drives")?
            .as_arr()
            .ok_or_else(|| JsonError::new("`drives` must be an array"))?;
        let mut drives = BTreeMap::new();
        for entry in raw_drives {
            let id = entry.usize_field("drive")? as u32;
            if drives.insert(id, DriveMonitor::from_json(entry)?).is_some() {
                return Err(JsonError::new(format!("drive {id} appears twice")));
            }
        }
        self.cursors = cursors;
        self.stats = stats;
        self.breaker = breaker;
        self.unmerged = unmerged;
        self.events = events;
        self.drives = drives;
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use hdd_cart::classifier::ClassificationTreeBuilder;
    use hdd_cart::sample::{Class, ClassSample};
    use hdd_eval::VotingDetector;
    use hdd_smart::csv::{write_header, write_series};
    use hdd_smart::rng::DeterministicRng;
    use hdd_smart::{DatasetGenerator, FamilyProfile, Hour, NUM_ATTRIBUTES};
    use hdd_stats::FeatureSet;

    const VOTERS: usize = 11;

    pub(crate) fn fleet() -> Vec<SmartSeries> {
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.004), 99).generate();
        ds.drives().iter().map(|spec| ds.series(spec)).collect()
    }

    /// Train a small CT on the fleet, mirroring the CLI's training set.
    pub(crate) fn model(series: &[SmartSeries], features: &FeatureSet) -> SavedModel {
        let rng = DeterministicRng::new(0x5EED);
        let mut samples = Vec::new();
        for (d, s) in series.iter().enumerate() {
            match s.class.fail_hour() {
                None => {
                    for k in 0..3u64 {
                        let u = rng.uniform(d as u64, k);
                        let idx = (u * s.len() as f64) as usize;
                        if let Some(f) = features.extract(s, idx) {
                            samples.push(ClassSample::new(f, Class::Good));
                        }
                    }
                }
                Some(fail) => {
                    for idx in 0..s.len() {
                        if s.samples()[idx].hour.0 + 168 < fail.0 {
                            continue;
                        }
                        if let Some(f) = features.extract(s, idx) {
                            samples.push(ClassSample::new(f, Class::Failed));
                        }
                    }
                }
            }
        }
        let tree = ClassificationTreeBuilder::new().build(&samples).unwrap();
        SavedModel::from(tree.compile())
    }

    /// CSV-encode a fleet and split it into single-feed routed lines.
    pub(crate) fn feed_lines(series: &[SmartSeries]) -> Vec<RoutedLine> {
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        for s in series {
            write_series(&mut buf, s).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        routed(
            &text
                .lines()
                .filter(|l| !hdd_smart::csv::is_header_line(l))
                .map(str::to_string)
                .collect::<Vec<_>>(),
        )
    }

    fn shard(model: SavedModel, features: &FeatureSet) -> EngineShard {
        EngineShard::new(
            Arc::new(model),
            features.clone(),
            EngineConfig::new(VOTERS, VotingRule::Majority, 0.1),
            1,
        )
        .unwrap()
    }

    /// Tag plain text lines as a single feed's routed lines: seq = line
    /// index, offsets cumulative.
    pub(crate) fn routed(lines: &[String]) -> Vec<RoutedLine> {
        let mut offset = 0u64;
        lines
            .iter()
            .enumerate()
            .map(|(i, text)| {
                offset += text.len() as u64 + 1;
                RoutedLine {
                    seq: i as u64,
                    text: text.clone(),
                    end_offset: offset,
                    generation: 0,
                }
            })
            .collect()
    }

    /// Run lines through a shard in batches of `batch`, concatenating
    /// the produced alarms.
    fn run(shard: &mut EngineShard, lines: &[RoutedLine], batch: usize) -> Vec<Alarm> {
        let pool = ThreadPool::global();
        let token = CancelToken::new();
        let mut alarms = Vec::new();
        for chunk in lines.chunks(batch.max(1)) {
            alarms.extend(
                shard
                    .process(&pool, &token, chunk)
                    .unwrap()
                    .alarms
                    .iter()
                    .map(|a| a.alarm),
            );
        }
        alarms
    }

    #[test]
    fn streaming_matches_batch_detection() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let lines = feed_lines(&series);

        let mut eng = shard(model.clone(), &features);
        let streamed = run(&mut eng, &lines, 37);

        let detector = VotingDetector::new(&model, &features, VOTERS, VotingRule::Majority);
        let mut expected = Vec::new();
        for s in &series {
            if let Some(hour) = detector.first_alarm(s, Hour(0)..Hour(u32::MAX)) {
                expected.push(Alarm {
                    drive: s.drive.0,
                    hour: hour.0,
                });
            }
        }
        assert!(!expected.is_empty(), "fleet must produce reference alarms");
        assert_eq!(streamed, expected);
        assert_eq!(eng.stats().rows_seen, eng.stats().rows_accepted);
        assert_eq!(eng.unmerged().len(), expected.len(), "alarms buffered");
    }

    #[test]
    fn batch_size_cannot_change_the_outcome() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let lines = feed_lines(&series);
        let reference = run(&mut shard(model.clone(), &features), &lines, usize::MAX);
        for batch in [1, 3, 64] {
            let mut eng = shard(model.clone(), &features);
            assert_eq!(run(&mut eng, &lines, batch), reference, "batch={batch}");
        }
    }

    #[test]
    fn checkpoint_split_resumes_bit_identically() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let lines = feed_lines(&series);

        let mut reference_shard = shard(model.clone(), &features);
        let reference = run(&mut reference_shard, &lines, 64);
        let reference_state = hdd_json::to_string(&reference_shard.state_to_json());

        for split in [0, 1, 17, lines.len() / 2, lines.len() - 1] {
            let mut first = shard(model.clone(), &features);
            let mut alarms = run(&mut first, &lines[..split], 64);
            let snapshot = first.state_to_json();
            // Serialize through text, like a real checkpoint file.
            let restored = hdd_json::parse(&hdd_json::to_string(&snapshot)).unwrap();
            let mut second = shard(model.clone(), &features);
            second.restore_state(&restored).unwrap();
            alarms.extend(run(&mut second, &lines[split..], 64));
            assert_eq!(alarms, reference, "split at line {split}");
            assert_eq!(
                hdd_json::to_string(&second.state_to_json()),
                reference_state,
                "state after split at line {split}"
            );
        }
    }

    #[test]
    fn replayed_lines_have_zero_state_effect() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let lines = feed_lines(&series);
        let pool = ThreadPool::global();
        let token = CancelToken::new();

        let mut reference_shard = shard(model.clone(), &features);
        run(&mut reference_shard, &lines, 64);
        let reference_state = hdd_json::to_string(&reference_shard.state_to_json());

        // Replay the whole feed with a stale prefix: the first half is
        // fed twice, exactly what a crash-resume with an old ingest
        // cursor does.
        let mut eng = shard(model.clone(), &features);
        run(&mut eng, &lines[..lines.len() / 2], 64);
        let mut replay = lines[..lines.len() / 2].to_vec();
        replay.extend_from_slice(&lines);
        let mut replayed = 0usize;
        for chunk in replay.chunks(64) {
            replayed += eng.process(&pool, &token, chunk).unwrap().replayed;
        }
        assert_eq!(replayed, lines.len(), "the stale prefix is skipped");
        assert_eq!(
            hdd_json::to_string(&eng.state_to_json()),
            reference_state,
            "replay must not disturb counters, breaker or voting"
        );
    }

    #[test]
    fn recorded_events_carry_labels_and_survive_checkpoints() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let lines = feed_lines(&series);

        let mut eng = shard(model.clone(), &features);
        eng.set_record_events(true);
        run(&mut eng, &lines, 64);
        assert!(!eng.events().is_empty(), "scored rows must be recorded");
        assert!(eng.events().len() <= eng.stats().rows_accepted);
        let labels: BTreeMap<u32, Option<u32>> = series
            .iter()
            .map(|s| (s.drive.0, s.class.fail_hour().map(|h| h.0)))
            .collect();
        for e in eng.events() {
            assert_eq!(e.features.len(), features.len());
            assert_eq!(labels[&e.drive], e.fail_hour, "drive {}", e.drive);
            assert!(e.incumbent_score.is_finite());
        }

        // Undrained events are checkpointed state: they round-trip
        // through the serialized form bit for bit.
        let snapshot = hdd_json::parse(&hdd_json::to_string(&eng.state_to_json())).unwrap();
        let mut restored = shard(model.clone(), &features);
        restored.restore_state(&snapshot).unwrap();
        assert_eq!(restored.events(), eng.events());

        // A pre-events checkpoint (no `events` field) still restores.
        let legacy =
            hdd_json::to_string(&eng.state_to_json()).replacen("\"events\":[", "\"legacy\":[", 1);
        let mut old = shard(model.clone(), &features);
        old.restore_state(&hdd_json::parse(&legacy).unwrap())
            .unwrap();
        assert!(old.events().is_empty());

        // Draining below a seq removes exactly the covered prefix, and
        // recording off keeps the commit path event-free.
        let mid = eng.events()[eng.events().len() / 2].seq;
        let drained = eng.drain_events(|e| e.seq < mid);
        assert!(!drained.is_empty());
        assert!(drained.iter().all(|e| e.seq < mid));
        assert!(eng.events().iter().all(|e| e.seq >= mid));
        let mut silent = shard(model, &features);
        run(&mut silent, &lines, 64);
        assert!(silent.events().is_empty(), "recording defaults to off");
    }

    #[test]
    fn adopt_cursors_is_monotone() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let mut eng = EngineShard::new(
            Arc::new(model),
            features.clone(),
            EngineConfig::new(VOTERS, VotingRule::Majority, 0.1),
            2,
        )
        .unwrap();
        let ahead = [
            FeedCursor {
                next_line: 5,
                offset: 500,
                generation: 0,
            },
            FeedCursor {
                next_line: 2,
                offset: 120,
                generation: 1,
            },
        ];
        assert!(eng.adopt_cursors(&ahead));
        assert_eq!(eng.cursors(), &ahead);
        // A stale snapshot moves nothing.
        let behind = [FeedCursor::default(), FeedCursor::default()];
        assert!(!eng.adopt_cursors(&behind));
        assert_eq!(eng.cursors(), &ahead);
    }

    /// A shard whose rule alarms on any full window, so alarm flow can
    /// be tested without caring what the model outputs.
    fn always_alarm_shard(features: &FeatureSet, model: SavedModel) -> EngineShard {
        EngineShard::new(
            Arc::new(model),
            features.clone(),
            EngineConfig {
                voters: 3,
                rule: VotingRule::MeanBelow(f64::MAX),
                breaker: BreakerConfig {
                    window: 4,
                    max_fraction: 0.25,
                    // Long enough that degraded mode covers the first
                    // alarm votes below.
                    cooldown: 16,
                },
            },
            1,
        )
        .unwrap()
    }

    /// A well-formed good-drive row.
    pub(crate) fn data_row(drive: u32, hour: u32) -> String {
        let mut out = format!("{drive},0,,{hour}");
        for i in 0..NUM_ATTRIBUTES {
            out.push_str(&format!(",{}", i + 1));
        }
        out
    }

    #[test]
    fn degraded_mode_suppresses_alarms_and_recovers() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let mut eng = always_alarm_shard(&features, model);
        let pool = ThreadPool::global();
        let token = CancelToken::new();

        // Trip the breaker (4-row window, 0.25 ceiling, cooldown 16).
        let garbage: Vec<String> = (0..4).map(|i| format!("garbage-{i}")).collect();
        let outcome = eng.process(&pool, &token, &routed(&garbage)).unwrap();
        assert_eq!(outcome.transitions.len(), 1);
        assert!(eng.breaker_state() != BreakerState::Healthy);

        // Drive 7 would alarm at hour 8 (3 scored samples from hour 6);
        // while degraded the decision is suppressed and counted. Seqs
        // continue after the garbage batch.
        let mut all: Vec<String> = garbage.clone();
        all.extend((0..=8).map(|h| data_row(7, h)));
        let outcome = eng
            .process(&pool, &token, &routed(&all)[garbage.len()..])
            .unwrap();
        assert!(outcome.alarms.is_empty(), "degraded mode must suppress");
        assert!(eng.stats().alarms_suppressed >= 1);

        // A long clean stretch exhausts the cooldown (half-open at hour
        // 15) and the probation (healthy at hour 19); the drive was
        // never latched, so the first vote after suppression ends fires
        // for real, exactly once.
        all.extend((9..40).map(|h| data_row(7, h)));
        let start = all.len() - 31;
        let outcome = eng.process(&pool, &token, &routed(&all)[start..]).unwrap();
        assert_eq!(eng.breaker_state(), BreakerState::Healthy);
        assert_eq!(
            outcome.alarms.iter().map(|a| a.alarm).collect::<Vec<_>>(),
            vec![Alarm { drive: 7, hour: 15 }],
            "first vote after recovery fires once"
        );
        assert_eq!(eng.stats().alarms_emitted, 1);
        assert_eq!(eng.stats().alarms_suppressed, 7);
    }

    #[test]
    fn stale_and_conflicting_rows_are_dropped_and_counted() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let mut eng = shard(model, &features);
        let pool = ThreadPool::global();
        let token = CancelToken::new();

        let mut failed_row = data_row(5, 3);
        failed_row = failed_row.replacen(",0,,", ",1,500,", 1);
        let lines = vec![
            data_row(5, 1),
            data_row(5, 2),
            data_row(5, 2), // duplicate hour: stale
            data_row(5, 1), // late arrival: stale
            failed_row,     // class conflict
            data_row(5, 3),
        ];
        let outcome = eng.process(&pool, &token, &routed(&lines)).unwrap();
        assert!(outcome.alarms.is_empty());
        let stats = eng.stats();
        assert_eq!(stats.rows_seen, 6);
        assert_eq!(stats.rows_accepted, 3);
        assert_eq!(stats.stale_rows, 2);
        assert_eq!(stats.conflicting_rows, 1);
    }

    #[test]
    fn cancelled_batch_commits_nothing() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let mut eng = shard(model, &features);
        let pool = ThreadPool::global();

        let lines = routed(&(0..20).map(|h| data_row(9, h)).collect::<Vec<_>>());
        let token = CancelToken::new();
        token.cancel();
        let err = eng.process(&pool, &token, &lines).unwrap_err();
        assert!(matches!(err, ParError::Cancelled), "{err}");
        assert_eq!(eng.stats(), ShardStats::default(), "nothing committed");
        assert_eq!(eng.cursors()[0], FeedCursor::default());

        // The identical retry under a fresh token commits normally.
        let retried = eng.process(&pool, &CancelToken::new(), &lines).unwrap();
        let _ = retried;
        assert_eq!(eng.stats().rows_seen, 20);
        assert_eq!(eng.cursors()[0].next_line, 20);
    }

    #[test]
    fn swap_model_enforces_the_feature_contract() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let m = model(&series, &features);
        let mut eng = shard(m.clone(), &features);

        // A 2-feature model cannot replace a 13-feature one.
        let narrow_samples: Vec<ClassSample> = (0..100)
            .map(|i| {
                let x = (i % 13) as f64;
                let class = if x < 6.0 { Class::Failed } else { Class::Good };
                ClassSample::new(vec![x, 1.0], class)
            })
            .collect();
        let narrow = ClassificationTreeBuilder::new()
            .build(&narrow_samples)
            .unwrap();
        let err = eng
            .swap_model(Arc::new(SavedModel::from(narrow.compile())))
            .unwrap_err();
        assert!(matches!(err, ModelError::FeatureMismatch { .. }), "{err}");
        eng.swap_model(Arc::new(m)).unwrap();
    }

    #[test]
    fn restore_rejects_malformed_state() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = model(&series, &features);
        let mut eng = shard(model, &features);
        let good = hdd_json::to_string(&eng.state_to_json());
        for bad in [
            good.replacen("\"cursors\"", "\"cursers\"", 1),
            good.replacen("\"drives\":[]", "\"drives\":7", 1),
            // Wrong feed count: one cursor expected, two given.
            good.replacen(
                "\"cursors\":[",
                "\"cursors\":[{\"next_line\":0,\"offset\":0,\"generation\":0},",
                1,
            ),
        ] {
            assert!(
                eng.restore_state(&hdd_json::parse(&bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }
}
