//! Crash-safe daemon checkpoints.
//!
//! A sharded topology checkpoints into a **directory**: one
//! `shard-<k>.ckpt` per shard (its voting state, counters, breaker,
//! feed cursors and unmerged alarms) plus one `topology.ckpt` (the
//! merge state: low-water mark, early-flushed seqs, sink length). The
//! save order is always sink → `topology.ckpt` → dirty shard files;
//! combined with seq-keyed replay filtering, a crash between any two
//! writes merely replays a feed suffix and produces byte-identical
//! alarm output (see DESIGN.md §8 for the resume protocol).
//!
//! Each file reuses the CRC-checked two-line container model files use
//! ([`hdd_json::container`]) with its own magic string, and every write
//! goes through the same atomic temp-file + rename protocol — a crash
//! mid-checkpoint leaves the previous valid file in place.

use hdd_json::container::{self, ContainerError};
use hdd_json::{JsonError, Value};
use std::fmt;
use std::path::Path;

/// Magic string opening a checkpoint container's header line.
pub const CHECKPOINT_MAGIC: &str = "hddpred-checkpoint";

/// Checkpoint layout version; bumped on incompatible changes.
/// Version 2: sharded layout (`kind` + opaque payload); version-1
/// single-engine files are refused with a typed error.
pub const CHECKPOINT_FORMAT_VERSION: usize = 2;

/// Which topology component a checkpoint file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// One shard's engine state.
    Shard,
    /// The topology's merge state.
    Topology,
    /// The model lifecycle's state (training buffer, shadow scorer,
    /// counters); saved between the sink and `topology.ckpt`.
    Lifecycle,
}

impl CheckpointKind {
    fn as_str(self) -> &'static str {
        match self {
            CheckpointKind::Shard => "shard",
            CheckpointKind::Topology => "topology",
            CheckpointKind::Lifecycle => "lifecycle",
        }
    }

    fn parse(raw: &str) -> Option<Self> {
        match raw {
            "shard" => Some(CheckpointKind::Shard),
            "topology" => Some(CheckpointKind::Topology),
            "lifecycle" => Some(CheckpointKind::Lifecycle),
            _ => None,
        }
    }
}

/// Why reading or writing a checkpoint failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file parsed but is not a valid checkpoint document.
    Json(JsonError),
    /// The file was written by an incompatible layout version.
    UnsupportedVersion(usize),
    /// The file's bytes contradict its checksums or container layout.
    Corrupt {
        /// Byte offset (from the start of the file) of the failure.
        offset: usize,
        /// What was wrong there.
        detail: String,
    },
    /// The checkpoint is valid but does not fit this topology (wrong
    /// kind, shard count or feed count).
    Incompatible(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::Json(e) => write!(f, "checkpoint: {e}"),
            CheckpointError::UnsupportedVersion(v) => write!(
                f,
                "unsupported checkpoint version {v} (this build reads {CHECKPOINT_FORMAT_VERSION})"
            ),
            CheckpointError::Corrupt { offset, detail } => {
                write!(f, "checkpoint corrupt at byte {offset}: {detail}")
            }
            CheckpointError::Incompatible(detail) => {
                write!(f, "checkpoint does not fit this topology: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<JsonError> for CheckpointError {
    fn from(e: JsonError) -> Self {
        CheckpointError::Json(e)
    }
}

/// One resumable snapshot of one topology component.
///
/// The payload is kept opaque here (shards and the merge stage own
/// their codecs); the checkpoint layer only frames, checksums, kinds
/// and versions it.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Which component this file holds.
    pub kind: CheckpointKind,
    /// The component's serialized state.
    pub payload: Value,
}

impl Checkpoint {
    /// Write the checkpoint atomically (temp sibling + fsync + rename).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let doc = Value::Obj(vec![
            (
                "format_version".to_string(),
                Value::Num(CHECKPOINT_FORMAT_VERSION as f64),
            ),
            (
                "kind".to_string(),
                Value::Str(self.kind.as_str().to_string()),
            ),
            ("payload".to_string(), self.payload.clone()),
        ]);
        let payload = hdd_json::to_string(&doc);
        let document = container::seal(CHECKPOINT_MAGIC, &payload);
        container::write_atomic(path, &document)?;
        Ok(())
    }

    /// Read a checkpoint written by [`Checkpoint::save`], verifying every
    /// payload block's CRC-32 before parsing.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] (with the failing byte
    /// offset) when the bytes contradict the recorded checksums, and
    /// [`CheckpointError`] on I/O, parse or version problems.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        let text = std::str::from_utf8(&bytes).map_err(|e| CheckpointError::Corrupt {
            offset: e.valid_up_to(),
            detail: "invalid UTF-8".to_string(),
        })?;
        let payload = match container::unseal(CHECKPOINT_MAGIC, text) {
            Ok(payload) => payload,
            Err(ContainerError::NotAContainer { .. }) => {
                return Err(CheckpointError::Corrupt {
                    offset: 0,
                    detail: "not a checkpoint file (missing container header)".to_string(),
                })
            }
            Err(ContainerError::Corrupt { offset, detail }) => {
                return Err(CheckpointError::Corrupt { offset, detail })
            }
        };
        let doc = hdd_json::parse(payload)?;
        let version = doc.usize_field("format_version")?;
        if version != CHECKPOINT_FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let raw_kind = doc
            .field("kind")?
            .as_str()
            .ok_or_else(|| JsonError::new("`kind` must be a string"))?
            .to_string();
        let kind = CheckpointKind::parse(&raw_kind).ok_or_else(|| {
            CheckpointError::Incompatible(format!("unknown checkpoint kind `{raw_kind}`"))
        })?;
        Ok(Checkpoint {
            kind,
            payload: doc.field("payload")?.clone(),
        })
    }

    /// [`Checkpoint::load`], additionally refusing a file of the wrong
    /// kind (e.g. a shard file where `topology.ckpt` should be).
    ///
    /// # Errors
    ///
    /// As [`Checkpoint::load`], plus [`CheckpointError::Incompatible`]
    /// on a kind mismatch.
    pub fn load_expecting(path: &Path, kind: CheckpointKind) -> Result<Self, CheckpointError> {
        let ck = Checkpoint::load(path)?;
        if ck.kind != kind {
            return Err(CheckpointError::Incompatible(format!(
                "{}: expected a {} checkpoint, found {}",
                path.display(),
                kind.as_str(),
                ck.kind.as_str()
            )));
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd_json::container::tmp_sibling;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hdd-serve-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            kind: CheckpointKind::Shard,
            payload: Value::Obj(vec![
                ("cursors".to_string(), Value::Arr(vec![Value::Num(678.0)])),
                ("drives".to_string(), Value::Arr(vec![Value::Num(1.0)])),
            ]),
        }
    }

    #[test]
    fn round_trips_through_a_file() {
        let path = scratch("roundtrip.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let path = scratch("bitflip.ckpt");
        sample().save(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                std::fs::write(&path, &bytes).unwrap();
                assert!(
                    Checkpoint::load(&path).is_err(),
                    "flip of byte {byte} bit {bit} was accepted"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_kind_and_junk_are_typed_errors() {
        let path = scratch("versioned.ckpt");
        // A version-1 (pre-sharding) checkpoint is refused, not misread.
        let doc = "{\"format_version\":1,\"sink_bytes\":0,\"engine\":{}}";
        let sealed = container::seal(CHECKPOINT_MAGIC, doc);
        std::fs::write(&path, sealed).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::UnsupportedVersion(1)),
            "{err}"
        );

        let doc = "{\"format_version\":2,\"kind\":\"sharf\",\"payload\":{}}";
        let sealed = container::seal(CHECKPOINT_MAGIC, doc);
        std::fs::write(&path, sealed).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Incompatible(_)), "{err}");

        std::fs::write(&path, "not a checkpoint at all").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupt { offset: 0, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("container header"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_expecting_refuses_a_kind_mismatch() {
        let path = scratch("kind.ckpt");
        sample().save(&path).unwrap();
        assert!(Checkpoint::load_expecting(&path, CheckpointKind::Shard).is_ok());
        let err = Checkpoint::load_expecting(&path, CheckpointKind::Topology).unwrap_err();
        assert!(matches!(err, CheckpointError::Incompatible(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_save_never_clobbers_the_previous_checkpoint() {
        let path = scratch("interrupted.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        std::fs::write(tmp_sibling(&path), b"torn che").unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        ck.save(&path).unwrap();
        assert!(
            !tmp_sibling(&path).exists(),
            "save must consume its temp file"
        );
        std::fs::remove_file(&path).ok();
    }
}
