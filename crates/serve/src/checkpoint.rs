//! Crash-safe daemon checkpoints.
//!
//! A checkpoint captures everything the daemon needs to resume after
//! `kill -9` with *byte-identical* alarm output: the serialized engine
//! state (feed position, per-drive voting windows, counters, breaker)
//! plus how many bytes of the alarm sink had been written when the
//! snapshot was taken. On restart the sink is truncated back to that
//! length and processing resumes from the checkpointed feed offset, so
//! the replayed suffix appends exactly the alarms the killed run would
//! have.
//!
//! The on-disk format reuses the CRC-checked two-line container model
//! files use ([`hdd_json::container`]) with its own magic string, and
//! every write goes through the same atomic temp-file + rename protocol
//! — a crash mid-checkpoint leaves the previous valid checkpoint in
//! place.

use hdd_json::container::{self, ContainerError};
use hdd_json::{JsonError, Value};
use std::fmt;
use std::path::Path;

/// Magic string opening a checkpoint container's header line.
pub const CHECKPOINT_MAGIC: &str = "hddpred-checkpoint";

/// Checkpoint layout version; bumped on incompatible changes.
pub const CHECKPOINT_FORMAT_VERSION: usize = 1;

/// Why reading or writing a checkpoint failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file parsed but is not a valid checkpoint document.
    Json(JsonError),
    /// The file was written by an incompatible layout version.
    UnsupportedVersion(usize),
    /// The file's bytes contradict its checksums or container layout.
    Corrupt {
        /// Byte offset (from the start of the file) of the failure.
        offset: usize,
        /// What was wrong there.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::Json(e) => write!(f, "checkpoint: {e}"),
            CheckpointError::UnsupportedVersion(v) => write!(
                f,
                "unsupported checkpoint version {v} (this build reads {CHECKPOINT_FORMAT_VERSION})"
            ),
            CheckpointError::Corrupt { offset, detail } => {
                write!(f, "checkpoint corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<JsonError> for CheckpointError {
    fn from(e: JsonError) -> Self {
        CheckpointError::Json(e)
    }
}

/// One resumable snapshot: the engine's serialized state plus the alarm
/// sink length it corresponds to.
///
/// The engine payload is kept opaque here (the engine owns its own
/// codec); the checkpoint layer only frames, checksums and versions it.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Bytes of the alarm sink written when the snapshot was taken.
    pub sink_bytes: u64,
    /// The engine's serialized state.
    pub engine: Value,
}

impl Checkpoint {
    /// Write the checkpoint atomically (temp sibling + fsync + rename).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let doc = Value::Obj(vec![
            (
                "format_version".to_string(),
                Value::Num(CHECKPOINT_FORMAT_VERSION as f64),
            ),
            // u64 through an f64 JSON number: exact up to 2^53, far
            // beyond any real sink or feed size.
            ("sink_bytes".to_string(), Value::Num(self.sink_bytes as f64)),
            ("engine".to_string(), self.engine.clone()),
        ]);
        let payload = hdd_json::to_string(&doc);
        let document = container::seal(CHECKPOINT_MAGIC, &payload);
        container::write_atomic(path, &document)?;
        Ok(())
    }

    /// Read a checkpoint written by [`Checkpoint::save`], verifying every
    /// payload block's CRC-32 before parsing.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] (with the failing byte
    /// offset) when the bytes contradict the recorded checksums, and
    /// [`CheckpointError`] on I/O, parse or version problems.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        let text = std::str::from_utf8(&bytes).map_err(|e| CheckpointError::Corrupt {
            offset: e.valid_up_to(),
            detail: "invalid UTF-8".to_string(),
        })?;
        let payload = match container::unseal(CHECKPOINT_MAGIC, text) {
            Ok(payload) => payload,
            Err(ContainerError::NotAContainer { .. }) => {
                return Err(CheckpointError::Corrupt {
                    offset: 0,
                    detail: "not a checkpoint file (missing container header)".to_string(),
                })
            }
            Err(ContainerError::Corrupt { offset, detail }) => {
                return Err(CheckpointError::Corrupt { offset, detail })
            }
        };
        let doc = hdd_json::parse(payload)?;
        let version = doc.usize_field("format_version")?;
        if version != CHECKPOINT_FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        Ok(Checkpoint {
            sink_bytes: doc.usize_field("sink_bytes")? as u64,
            engine: doc.field("engine")?.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd_json::container::tmp_sibling;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hdd-serve-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            sink_bytes: 12345,
            engine: Value::Obj(vec![
                ("offset".to_string(), Value::Num(678.0)),
                ("drives".to_string(), Value::Arr(vec![Value::Num(1.0)])),
            ]),
        }
    }

    #[test]
    fn round_trips_through_a_file() {
        let path = scratch("roundtrip.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let path = scratch("bitflip.ckpt");
        sample().save(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                std::fs::write(&path, &bytes).unwrap();
                assert!(
                    Checkpoint::load(&path).is_err(),
                    "flip of byte {byte} bit {bit} was accepted"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_and_junk_are_typed_errors() {
        let path = scratch("versioned.ckpt");
        let doc = "{\"format_version\":99,\"sink_bytes\":0,\"engine\":{}}";
        let sealed = container::seal(CHECKPOINT_MAGIC, doc);
        std::fs::write(&path, sealed).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::UnsupportedVersion(99)),
            "{err}"
        );

        std::fs::write(&path, "not a checkpoint at all").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupt { offset: 0, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("container header"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_save_never_clobbers_the_previous_checkpoint() {
        let path = scratch("interrupted.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        std::fs::write(tmp_sibling(&path), b"torn che").unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        ck.save(&path).unwrap();
        assert!(
            !tmp_sibling(&path).exists(),
            "save must consume its temp file"
        );
        std::fs::remove_file(&path).ok();
    }
}
