//! Multi-feed ingest: tail several CSV feeds, route lines to shards.
//!
//! Every routed line gets a **sequence number** that is a pure function
//! of feed content: line number `c` of feed `f` (counting only routed
//! lines — headers and blanks are consumed here) gets
//! `seq = c * n_feeds + f`. Seqs are what make the topology
//! deterministic end to end: shards skip already-committed lines on
//! replay by comparing `c` against their per-feed cursors, and the merge
//! stage orders alarms across shards by the seq of the line that raised
//! them, so the alarm sink does not depend on shard count or on how
//! polls interleaved the feeds.
//!
//! The seq construction also yields an exact ingest **watermark**: with
//! `routed[f]` lines routed from feed `f`, every seq below
//! `min_f(routed[f] * n_feeds + f)` has been assigned, and the seq at
//! that bound has not — the merge stage never emits an alarm a
//! slower feed could still undercut (see [`crate::merge`] for the idle
//! flush that handles permanently shorter feeds).
//!
//! Header and blank lines are consumed at this layer rather than routed:
//! they carry no drive id, so no shard owns them, and a shard's byte
//! offsets are non-contiguous anyway. A header at byte zero of a
//! generation is the expected file header; one appearing mid-stream
//! marks a copy-truncate rotation, reported (like tailer-detected
//! shrinkage) in [`PollOutcome::rotations`].

use crate::router::ShardRouter;
use crate::tailer::{FeedTailer, TailEvent};
use hdd_json::{JsonCodec, JsonError, Value};
use hdd_smart::csv::is_header_line;
use std::path::PathBuf;

/// One feed line routed to its owning shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedLine {
    /// Global order key: `line_index * n_feeds + feed_index`.
    pub seq: u64,
    /// The line's text (no terminator).
    pub text: String,
    /// Feed offset just past this line.
    pub end_offset: u64,
    /// Rotation generation the offset belongs to.
    pub generation: u64,
}

/// A resumable position in one feed: the next routed-line index plus the
/// byte position it corresponds to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedCursor {
    /// Index of the next routed line of this feed (its seq is
    /// `next_line * n_feeds + feed_index`).
    pub next_line: u64,
    /// Byte offset tailing resumes at.
    pub offset: u64,
    /// Rotation generation the offset belongs to.
    pub generation: u64,
}

impl FeedCursor {
    /// Total order matching feed progress: later positions compare
    /// greater. `next_line` is monotone across rotations, so it leads.
    #[must_use]
    pub fn position_key(&self) -> (u64, u64, u64) {
        (self.next_line, self.generation, self.offset)
    }
}

impl JsonCodec for FeedCursor {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("next_line".to_string(), Value::Num(self.next_line as f64)),
            ("offset".to_string(), Value::Num(self.offset as f64)),
            ("generation".to_string(), Value::Num(self.generation as f64)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(FeedCursor {
            next_line: value.usize_field("next_line")? as u64,
            offset: value.usize_field("offset")? as u64,
            generation: value.usize_field("generation")? as u64,
        })
    }
}

/// What one ingest poll produced.
#[derive(Debug, Default)]
pub struct PollOutcome {
    /// Routed lines grouped by owning shard (`routed[k]` → shard `k`),
    /// in routing order.
    pub routed: Vec<Vec<RoutedLine>>,
    /// Data lines routed this poll (headers and blanks excluded).
    pub lines_read: usize,
    /// Rotations observed this poll (file shrinkage + mid-stream
    /// headers).
    pub rotations: usize,
    /// Feeds whose poll failed, with the error; the other feeds still
    /// made progress and the failed ones retry next poll.
    pub errors: Vec<(usize, std::io::Error)>,
}

/// Tails `n_feeds` append-only CSV feeds and routes complete lines to
/// their owning shards; see the module docs.
#[derive(Debug)]
pub struct MultiFeedIngest {
    tailers: Vec<FeedTailer>,
    /// Per feed: index of the next routed line.
    routed: Vec<u64>,
    /// Per feed: byte position just past the last consumed line, used to
    /// tell a file-start header from a mid-stream (rotation) header.
    pos: Vec<u64>,
    router: ShardRouter,
}

impl MultiFeedIngest {
    /// Tail `paths` from the beginning.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty.
    #[must_use]
    pub fn new(paths: &[PathBuf], router: ShardRouter) -> Self {
        let cursors = vec![FeedCursor::default(); paths.len()];
        MultiFeedIngest::resume(paths, router, &cursors)
    }

    /// Tail `paths` from per-feed cursors (one per path, typically the
    /// minimum over shard checkpoints).
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty or `cursors` has a different length.
    #[must_use]
    pub fn resume(paths: &[PathBuf], router: ShardRouter, cursors: &[FeedCursor]) -> Self {
        assert!(!paths.is_empty(), "at least one feed is required");
        assert_eq!(paths.len(), cursors.len(), "one cursor per feed");
        MultiFeedIngest {
            tailers: paths
                .iter()
                .zip(cursors)
                .map(|(p, c)| FeedTailer::resume(p, c.offset, c.generation))
                .collect(),
            routed: cursors.iter().map(|c| c.next_line).collect(),
            pos: cursors.iter().map(|c| c.offset).collect(),
            router,
        }
    }

    /// How many feeds are being tailed.
    #[must_use]
    pub fn n_feeds(&self) -> usize {
        self.tailers.len()
    }

    /// The current per-feed positions — the snapshot shards adopt once
    /// their queue drains.
    #[must_use]
    pub fn cursors(&self) -> Vec<FeedCursor> {
        self.tailers
            .iter()
            .zip(&self.routed)
            .map(|(t, &next_line)| FeedCursor {
                next_line,
                offset: t.offset(),
                generation: t.generation(),
            })
            .collect()
    }

    /// The exact assignment frontier: every seq below it has been
    /// routed, the seq at it has not.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        let n = self.tailers.len() as u64;
        self.routed
            .iter()
            .enumerate()
            .map(|(f, &c)| c * n + f as u64)
            .min()
            .unwrap_or(0)
    }

    /// Poll every feed in order, routing at most `budget` data lines in
    /// total (callers pass the minimum free shard-queue capacity, so no
    /// shard can overflow no matter how routing lands).
    pub fn poll(&mut self, budget: usize) -> PollOutcome {
        let n_feeds = self.tailers.len() as u64;
        let mut out = PollOutcome {
            routed: (0..self.router.n_shards()).map(|_| Vec::new()).collect(),
            ..PollOutcome::default()
        };
        let mut remaining = budget;
        for f in 0..self.tailers.len() {
            if remaining == 0 {
                break;
            }
            // audit:allow(R3) reason="f ranges over 0..tailers.len(); pos and routed are sized to tailers at construction"
            let events = match self.tailers[f].poll(remaining) {
                Ok(events) => events,
                Err(e) => {
                    out.errors.push((f, e));
                    continue;
                }
            };
            for event in events {
                match event {
                    TailEvent::Rotation => {
                        out.rotations += 1;
                        // audit:allow(R3) reason="f ranges over 0..tailers.len(); pos and routed are sized to tailers at construction"
                        self.pos[f] = 0;
                    }
                    TailEvent::Line { text, end_offset } => {
                        // audit:allow(R3) reason="f ranges over 0..tailers.len(); pos and routed are sized to tailers at construction"
                        let line_start = self.pos[f];
                        // audit:allow(R3) reason="f ranges over 0..tailers.len(); pos and routed are sized to tailers at construction"
                        self.pos[f] = end_offset;
                        if text.trim().is_empty() {
                            continue;
                        }
                        if is_header_line(&text) {
                            // Expected at a generation's start; a header
                            // mid-stream marks a copy-truncate rotation.
                            if line_start != 0 {
                                out.rotations += 1;
                            }
                            continue;
                        }
                        // audit:allow(R3) reason="f ranges over 0..tailers.len(); pos and routed are sized to tailers at construction"
                        let seq = self.routed[f] * n_feeds + f as u64;
                        // audit:allow(R3) reason="f ranges over 0..tailers.len(); pos and routed are sized to tailers at construction"
                        self.routed[f] += 1;
                        remaining -= 1;
                        out.lines_read += 1;
                        let shard = self.router.shard_of_line(&text);
                        // audit:allow(R3) reason="shard_of_line() reduces the hash modulo n_shards; out.routed is sized to n_shards"
                        out.routed[shard].push(RoutedLine {
                            seq,
                            text,
                            end_offset,
                            // audit:allow(R3) reason="f ranges over 0..tailers.len(); pos and routed are sized to tailers at construction"
                            generation: self.tailers[f].generation(),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdd-serve-ingest-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(tag);
        fs::remove_file(&path).ok();
        path
    }

    fn header() -> String {
        let mut buf = Vec::new();
        hdd_smart::csv::write_header(&mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn seqs_interleave_feeds_deterministically() {
        let a = scratch("interleave-a.csv");
        let b = scratch("interleave-b.csv");
        fs::write(&a, "1,x\n2,x\n3,x\n").unwrap();
        fs::write(&b, "4,y\n5,y\n").unwrap();
        let mut ingest = MultiFeedIngest::new(&[a.clone(), b.clone()], ShardRouter::new(1));
        let out = ingest.poll(64);
        assert!(out.errors.is_empty());
        assert_eq!(out.lines_read, 5);
        let seqs: Vec<(u64, String)> = out.routed[0]
            .iter()
            .map(|l| (l.seq, l.text.clone()))
            .collect();
        // Feed 0 line c → seq 2c; feed 1 line c → seq 2c+1.
        assert_eq!(
            seqs,
            vec![
                (0, "1,x".to_string()),
                (2, "2,x".to_string()),
                (4, "3,x".to_string()),
                (1, "4,y".to_string()),
                (3, "5,y".to_string()),
            ]
        );
        // Watermark: feed 1 routed 2 lines, so seq 2*2+1 = 5 is the
        // first unassigned seq on the slower feed.
        assert_eq!(ingest.watermark(), 5);
    }

    #[test]
    fn headers_and_blanks_are_consumed_not_routed() {
        let a = scratch("headers.csv");
        fs::write(&a, format!("{}7,z\n\n8,z\n", header())).unwrap();
        let mut ingest = MultiFeedIngest::new(std::slice::from_ref(&a), ShardRouter::new(1));
        let out = ingest.poll(64);
        assert_eq!(out.lines_read, 2);
        assert_eq!(out.rotations, 0, "the file-start header is expected");
        let texts: Vec<&str> = out.routed[0].iter().map(|l| l.text.as_str()).collect();
        assert_eq!(texts, vec!["7,z", "8,z"]);
    }

    #[test]
    fn mid_stream_header_counts_as_rotation() {
        let a = scratch("midheader.csv");
        fs::write(&a, format!("{h}9,z\n{h}10,z\n", h = header())).unwrap();
        let mut ingest = MultiFeedIngest::new(std::slice::from_ref(&a), ShardRouter::new(1));
        let out = ingest.poll(64);
        assert_eq!(out.rotations, 1);
        assert_eq!(out.lines_read, 2);
    }

    #[test]
    fn resume_from_cursor_skips_consumed_prefix() {
        let a = scratch("resume.csv");
        fs::write(&a, "1,x\n2,x\n3,x\n").unwrap();
        let mut first = MultiFeedIngest::new(std::slice::from_ref(&a), ShardRouter::new(1));
        let out = first.poll(2);
        assert_eq!(out.lines_read, 2);
        let cursors = first.cursors();
        assert_eq!(cursors[0].next_line, 2);

        let mut resumed =
            MultiFeedIngest::resume(std::slice::from_ref(&a), ShardRouter::new(1), &cursors);
        let out = resumed.poll(64);
        assert_eq!(out.lines_read, 1);
        assert_eq!(out.routed[0][0].seq, 2);
        assert_eq!(out.routed[0][0].text, "3,x");
    }

    #[test]
    fn budget_caps_total_lines_across_feeds() {
        let a = scratch("budget-a.csv");
        let b = scratch("budget-b.csv");
        fs::write(&a, "1,x\n2,x\n3,x\n").unwrap();
        fs::write(&b, "4,y\n5,y\n").unwrap();
        let mut ingest = MultiFeedIngest::new(&[a.clone(), b.clone()], ShardRouter::new(2));
        let out = ingest.poll(3);
        assert_eq!(out.lines_read, 3);
        let total: usize = out.routed.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        // The rest arrives on the next poll.
        let out = ingest.poll(64);
        assert_eq!(out.lines_read, 2);
    }

    #[test]
    fn missing_feed_is_no_data_not_an_error() {
        let missing = scratch("never-written.csv");
        let mut ingest = MultiFeedIngest::new(&[missing], ShardRouter::new(1));
        let out = ingest.poll(16);
        assert!(out.errors.is_empty());
        assert_eq!(out.lines_read, 0);
    }

    #[test]
    fn cursor_codec_round_trips() {
        let c = FeedCursor {
            next_line: 7,
            offset: 123,
            generation: 2,
        };
        let text = hdd_json::to_string(&c.to_json());
        assert_eq!(
            FeedCursor::from_json(&hdd_json::parse(&text).unwrap()).unwrap(),
            c
        );
        assert!(c.position_key() > FeedCursor::default().position_key());
    }
}
