//! Incremental tailing of an append-only CSV feed.
//!
//! The feed is a plain file that a collector appends SMART rows to. The
//! tailer remembers a byte offset and, on every poll, reads only the
//! *complete* lines appended since — a partial trailing line (an append
//! caught mid-write) is left in the file untouched and picked up once
//! its newline arrives, so an in-flight write is never misread as a
//! corrupt row.
//!
//! Rotation is detected by shrinkage: when the file is suddenly shorter
//! than the saved offset, a rotation event is emitted, the generation
//! counter bumps and reading restarts at byte zero. (A rotation that
//! leaves the file *longer* than the offset is indistinguishable from an
//! append at this layer; the engine additionally treats a mid-stream
//! header line as a rotation marker, which covers the common
//! copy-truncate pattern that rewrites the header.)

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::PathBuf;

/// Upper bound on bytes read per requested line; a "line" longer than
/// this without a newline is consumed anyway (and will quarantine as a
/// parse failure) so a garbage flood cannot stall the tailer.
pub const MAX_LINE_BYTES: u64 = 4096;

/// What a poll observed, in feed order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailEvent {
    /// One complete line (newline stripped, CR tolerated), ending at
    /// byte `end_offset` of the current feed generation.
    Line {
        /// The line's text without its terminator.
        text: String,
        /// Feed offset just past this line's newline.
        end_offset: u64,
    },
    /// The feed shrank under us: it was rotated or truncated. Reading
    /// restarts at byte zero of the new generation.
    Rotation,
}

/// The feed cursor: path, byte offset, rotation generation.
#[derive(Debug, Clone)]
pub struct FeedTailer {
    path: PathBuf,
    offset: u64,
    generation: u64,
}

impl FeedTailer {
    /// Tail `path` from the beginning.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FeedTailer::resume(path, 0, 0)
    }

    /// Tail `path` from a checkpointed position.
    #[must_use]
    pub fn resume(path: impl Into<PathBuf>, offset: u64, generation: u64) -> Self {
        FeedTailer {
            path: path.into(),
            offset,
            generation,
        }
    }

    /// Byte offset of the next unread byte.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// How many rotations have been observed.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Read up to `max_lines` complete lines appended since the last
    /// poll. A feed file that does not exist yet is simply "no data";
    /// every other I/O failure propagates (the serve loop retries with
    /// backoff).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than a missing feed file.
    pub fn poll(&mut self, max_lines: usize) -> io::Result<Vec<TailEvent>> {
        let mut events = Vec::new();
        if max_lines == 0 {
            return Ok(events);
        }
        let mut file = match File::open(&self.path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(events),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len < self.offset {
            self.offset = 0;
            self.generation += 1;
            events.push(TailEvent::Rotation);
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let budget = (max_lines as u64).saturating_mul(MAX_LINE_BYTES);
        let mut buf = Vec::new();
        file.take(budget).read_to_end(&mut buf)?;

        let mut start = 0usize;
        while events.len() < max_lines {
            // audit:allow(R3) reason="start advances past consumed bytes and the loop exits before start can exceed buf.len()"
            match buf[start..].iter().position(|&b| b == b'\n') {
                Some(rel) => {
                    // audit:allow(R3) reason="rel is a position() hit inside buf[start..], so start + rel <= buf.len()"
                    let line = &buf[start..start + rel];
                    let line = match line.last() {
                        // audit:allow(R3) reason="last() returned Some, so line is non-empty and len - 1 cannot underflow"
                        Some(b'\r') => &line[..line.len() - 1],
                        _ => line,
                    };
                    self.offset += (rel + 1) as u64;
                    events.push(TailEvent::Line {
                        // Lossy is fine: undecodable bytes become U+FFFD
                        // deterministically and the row quarantines as a
                        // parse failure, exactly like the batch reader.
                        text: String::from_utf8_lossy(line).into_owned(),
                        end_offset: self.offset,
                    });
                    start += rel + 1;
                }
                None => {
                    // No newline in what's left. If we filled the whole
                    // read budget, this "line" is pathologically long:
                    // consume it as-is rather than stall forever.
                    // audit:allow(R3) reason="start advances past consumed bytes and the loop exits before start can exceed buf.len()"
                    let rest = &buf[start..];
                    if start == 0 && rest.len() as u64 >= budget {
                        self.offset += rest.len() as u64;
                        events.push(TailEvent::Line {
                            text: String::from_utf8_lossy(rest).into_owned(),
                            end_offset: self.offset,
                        });
                    }
                    break;
                }
            }
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::io::Write;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hdd-serve-tailer-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fs::remove_file(&path).ok();
        path
    }

    fn lines(events: &[TailEvent]) -> Vec<&str> {
        events
            .iter()
            .filter_map(|e| match e {
                TailEvent::Line { text, .. } => Some(text.as_str()),
                TailEvent::Rotation => None,
            })
            .collect()
    }

    #[test]
    fn missing_feed_is_no_data() {
        let mut t = FeedTailer::new(scratch("missing.csv"));
        assert!(t.poll(16).unwrap().is_empty());
        assert_eq!(t.offset(), 0);
    }

    #[test]
    fn partial_trailing_line_waits_for_its_newline() {
        let path = scratch("partial.csv");
        fs::write(&path, "header\n1,0,,5,1,2").unwrap();
        let mut t = FeedTailer::new(&path);
        let events = t.poll(16).unwrap();
        assert_eq!(lines(&events), vec!["header"]);
        let resting = t.offset();

        // Complete the line plus one more; both arrive, offsets advance.
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, ",3\n2,0,,6,9\n").unwrap();
        drop(f);
        let events = t.poll(16).unwrap();
        assert_eq!(lines(&events), vec!["1,0,,5,1,2,3", "2,0,,6,9"]);
        assert!(t.offset() > resting);
        assert!(t.poll(16).unwrap().is_empty(), "nothing left");
    }

    #[test]
    fn max_lines_bounds_each_poll() {
        let path = scratch("bounded.csv");
        fs::write(&path, "a\nb\nc\nd\n").unwrap();
        let mut t = FeedTailer::new(&path);
        assert_eq!(lines(&t.poll(3).unwrap()), vec!["a", "b", "c"]);
        assert_eq!(lines(&t.poll(3).unwrap()), vec!["d"]);
    }

    #[test]
    fn shrinkage_is_a_rotation() {
        let path = scratch("rotate.csv");
        fs::write(&path, "header\n1,old\n2,old\n").unwrap();
        let mut t = FeedTailer::new(&path);
        assert_eq!(t.poll(16).unwrap().len(), 3);
        assert_eq!(t.generation(), 0);

        fs::write(&path, "header\n1,new\n").unwrap();
        let events = t.poll(16).unwrap();
        assert_eq!(events[0], TailEvent::Rotation);
        assert_eq!(lines(&events), vec!["header", "1,new"]);
        assert_eq!(t.generation(), 1);
    }

    #[test]
    fn crlf_is_stripped() {
        let path = scratch("crlf.csv");
        fs::write(&path, "a\r\nb\r\n").unwrap();
        let mut t = FeedTailer::new(&path);
        assert_eq!(lines(&t.poll(16).unwrap()), vec!["a", "b"]);
    }

    #[test]
    fn overlong_line_cannot_stall_the_tailer() {
        let path = scratch("overlong.csv");
        let garbage = "x".repeat(2 * MAX_LINE_BYTES as usize);
        fs::write(&path, &garbage).unwrap();
        let mut t = FeedTailer::new(&path);
        let first = t.poll(1).unwrap();
        assert_eq!(first.len(), 1, "budget-filling junk is consumed");
        let second = t.poll(1).unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(t.offset(), garbage.len() as u64);
    }

    #[test]
    fn undecodable_bytes_become_a_deterministic_line() {
        let path = scratch("nonutf8.csv");
        fs::write(&path, b"ok\n\xff\xfe,1\n").unwrap();
        let mut t = FeedTailer::new(&path);
        let events = t.poll(16).unwrap();
        assert_eq!(events.len(), 2);
        let run_again = FeedTailer::new(&path).poll(16).unwrap();
        assert_eq!(events, run_again, "lossy decoding is deterministic");
    }
}
