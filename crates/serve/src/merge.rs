//! Deterministic cross-shard alarm ordering.
//!
//! Shards produce alarms tagged with the seq of the line that raised
//! them; the merge stage decides *when* an alarm may reach the sink and
//! in *what order*, such that the sink bytes do not depend on shard
//! count or poll interleaving:
//!
//! - **Watermark emission**: each tick, every buffered alarm whose seq
//!   is below the topology watermark (no shard can still produce a
//!   smaller seq) is emitted, sorted by `(seq, shard)` — seqs are
//!   unique, so this is simply seq order. Consecutive emissions cover
//!   contiguous seq ranges, and concatenating sorted disjoint ascending
//!   ranges is globally sorted: chunk boundaries cannot change the
//!   bytes.
//! - **Idle flush**: with feeds of unequal length the watermark stalls
//!   at the shortest feed, which would hold back every alarm above it
//!   forever. When the feeds are idle and all queues are drained, the
//!   remaining alarms are flushed in seq order and their seqs recorded
//!   in the [`MergeState::ahead`] set — so a later resume (or a
//!   late-growing feed) neither re-emits them nor loses the alarms a
//!   slower feed may still raise *below* them.
//!
//! [`MergeState`] is the topology checkpoint's payload: `emitted` (the
//! low-water mark below which everything reached the sink), the `ahead`
//! seqs flushed early, and the sink length those bytes correspond to.
//! Replayed alarms whose seq the merge already emitted are dropped on
//! arrival, which is what makes crash-resume emission exactly-once.

use hdd_json::{JsonCodec, JsonError, Value};

/// The merge stage's durable state; see the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergeState {
    /// Every seq below this has been emitted.
    emitted: u64,
    /// Seqs at or above `emitted` that were flushed early on idle;
    /// sorted ascending.
    ahead: Vec<u64>,
    /// Alarm-sink bytes written when this state was captured.
    pub sink_bytes: u64,
}

impl MergeState {
    /// Fresh state: nothing emitted, empty sink.
    #[must_use]
    pub fn new() -> Self {
        MergeState::default()
    }

    /// The low-water mark: every seq below it has been emitted.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Seqs flushed early on idle, still at or above the low-water mark.
    #[must_use]
    pub fn ahead(&self) -> &[u64] {
        &self.ahead
    }

    /// Whether an alarm with this seq already reached the sink.
    #[must_use]
    pub fn already_emitted(&self, seq: u64) -> bool {
        seq < self.emitted || self.ahead.binary_search(&seq).is_ok()
    }

    /// Advance the low-water mark to `watermark` (monotone; a stale
    /// watermark is ignored) and drop `ahead` entries it now covers.
    pub fn advance(&mut self, watermark: u64) {
        if watermark > self.emitted {
            self.emitted = watermark;
            self.ahead.retain(|&s| s >= watermark);
        }
    }

    /// Record seqs flushed ahead of the watermark (idle flush). The
    /// seqs need not be sorted; the `ahead` set stays sorted and
    /// deduplicated.
    pub fn record_ahead(&mut self, seqs: impl IntoIterator<Item = u64>) {
        self.ahead.extend(seqs);
        self.ahead.sort_unstable();
        self.ahead.dedup();
    }
}

impl JsonCodec for MergeState {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("emitted".to_string(), Value::Num(self.emitted as f64)),
            (
                "ahead".to_string(),
                Value::from_f64s(self.ahead.iter().map(|&s| s as f64)),
            ),
            ("sink_bytes".to_string(), Value::Num(self.sink_bytes as f64)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let ahead: Vec<u64> = value
            .f64_vec_field("ahead")?
            .into_iter()
            .map(|v| v as u64)
            .collect();
        // audit:allow(R3) reason="windows(2) yields exactly-2-element slices; w[0] and w[1] always exist"
        if !ahead.windows(2).all(|w| w[0] < w[1]) {
            return Err(JsonError::new("`ahead` must be strictly ascending"));
        }
        Ok(MergeState {
            emitted: value.usize_field("emitted")? as u64,
            ahead,
            sink_bytes: value.usize_field("sink_bytes")? as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_is_monotone_and_prunes_ahead() {
        let mut m = MergeState::new();
        m.record_ahead([12, 7, 9, 7]);
        assert_eq!(m.ahead(), &[7, 9, 12]);
        assert!(m.already_emitted(9));
        assert!(!m.already_emitted(8));

        m.advance(10);
        assert_eq!(m.emitted(), 10);
        assert_eq!(m.ahead(), &[12], "covered ahead entries are dropped");
        assert!(m.already_emitted(8), "below the low-water mark");
        assert!(m.already_emitted(12));
        assert!(!m.already_emitted(11));

        m.advance(5);
        assert_eq!(m.emitted(), 10, "stale watermark is ignored");
    }

    #[test]
    fn codec_round_trips_and_validates() {
        let mut m = MergeState::new();
        m.record_ahead([4, 8]);
        m.advance(3);
        m.sink_bytes = 77;
        let text = hdd_json::to_string(&m.to_json());
        assert_eq!(
            MergeState::from_json(&hdd_json::parse(&text).unwrap()).unwrap(),
            m
        );

        let bad = text.replacen("[4,8]", "[8,4]", 1);
        assert!(MergeState::from_json(&hdd_json::parse(&bad).unwrap()).is_err());
    }
}
