//! Per-shard row counters.
//!
//! [`ShardStats`] holds only the counters that advance when a *committed
//! line* advances shard state — they are part of the checkpointed,
//! replay-exact shard state, so a killed-and-resumed shard reports the
//! same numbers as an uninterrupted one. Breaker state *transitions*
//! qualify: the breaker advances per committed row, so the transition
//! count is replay-exact too. Daemon-level operational counters
//! (rotations, model reloads, replayed lines) are deliberately *not*
//! here: they describe the process, not the stream, and live as plain
//! counters in the serve loop. Queue drops sit in between — they are
//! per-shard but queue-level, so the topology checkpoints them beside
//! the merge state rather than inside the engine state.

use hdd_json::{JsonCodec, JsonError, Value};

/// Row-level counters for one shard, serialized into its checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Data rows seen (header and blank lines excluded).
    pub rows_seen: usize,
    /// Rows accepted into a drive's history.
    pub rows_accepted: usize,
    /// Rows that failed structural parsing.
    pub parse_failures: usize,
    /// Rows carrying NaN or infinite values.
    pub non_finite_rows: usize,
    /// Rows with values outside the plausible range.
    pub out_of_range_rows: usize,
    /// Rows contradicting their drive's class metadata.
    pub conflicting_rows: usize,
    /// Rows at or before their drive's latest seen hour (late arrivals
    /// and duplicates; streaming is first-write-wins).
    pub stale_rows: usize,
    /// Alarms this shard produced (before the topology merge).
    pub alarms_emitted: usize,
    /// Alarm decisions suppressed while degraded.
    pub alarms_suppressed: usize,
    /// Circuit-breaker state transitions (Healthy → Degraded →
    /// Recovering → …), counted at the committed row that caused each.
    pub breaker_transitions: usize,
}

impl ShardStats {
    /// Rows dropped as unusable (the breaker's numerator).
    #[must_use]
    pub fn quarantined_rows(&self) -> usize {
        self.parse_failures + self.non_finite_rows + self.out_of_range_rows + self.conflicting_rows
    }

    /// Element-wise sum, for topology-wide status reporting.
    #[must_use]
    pub fn merged(&self, other: &ShardStats) -> ShardStats {
        let mut out = *self;
        for (_, get, get_mut) in &STAT_FIELDS {
            *get_mut(&mut out) += *get(other);
        }
        out
    }
}

/// Shared accessor type for one [`STAT_FIELDS`] entry.
type StatGet = fn(&ShardStats) -> &usize;
/// Mutable accessor type for one [`STAT_FIELDS`] entry.
type StatGetMut = fn(&mut ShardStats) -> &mut usize;

/// One entry of [`STAT_FIELDS`]: a stats counter's JSON key plus its
/// shared and mutable accessors.
type StatField = (&'static str, StatGet, StatGetMut);

/// `(json key, accessor)` for every stats counter — one table drives the
/// codec in both directions so a field can't be forgotten in one of them.
const STAT_FIELDS: [StatField; 10] = [
    ("rows_seen", |s| &s.rows_seen, |s| &mut s.rows_seen),
    (
        "rows_accepted",
        |s| &s.rows_accepted,
        |s| &mut s.rows_accepted,
    ),
    (
        "parse_failures",
        |s| &s.parse_failures,
        |s| &mut s.parse_failures,
    ),
    (
        "non_finite_rows",
        |s| &s.non_finite_rows,
        |s| &mut s.non_finite_rows,
    ),
    (
        "out_of_range_rows",
        |s| &s.out_of_range_rows,
        |s| &mut s.out_of_range_rows,
    ),
    (
        "conflicting_rows",
        |s| &s.conflicting_rows,
        |s| &mut s.conflicting_rows,
    ),
    ("stale_rows", |s| &s.stale_rows, |s| &mut s.stale_rows),
    (
        "alarms_emitted",
        |s| &s.alarms_emitted,
        |s| &mut s.alarms_emitted,
    ),
    (
        "alarms_suppressed",
        |s| &s.alarms_suppressed,
        |s| &mut s.alarms_suppressed,
    ),
    (
        "breaker_transitions",
        |s| &s.breaker_transitions,
        |s| &mut s.breaker_transitions,
    ),
];

impl JsonCodec for ShardStats {
    fn to_json(&self) -> Value {
        Value::Obj(
            STAT_FIELDS
                .iter()
                .map(|(key, get, _)| ((*key).to_string(), Value::Num(*get(self) as f64)))
                .collect(),
        )
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mut stats = ShardStats::default();
        for (key, _, get_mut) in &STAT_FIELDS {
            *get_mut(&mut stats) = value.usize_field(key)?;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_every_field() {
        let mut stats = ShardStats::default();
        for (i, (_, _, get_mut)) in STAT_FIELDS.iter().enumerate() {
            *get_mut(&mut stats) = i + 1;
        }
        let back = ShardStats::from_json(&stats.to_json()).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn missing_field_is_rejected() {
        let doc = ShardStats::default().to_json();
        let text = hdd_json::to_string(&doc).replacen("\"stale_rows\"", "\"stole_rows\"", 1);
        assert!(ShardStats::from_json(&hdd_json::parse(&text).unwrap()).is_err());
    }

    #[test]
    fn merged_sums_element_wise() {
        let a = ShardStats {
            rows_seen: 3,
            stale_rows: 1,
            ..ShardStats::default()
        };
        let b = ShardStats {
            rows_seen: 4,
            alarms_emitted: 2,
            ..ShardStats::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.rows_seen, 7);
        assert_eq!(m.stale_rows, 1);
        assert_eq!(m.alarms_emitted, 2);
    }
}
