//! The sharded serving topology: queues, tick fan-out, deterministic
//! alarm merge, and the checkpoint directory protocol.
//!
//! A [`ServeTopology`] owns `n_shards` [`EngineShard`]s, each behind a
//! bounded queue of [`RoutedLine`]s. One *tick* fans the shards out
//! across the worker pool (each shard drains its queue in sub-batches),
//! then runs the merge stage: every buffered alarm whose seq is below
//! the topology **watermark** — the minimum of the ingest watermark and
//! the smallest seq still queued anywhere — is emitted in seq order.
//! Because routing, seqs and per-shard state are all pure functions of
//! feed content, the emitted byte stream is identical at any shard
//! count and any poll/tick interleaving (see DESIGN.md §8; the one
//! caveat is quarantine suppression, which is per-shard by design).
//!
//! Checkpoints live in a **directory**: `topology.ckpt` holds the merge
//! state (plus the shard/feed counts it was written for), and
//! `shard-<k>.ckpt` holds shard `k`'s engine state. The save order —
//! sink first, then `topology.ckpt`, then dirty shard files — is what
//! makes a crash between any two writes recoverable: a shard file can
//! only ever be *behind* the merge state, so replayed lines regenerate
//! alarms that [`MergeState::already_emitted`] then filters out.
//!
//! Inside a tick the pool is spent on whichever axis has the
//! parallelism: with one shard the engine scores its batches on the
//! full pool; with several, shards run concurrently and each scores
//! serially.

use crate::breaker::BreakerState;
use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointKind};
use crate::engine::{EngineConfig, EngineShard, RowEvent, SeqAlarm};
use crate::ingest::{FeedCursor, RoutedLine};
use crate::merge::MergeState;
use crate::queue::BoundedQueue;
use crate::router::ShardRouter;
use hdd_eval::{ModelError, SavedModel};
use hdd_json::{JsonCodec, Value};
use hdd_par::{CancelToken, ParError, ThreadPool};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Lines committed per engine call inside a tick, so deadline checks
/// happen at a useful granularity.
pub const SUB_BATCH_LINES: usize = 256;

/// One shard plus its inbound queue.
#[derive(Debug)]
struct ShardSlot {
    engine: EngineShard,
    queue: BoundedQueue<RoutedLine>,
    /// Whether the engine changed since its checkpoint file was written.
    dirty: bool,
}

/// What one shard's fan-out slice of a tick produced.
#[derive(Debug, Default)]
struct SlotTickResult {
    processed: usize,
    replayed: usize,
    transitions: Vec<BreakerState>,
    /// A scoring panic (a bug); deadline/cancel just leave lines queued.
    fatal: Option<ParError>,
}

/// What one topology tick produced.
#[derive(Debug, Default)]
pub struct TickOutcome {
    /// Whether any line committed or any alarm was emitted (the serve
    /// loop's idle test).
    pub progressed: bool,
    /// Alarms released by the merge stage this tick, in seq order —
    /// append these to the sink *before* checkpointing.
    pub alarms: Vec<SeqAlarm>,
    /// Breaker transitions, tagged with the shard they happened on.
    pub transitions: Vec<(usize, BreakerState)>,
    /// Already-committed lines skipped during crash replay (operational
    /// counter; zero state effect).
    pub replayed: usize,
    /// Row events released by the merge stage this tick, in seq order —
    /// empty unless event recording is on. Released under the same
    /// watermark as alarms, so the event stream a lifecycle consumer
    /// sees is identical at any shard count.
    pub events: Vec<RowEvent>,
}

/// The path of the merge-state checkpoint inside `dir`.
#[must_use]
pub fn topology_path(dir: &Path) -> PathBuf {
    dir.join("topology.ckpt")
}

/// The path of shard `k`'s checkpoint inside `dir`.
#[must_use]
pub fn shard_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("shard-{k}.ckpt"))
}

/// `n_shards` engine shards behind bounded queues, with a deterministic
/// merge stage; see the module docs.
#[derive(Debug)]
pub struct ServeTopology {
    slots: Vec<ShardSlot>,
    router: ShardRouter,
    merge: MergeState,
    n_feeds: usize,
}

impl ServeTopology {
    /// A fresh topology of `n_shards` shards over `n_feeds` feeds, each
    /// shard buffering at most `queue_capacity` routed lines.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] when the model does not
    /// score the feature set's dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is not a power of two, `n_feeds` is zero, or
    /// `queue_capacity` is zero (the CLI validates all three as usage
    /// errors first).
    pub fn new(
        model: &Arc<SavedModel>,
        features: &hdd_stats::FeatureSet,
        config: EngineConfig,
        n_shards: usize,
        n_feeds: usize,
        queue_capacity: usize,
    ) -> Result<Self, ModelError> {
        let router = ShardRouter::new(n_shards);
        let mut slots = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            slots.push(ShardSlot {
                engine: EngineShard::new(Arc::clone(model), features.clone(), config, n_feeds)?,
                queue: BoundedQueue::new(queue_capacity),
                dirty: false,
            });
        }
        Ok(ServeTopology {
            slots,
            router,
            merge: MergeState::new(),
            n_feeds,
        })
    }

    /// The router partitioning drive ids across these shards — build the
    /// ingest with exactly this one.
    #[must_use]
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// How many shards this topology runs.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.slots.len()
    }

    /// How many feeds this topology consumes.
    #[must_use]
    pub fn n_feeds(&self) -> usize {
        self.n_feeds
    }

    /// The merge stage's durable state (low-water mark, early-flushed
    /// seqs, checkpointed sink length).
    #[must_use]
    pub fn merge_state(&self) -> &MergeState {
        &self.merge
    }

    /// The smallest free queue capacity across shards — the safe ingest
    /// poll budget: however routing lands, no queue can overflow.
    #[must_use]
    pub fn free(&self) -> usize {
        self.slots.iter().map(|s| s.queue.free()).min().unwrap_or(0)
    }

    /// Lines queued across all shards.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.slots.iter().map(|s| s.queue.len()).sum()
    }

    /// Whether any shard still has queued lines.
    #[must_use]
    pub fn has_queued(&self) -> bool {
        self.slots.iter().any(|s| !s.queue.is_empty())
    }

    /// Lines evicted from full queues since startup (zero as long as the
    /// caller polls within [`ServeTopology::free`]).
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.slots.iter().map(|s| s.queue.dropped()).sum()
    }

    /// Per-shard eviction counters, shard order — the skew-diagnosis
    /// companion to [`ServeTopology::shard_stats`]; checkpointed beside
    /// the merge state so a resumed run reports cumulative loss.
    #[must_use]
    pub fn shard_dropped(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.queue.dropped()).collect()
    }

    /// Merged counters across all shards.
    #[must_use]
    pub fn stats(&self) -> crate::stats::ShardStats {
        let mut out = crate::stats::ShardStats::default();
        for slot in &self.slots {
            out = out.merged(&slot.engine.stats());
        }
        out
    }

    /// Per-shard counters, shard order — the monitoring view that makes
    /// load skew visible (the merged roll-up is [`ServeTopology::stats`]).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<crate::stats::ShardStats> {
        self.slots.iter().map(|s| s.engine.stats()).collect()
    }

    /// Drives tracked across all shards (drive ids never cross shards,
    /// so this is an exact count).
    #[must_use]
    pub fn tracked_drives(&self) -> usize {
        self.slots.iter().map(|s| s.engine.tracked_drives()).sum()
    }

    /// Per-shard breaker states, shard order.
    #[must_use]
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.slots
            .iter()
            .map(|s| s.engine.breaker_state())
            .collect()
    }

    /// Enqueue one ingest poll's routing (`routed[k]` → shard `k`);
    /// returns how many lines were evicted (zero when the poll budget
    /// came from [`ServeTopology::free`]).
    ///
    /// # Panics
    ///
    /// Panics if `routed` does not have one bucket per shard.
    pub fn enqueue(&mut self, routed: Vec<Vec<RoutedLine>>) -> usize {
        assert_eq!(routed.len(), self.slots.len(), "one bucket per shard");
        let before: usize = self.dropped();
        for (slot, lines) in self.slots.iter_mut().zip(routed) {
            for line in lines {
                slot.queue.push(line);
            }
        }
        self.dropped() - before
    }

    /// Run one tick: fan the shards out over `pool`, then emit every
    /// alarm the watermark has cleared, in seq order.
    ///
    /// `ingest_cursors` / `ingest_watermark` are the ingest layer's
    /// current positions ([`crate::ingest::MultiFeedIngest::cursors`] /
    /// [`crate::ingest::MultiFeedIngest::watermark`]); shards whose
    /// queues drained adopt the cursor snapshot so their checkpoints
    /// track feed positions even through quiet stretches.
    ///
    /// Each shard commits its first sub-batch deadline-free (so a tight
    /// tick budget degrades throughput, never liveness) and the rest
    /// under `token`; a deadline mid-queue simply leaves the remainder
    /// for the next tick.
    ///
    /// # Errors
    ///
    /// Returns [`ParError::Panic`] if the model panicked while scoring
    /// (a bug — committed state is still consistent: whole sub-batches
    /// either committed or did not).
    pub fn tick(
        &mut self,
        pool: &ThreadPool,
        token: &CancelToken,
        ingest_cursors: &[FeedCursor],
        ingest_watermark: u64,
    ) -> Result<TickOutcome, ParError> {
        // With one shard the engine gets the whole pool for scoring;
        // with several, the pool parallelises across shards instead.
        let inner = if self.slots.len() > 1 {
            ThreadPool::serial()
        } else {
            *pool
        };
        let results = pool
            .try_parallel_map_mut(&mut self.slots, |_, slot| {
                let mut res = SlotTickResult::default();
                let first_batch = CancelToken::new();
                while !slot.queue.is_empty() {
                    let take = SUB_BATCH_LINES.min(slot.queue.len());
                    // audit:allow(R3) reason="take is min(SUB_BATCH_LINES, queue.len()), never past the contiguous slice"
                    let batch = slot.queue.make_contiguous()[..take].to_vec();
                    let tok = if res.processed == 0 {
                        &first_batch
                    } else {
                        token
                    };
                    match slot.engine.process(&inner, tok, &batch) {
                        Ok(outcome) => {
                            slot.queue.discard(take);
                            slot.dirty = true;
                            res.processed += take;
                            res.replayed += outcome.replayed;
                            res.transitions.extend(outcome.transitions);
                        }
                        Err(ParError::Cancelled | ParError::DeadlineExceeded) => break,
                        Err(fatal) => {
                            res.fatal = Some(fatal);
                            break;
                        }
                    }
                }
                res
            })
            .map_err(ParError::from)?;

        let mut outcome = TickOutcome::default();
        for (shard, res) in results.into_iter().enumerate() {
            if let Some(fatal) = res.fatal {
                return Err(fatal);
            }
            outcome.progressed |= res.processed > 0;
            outcome.replayed += res.replayed;
            outcome
                .transitions
                .extend(res.transitions.into_iter().map(|t| (shard, t)));
        }

        // Drained shards may claim the ingest's feed positions: every
        // line routed to them before the snapshot has now committed.
        for slot in &mut self.slots {
            if slot.queue.is_empty() && slot.engine.adopt_cursors(ingest_cursors) {
                slot.dirty = true;
            }
        }

        // The merge watermark: no shard can still produce a smaller seq.
        let queued_min = self
            .slots
            .iter()
            .flat_map(|s| s.queue.iter().map(|l| l.seq))
            .min();
        let watermark = queued_min.map_or(ingest_watermark, |q| q.min(ingest_watermark));
        outcome.alarms = self.emit(|a| a.seq < watermark);
        outcome.events = self.release_events(|e| e.seq < watermark);
        self.merge.advance(watermark);
        outcome.progressed |= !outcome.alarms.is_empty();
        Ok(outcome)
    }

    /// Drain alarms selected by `take` from every shard, drop the ones
    /// the merge already emitted, and return the rest in seq order.
    fn emit(&mut self, take: impl Fn(&SeqAlarm) -> bool) -> Vec<SeqAlarm> {
        let mut emitted = Vec::new();
        for slot in &mut self.slots {
            let drained = slot
                .engine
                .drain_unmerged(|a| take(a) || self.merge.already_emitted(a.seq));
            if !drained.is_empty() {
                slot.dirty = true;
            }
            emitted.extend(
                drained
                    .into_iter()
                    .filter(|a| !self.merge.already_emitted(a.seq)),
            );
        }
        emitted.sort_unstable_by_key(|a| a.seq);
        emitted
    }

    /// Flush every buffered alarm regardless of the watermark, in seq
    /// order, recording their seqs so neither a resume nor a late-growing
    /// feed can re-emit them. Call only when the feeds are idle and
    /// [`ServeTopology::has_queued`] is false — with feeds of unequal
    /// length the watermark stalls at the shortest feed forever, and
    /// this is the escape hatch.
    pub fn flush_pending(&mut self) -> Vec<SeqAlarm> {
        let flushed = self.emit(|_| true);
        self.merge.record_ahead(flushed.iter().map(|a| a.seq));
        flushed
    }

    /// Turn [`RowEvent`] recording on or off for every shard. Off by
    /// default; a model lifecycle turns it on at startup.
    pub fn set_record_events(&mut self, on: bool) {
        for slot in &mut self.slots {
            slot.engine.set_record_events(on);
        }
    }

    /// Drain events selected by `take` from every shard, in seq order.
    /// The caller (the lifecycle) is responsible for dropping events it
    /// already consumed before a crash — replayed lines regenerate them
    /// with the same seqs.
    fn release_events(&mut self, take: impl Fn(&RowEvent) -> bool) -> Vec<RowEvent> {
        let mut released = Vec::new();
        for slot in &mut self.slots {
            let drained = slot.engine.drain_events(&take);
            if !drained.is_empty() {
                slot.dirty = true;
            }
            released.extend(drained);
        }
        released.sort_unstable_by_key(|e| e.seq);
        released
    }

    /// Flush every buffered row event regardless of the watermark, in
    /// seq order — the event counterpart of
    /// [`ServeTopology::flush_pending`], for the same stalled-watermark
    /// idle case. Seq-based dedup on the consumer side keeps a later
    /// resume from double-counting them.
    pub fn flush_events(&mut self) -> Vec<RowEvent> {
        self.release_events(|_| true)
    }

    /// Record the alarm-sink length the next checkpoint corresponds to;
    /// call after appending and flushing sink bytes, before
    /// [`ServeTopology::save_checkpoints`].
    pub fn note_sink_bytes(&mut self, bytes: u64) {
        self.merge.sink_bytes = bytes;
    }

    /// Swap a hot-reloaded model into every shard.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] when the replacement does
    /// not score the configured feature dimensionality; no shard is
    /// changed and the current model keeps serving everywhere.
    pub fn swap_model(&mut self, model: &Arc<SavedModel>) -> Result<(), ModelError> {
        // The contract is identical for every shard, so validate on the
        // first and the rest cannot fail halfway.
        for slot in &mut self.slots {
            slot.engine.swap_model(Arc::clone(model))?;
        }
        Ok(())
    }

    /// Write the checkpoint directory: `topology.ckpt` first, then every
    /// dirty `shard-<k>.ckpt`. The caller must have appended and flushed
    /// sink bytes (and [`ServeTopology::note_sink_bytes`]) beforehand —
    /// sink → topology → shards is the order the resume protocol relies
    /// on (a shard file may lag the merge state, never lead it).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when a file cannot be written.
    pub fn save_checkpoints(&mut self, dir: &Path) -> Result<(), CheckpointError> {
        std::fs::create_dir_all(dir)?;
        let payload = Value::Obj(vec![
            ("n_shards".to_string(), Value::Num(self.slots.len() as f64)),
            ("n_feeds".to_string(), Value::Num(self.n_feeds as f64)),
            ("merge".to_string(), self.merge.to_json()),
            (
                "dropped".to_string(),
                Value::from_usizes(self.shard_dropped()),
            ),
        ]);
        Checkpoint {
            kind: CheckpointKind::Topology,
            payload,
        }
        .save(&topology_path(dir))?;
        for (k, slot) in self.slots.iter_mut().enumerate() {
            if !slot.dirty {
                continue;
            }
            Checkpoint {
                kind: CheckpointKind::Shard,
                payload: slot.engine.state_to_json(),
            }
            .save(&shard_path(dir, k))?;
            slot.dirty = false;
        }
        Ok(())
    }

    /// Restore state from a checkpoint directory written by
    /// [`ServeTopology::save_checkpoints`]. Returns whether a checkpoint
    /// was found (`false` means a fresh start: the directory holds no
    /// topology state).
    ///
    /// A missing `shard-<k>.ckpt` restores shard `k` fresh — its lines
    /// replay from the feed start and the merge filter drops what was
    /// already emitted. Shard files *without* a `topology.ckpt` are
    /// refused: the merge state is what makes replay exactly-once, so
    /// resuming without it could duplicate sink lines.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Incompatible`] when the directory was
    /// written for a different shard or feed count (sharding changes
    /// need a fresh checkpoint directory), and [`CheckpointError`] for
    /// corrupt, unreadable or wrong-kind files.
    pub fn resume(&mut self, dir: &Path) -> Result<bool, CheckpointError> {
        let topo = topology_path(dir);
        if !topo.exists() {
            if let Some(orphan) = find_shard_file(dir)? {
                return Err(CheckpointError::Incompatible(format!(
                    "{} exists but {} does not; refusing to resume without \
                     the merge state (move the shard files away to start fresh)",
                    orphan.display(),
                    topo.display()
                )));
            }
            return Ok(false);
        }
        let ck = Checkpoint::load_expecting(&topo, CheckpointKind::Topology)?;
        let ck_shards = ck.payload.usize_field("n_shards")?;
        let ck_feeds = ck.payload.usize_field("n_feeds")?;
        if ck_shards != self.slots.len() || ck_feeds != self.n_feeds {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint was written for {ck_shards} shard(s) over {ck_feeds} feed(s); \
                 this topology runs {} over {}",
                self.slots.len(),
                self.n_feeds
            )));
        }
        self.merge = MergeState::from_json(ck.payload.field("merge")?)?;
        let dropped = ck.payload.usize_vec_field("dropped")?;
        if dropped.len() != self.slots.len() {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint records {} per-shard drop counter(s) for {} shard(s)",
                dropped.len(),
                self.slots.len()
            )));
        }
        for (slot, n) in self.slots.iter_mut().zip(dropped) {
            slot.queue.restore_dropped(n);
        }
        for (k, slot) in self.slots.iter_mut().enumerate() {
            let path = shard_path(dir, k);
            if !path.exists() {
                continue;
            }
            let ck = Checkpoint::load_expecting(&path, CheckpointKind::Shard)?;
            slot.engine.restore_state(&ck.payload)?;
            // A shard file older than the merge state may hold alarms
            // that already reached the sink; drop them now (replayed
            // lines would only regenerate filtered duplicates).
            let merge = &self.merge;
            slot.engine.drain_unmerged(|a| merge.already_emitted(a.seq));
        }
        Ok(true)
    }

    /// The feed positions ingest must resume from: per feed, the
    /// *earliest* position any shard's checkpoint needs — shards ahead
    /// of it skip the replayed overlap by cursor.
    #[must_use]
    pub fn ingest_resume_cursors(&self) -> Vec<FeedCursor> {
        (0..self.n_feeds)
            .map(|f| {
                self.slots
                    .iter()
                    // audit:allow(R3) reason="every shard engine is built with the same n_feeds, so cursors() has an entry for f"
                    .map(|s| s.engine.cursors()[f])
                    .min_by_key(FeedCursor::position_key)
                    .unwrap_or_default()
            })
            .collect()
    }
}

/// The first `shard-<k>.ckpt` in `dir`, if any (scans the directory so
/// leftovers from a *larger* previous shard count are caught too).
fn find_shard_file(dir: &Path) -> Result<Option<PathBuf>, CheckpointError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CheckpointError::Io(e)),
    };
    for entry in entries {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("shard-") && name.ends_with(".ckpt") {
            return Ok(Some(path));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::{data_row, feed_lines, fleet, model};
    use crate::engine::Alarm;
    use crate::ingest::MultiFeedIngest;
    use hdd_eval::VotingRule;
    use hdd_fault::{FaultClass, FaultInjector};
    use hdd_smart::SmartSeries;
    use hdd_stats::FeatureSet;
    use std::fmt::Write as _;
    use std::fs;

    const VOTERS: usize = 11;

    fn config() -> EngineConfig {
        EngineConfig::new(VOTERS, VotingRule::Majority, 0.1)
    }

    fn topology(model: &Arc<SavedModel>, features: &FeatureSet, n_shards: usize) -> ServeTopology {
        ServeTopology::new(model, features, config(), n_shards, 2, 4096).unwrap()
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hdd-serve-topology-{}-{tag}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Write the fleet as two feed files, drives split by parity (the
    /// determinism contract: a drive's rows all live on one feed).
    fn write_feeds(dir: &Path, series: &[SmartSeries]) -> Vec<PathBuf> {
        let paths = vec![dir.join("feed-0.csv"), dir.join("feed-1.csv")];
        let mut bufs = [Vec::new(), Vec::new()];
        for buf in &mut bufs {
            hdd_smart::csv::write_header(buf).unwrap();
        }
        for s in series {
            hdd_smart::csv::write_series(&mut bufs[(s.drive.0 % 2) as usize], s).unwrap();
        }
        for (path, buf) in paths.iter().zip(bufs) {
            fs::write(path, buf).unwrap();
        }
        paths
    }

    /// Poll and tick until the feeds and queues are drained, then flush;
    /// returns the sink text.
    fn drive_to_idle(topology: &mut ServeTopology, ingest: &mut MultiFeedIngest) -> String {
        let mut sink = String::new();
        run_until_idle(topology, ingest, &mut sink);
        for a in topology.flush_pending() {
            writeln!(sink, "{}", a.alarm).unwrap();
        }
        topology.note_sink_bytes(sink.len() as u64);
        sink
    }

    fn run_until_idle(
        topology: &mut ServeTopology,
        ingest: &mut MultiFeedIngest,
        sink: &mut String,
    ) {
        let pool = ThreadPool::global();
        loop {
            let out = ingest.poll(topology.free());
            assert!(out.errors.is_empty());
            assert_eq!(topology.enqueue(out.routed), 0);
            let tick = topology
                .tick(
                    &pool,
                    &CancelToken::new(),
                    &ingest.cursors(),
                    ingest.watermark(),
                )
                .unwrap();
            for a in &tick.alarms {
                writeln!(sink, "{}", a.alarm).unwrap();
            }
            topology.note_sink_bytes(sink.len() as u64);
            if out.lines_read == 0 && !topology.has_queued() {
                return;
            }
        }
    }

    #[test]
    fn one_shard_topology_matches_the_bare_engine() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let lines = feed_lines(&series);

        // Reference: the bare shard over the same single-feed line
        // stream (seqs are line indices, n_feeds = 1).
        let mut reference =
            EngineShard::new(Arc::clone(&model), features.clone(), config(), 1).unwrap();
        let pool = ThreadPool::global();
        reference
            .process(&pool, &CancelToken::new(), &lines)
            .unwrap();
        let expected: Vec<Alarm> = reference.unmerged().iter().map(|a| a.alarm).collect();
        assert!(!expected.is_empty());

        let mut topo = ServeTopology::new(&model, &features, config(), 1, 1, lines.len()).unwrap();
        assert_eq!(topo.enqueue(vec![lines.clone()]), 0);
        let tick = topo
            .tick(
                &pool,
                &CancelToken::new(),
                &[FeedCursor::default()],
                u64::MAX,
            )
            .unwrap();
        assert!(tick.progressed);
        let got: Vec<Alarm> = tick.alarms.iter().map(|a| a.alarm).collect();
        assert_eq!(got, expected);
        assert_eq!(topo.stats(), reference.stats());
        assert_eq!(topo.tracked_drives(), reference.tracked_drives());
    }

    #[test]
    fn alarm_output_is_identical_at_1_2_and_4_shards() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let dir = scratch_dir("shard-identity");
        let paths = write_feeds(&dir, &series);

        let mut sinks = Vec::new();
        for n_shards in [1usize, 2, 4] {
            let mut topo = topology(&model, &features, n_shards);
            let mut ingest = MultiFeedIngest::new(&paths, topo.router());
            sinks.push(drive_to_idle(&mut topo, &mut ingest));
        }
        assert!(!sinks[0].is_empty(), "the fleet must alarm");
        assert_eq!(sinks[0], sinks[1], "2 shards diverged from 1");
        assert_eq!(sinks[0], sinks[2], "4 shards diverged from 1");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn released_events_are_identical_at_any_shard_count() {
        // The lifecycle's input stream: watermark-gated event release
        // must produce the same seq-ordered events no matter how drives
        // are partitioned.
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let dir = scratch_dir("event-identity");
        let paths = write_feeds(&dir, &series);
        let pool = ThreadPool::global();

        let mut streams = Vec::new();
        for n_shards in [1usize, 2, 4] {
            let mut topo = topology(&model, &features, n_shards);
            topo.set_record_events(true);
            let mut ingest = MultiFeedIngest::new(&paths, topo.router());
            let mut events = Vec::new();
            loop {
                let out = ingest.poll(topo.free());
                assert!(out.errors.is_empty());
                assert_eq!(topo.enqueue(out.routed), 0);
                let tick = topo
                    .tick(
                        &pool,
                        &CancelToken::new(),
                        &ingest.cursors(),
                        ingest.watermark(),
                    )
                    .unwrap();
                events.extend(tick.events);
                if out.lines_read == 0 && !topo.has_queued() {
                    break;
                }
            }
            events.extend(topo.flush_events());
            assert!(!events.is_empty(), "the fleet must produce events");
            streams.push(events);
        }
        assert_eq!(streams[0], streams[1], "2 shards diverged from 1");
        assert_eq!(streams[0], streams[2], "4 shards diverged from 1");
        // Seq-ordered, strictly ascending (seqs are unique per line).
        assert!(streams[0].windows(2).all(|w| w[0].seq < w[1].seq));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_resume_mid_run_is_byte_identical() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let dir = scratch_dir("resume");
        let paths = write_feeds(&dir, &series);

        let mut reference_topo = topology(&model, &features, 4);
        let mut reference_ingest = MultiFeedIngest::new(&paths, reference_topo.router());
        let reference = drive_to_idle(&mut reference_topo, &mut reference_ingest);

        // Run partially with a small poll budget, checkpoint, keep
        // running (these post-checkpoint bytes get "lost in the crash"),
        // then resume from the checkpoint and finish.
        let ckpt = dir.join("ckpt");
        let pool = ThreadPool::global();
        let mut topo = topology(&model, &features, 4);
        let mut ingest = MultiFeedIngest::new(&paths, topo.router());
        let mut sink = String::new();
        for _ in 0..5 {
            let out = ingest.poll(97.min(topo.free()));
            topo.enqueue(out.routed);
            let tick = topo
                .tick(
                    &pool,
                    &CancelToken::new(),
                    &ingest.cursors(),
                    ingest.watermark(),
                )
                .unwrap();
            for a in &tick.alarms {
                writeln!(sink, "{}", a.alarm).unwrap();
            }
        }
        topo.note_sink_bytes(sink.len() as u64);
        topo.save_checkpoints(&ckpt).unwrap();
        let saved_sink = sink.clone();
        // Uncheckpointed progress after the save, then the "crash".
        for _ in 0..3 {
            let out = ingest.poll(97.min(topo.free()));
            topo.enqueue(out.routed);
            let tick = topo
                .tick(
                    &pool,
                    &CancelToken::new(),
                    &ingest.cursors(),
                    ingest.watermark(),
                )
                .unwrap();
            for a in &tick.alarms {
                writeln!(sink, "{}", a.alarm).unwrap();
            }
        }
        drop(topo);
        drop(ingest);

        let mut resumed = topology(&model, &features, 4);
        assert!(resumed.resume(&ckpt).unwrap());
        let mut sink = saved_sink;
        sink.truncate(resumed.merge_state().sink_bytes as usize);
        let cursors = resumed.ingest_resume_cursors();
        let mut ingest = MultiFeedIngest::resume(&paths, resumed.router(), &cursors);
        run_until_idle(&mut resumed, &mut ingest, &mut sink);
        for a in resumed.flush_pending() {
            writeln!(sink, "{}", a.alarm).unwrap();
        }
        assert_eq!(sink, reference, "resumed topology diverged");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idle_flush_survives_resume_without_duplicates() {
        // A short feed next to a long one: the watermark stalls at the
        // short feed, alarms flush on idle, and a resume afterwards must
        // not re-emit them.
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let dir = scratch_dir("idle-flush");

        // Feed 0 gets everything, feed 1 only a couple of rows.
        let paths = vec![dir.join("long.csv"), dir.join("short.csv")];
        let mut long = Vec::new();
        hdd_smart::csv::write_header(&mut long).unwrap();
        for s in &series {
            hdd_smart::csv::write_series(&mut long, s).unwrap();
        }
        fs::write(&paths[0], long).unwrap();
        fs::write(
            &paths[1],
            format!("{}\n{}\n", data_row(900_001, 1), data_row(900_001, 2)),
        )
        .unwrap();

        let ckpt = dir.join("ckpt");
        let mut topo = topology(&model, &features, 2);
        let mut ingest = MultiFeedIngest::new(&paths, topo.router());
        let sink = drive_to_idle(&mut topo, &mut ingest);
        assert!(!sink.is_empty(), "idle flush must have released alarms");
        assert!(
            !topo.merge_state().ahead().is_empty(),
            "flushed seqs are recorded ahead of the stalled watermark"
        );
        topo.save_checkpoints(&ckpt).unwrap();

        let mut resumed = topology(&model, &features, 2);
        assert!(resumed.resume(&ckpt).unwrap());
        let cursors = resumed.ingest_resume_cursors();
        let mut ingest = MultiFeedIngest::resume(&paths, resumed.router(), &cursors);
        let more = drive_to_idle(&mut resumed, &mut ingest);
        assert_eq!(more, "", "nothing new to emit, nothing re-emitted");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_refuses_mismatched_or_orphaned_checkpoints() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let dir = scratch_dir("refuse");

        let mut topo = topology(&model, &features, 2);
        assert!(!topo.resume(&dir).unwrap(), "empty dir is a fresh start");
        assert!(
            !topo.resume(&dir.join("never-created")).unwrap(),
            "missing dir is a fresh start"
        );
        // Commit a couple of rows so shard files get written too.
        let lines =
            crate::engine::tests::routed(&[data_row(1, 1), data_row(2, 1)].map(String::from));
        let mut buckets = vec![Vec::new(); 2];
        for line in lines {
            buckets[topo.router().shard_of_line(&line.text)].push(line);
        }
        topo.enqueue(buckets);
        topo.tick(
            &ThreadPool::global(),
            &CancelToken::new(),
            &[FeedCursor::default(); 2],
            0,
        )
        .unwrap();
        topo.save_checkpoints(&dir).unwrap();
        assert!(find_shard_file(&dir).unwrap().is_some());

        // Shard-count mismatch is typed, not silently re-partitioned.
        let mut wrong = topology(&model, &features, 4);
        let err = wrong.resume(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::Incompatible(_)), "{err}");
        assert!(err.to_string().contains("2 shard"), "{err}");

        // Shard files without the merge state are refused.
        fs::remove_file(topology_path(&dir)).unwrap();
        let mut orphan = topology(&model, &features, 2);
        let err = orphan.resume(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::Incompatible(_)), "{err}");
        assert!(err.to_string().contains("topology.ckpt"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_counters_are_per_shard_and_survive_resume() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let dir = scratch_dir("dropped");

        // A two-line queue fed five lines overflows by three; the loss
        // must be counted, checkpointed, and restored.
        let mut topo = ServeTopology::new(&model, &features, config(), 1, 1, 2).unwrap();
        let lines =
            crate::engine::tests::routed(&(0..5).map(|h| data_row(3, h)).collect::<Vec<_>>());
        assert_eq!(topo.enqueue(vec![lines]), 3);
        assert_eq!(topo.shard_dropped(), vec![3]);
        topo.tick(
            &ThreadPool::global(),
            &CancelToken::new(),
            &[FeedCursor::default()],
            5,
        )
        .unwrap();
        topo.save_checkpoints(&dir).unwrap();

        let mut resumed = ServeTopology::new(&model, &features, config(), 1, 1, 2).unwrap();
        assert!(resumed.resume(&dir).unwrap());
        assert_eq!(resumed.shard_dropped(), vec![3], "loss counter restored");
        assert_eq!(resumed.dropped(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shard_file_replays_without_duplicate_alarms() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let dir = scratch_dir("lost-shard");
        let paths = write_feeds(&dir, &series);
        let ckpt = dir.join("ckpt");

        let mut topo = topology(&model, &features, 2);
        let mut ingest = MultiFeedIngest::new(&paths, topo.router());
        let reference = drive_to_idle(&mut topo, &mut ingest);
        topo.save_checkpoints(&ckpt).unwrap();

        // Lose one shard's file: it replays from the feed start, and the
        // merge filter eats the regenerated alarms.
        fs::remove_file(shard_path(&ckpt, 1)).unwrap();
        let mut resumed = topology(&model, &features, 2);
        assert!(resumed.resume(&ckpt).unwrap());
        let cursors = resumed.ingest_resume_cursors();
        assert_eq!(
            cursors,
            vec![FeedCursor::default(); 2],
            "replays from the start"
        );
        let mut ingest = MultiFeedIngest::resume(&paths, resumed.router(), &cursors);
        let more = drive_to_idle(&mut resumed, &mut ingest);
        assert_eq!(
            more, "",
            "regenerated alarms must be filtered, got duplicates"
        );
        assert!(!reference.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn skewed_ids_funnel_the_whole_fleet_onto_one_shard() {
        // The shard-skew injector remaps every drive id onto ids that
        // hash to shard 0 of 4; the topology must keep working — one hot
        // shard, the rest idle — rather than fail or drop rows.
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let dir = scratch_dir("skew");

        let mut clean = Vec::new();
        hdd_smart::csv::write_header(&mut clean).unwrap();
        for s in &series {
            hdd_smart::csv::write_series(&mut clean, s).unwrap();
        }
        let clean = String::from_utf8(clean).unwrap();
        let (skewed, report) =
            FaultInjector::new(7).corrupt_csv(&clean, FaultClass::ShardSkewedIds, 1.0);
        assert!(report.skewed_rows > 0);
        let paths = vec![dir.join("feed.csv")];
        fs::write(&paths[0], &skewed).unwrap();

        let mut topo = ServeTopology::new(&model, &features, config(), 4, 1, 4096).unwrap();
        let mut ingest = MultiFeedIngest::new(&paths, topo.router());
        let sink = drive_to_idle(&mut topo, &mut ingest);
        assert!(!sink.is_empty(), "a skewed fleet still alarms");

        let per_shard = topo.shard_stats();
        assert_eq!(
            per_shard[0].rows_seen, report.skewed_rows,
            "the hot shard takes every row"
        );
        for (k, stats) in per_shard.iter().enumerate().skip(1) {
            assert_eq!(stats.rows_seen, 0, "shard {k} should be idle under skew");
        }
        assert_eq!(topo.stats().quarantined_rows(), 0, "skewed rows stay valid");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_retransmission_burst_is_counted_stale_with_no_alarm_impact() {
        // Re-appending the tail of a feed (an upstream retransmission)
        // must be absorbed as counted stale rows: first-write-wins, zero
        // state effect, byte-identical alarm output.
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let dir = scratch_dir("burst");
        let paths = write_feeds(&dir, &series);

        let mut clean_topo = topology(&model, &features, 4);
        let mut clean_ingest = MultiFeedIngest::new(&paths, clean_topo.router());
        let reference = drive_to_idle(&mut clean_topo, &mut clean_ingest);
        let clean_stale = clean_topo.stats().stale_rows;

        let text = fs::read_to_string(&paths[0]).unwrap();
        let (burst, report) =
            FaultInjector::new(7).corrupt_csv(&text, FaultClass::HotFeedBurst, 0.25);
        assert!(report.burst_rows > 0);
        fs::write(&paths[0], &burst).unwrap();

        let mut topo = topology(&model, &features, 4);
        let mut ingest = MultiFeedIngest::new(&paths, topo.router());
        let sink = drive_to_idle(&mut topo, &mut ingest);
        assert_eq!(
            topo.stats().stale_rows,
            clean_stale + report.burst_rows,
            "every burst row is dropped stale, and counted"
        );
        assert_eq!(
            sink, reference,
            "stale retransmissions must not change alarms"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_mid_tick_leaves_the_remainder_queued() {
        let features = FeatureSet::critical13();
        let series = fleet();
        let model = Arc::new(model(&series, &features));
        let lines = feed_lines(&series);
        let pool = ThreadPool::global();

        let mut topo = ServeTopology::new(&model, &features, config(), 1, 1, lines.len()).unwrap();
        topo.enqueue(vec![lines.clone()]);
        let token = CancelToken::new();
        token.cancel();
        // First sub-batch is deadline-free: progress is guaranteed even
        // under an expired budget.
        let tick = topo
            .tick(&pool, &token, &[FeedCursor::default()], 0)
            .unwrap();
        assert!(tick.progressed);
        assert_eq!(
            topo.queued(),
            lines.len() - SUB_BATCH_LINES.min(lines.len())
        );

        // Later ticks finish the job and the total output matches an
        // un-deadlined run.
        let mut alarms = Vec::new();
        loop {
            let tick = topo
                .tick(
                    &pool,
                    &CancelToken::new(),
                    &[FeedCursor::default()],
                    u64::MAX,
                )
                .unwrap();
            alarms.extend(tick.alarms.iter().map(|a| a.alarm));
            if !topo.has_queued() {
                break;
            }
        }
        let mut clean = ServeTopology::new(&model, &features, config(), 1, 1, lines.len()).unwrap();
        clean.enqueue(vec![lines.clone()]);
        let all = clean
            .tick(
                &pool,
                &CancelToken::new(),
                &[FeedCursor::default()],
                u64::MAX,
            )
            .unwrap();
        let mut expected: Vec<Alarm> = all.alarms.iter().map(|a| a.alarm).collect();
        // The deadline-cut run emitted some alarms in the first tick.
        let head_len = expected.len() - alarms.len();
        expected.drain(..head_len);
        assert_eq!(alarms, expected);
    }
}
