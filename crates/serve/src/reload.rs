//! Hot model reload with a last-known-good fallback.
//!
//! The daemon watches the model file's metadata (mtime + length) and,
//! when it changes, attempts a full checksummed load — the same
//! [`SavedModel::load_expecting`] path the CLI uses, so a half-written
//! or bit-flipped replacement is rejected with a typed error *before*
//! it can touch the serving path. On rejection the watcher reports the
//! error and the engine keeps scoring with the previous model; a later
//! valid replacement is picked up normally.
//!
//! One watcher serves the whole topology: the file is stat'd and loaded
//! once per change, the accept/last-known-good decision is made once,
//! and every shard receives a clone of the same [`Arc`]'d model — shard
//! counts cannot multiply reload I/O or, worse, let shards disagree
//! about which model generation they score with.

use hdd_eval::{ModelError, SavedModel};
use std::path::{Path, PathBuf};
use std::sync::Arc;
// audit:allow(R1) reason="mtime is a change-detection fingerprint only; it never enters engine state, scores, or checkpoints"
use std::time::SystemTime;

/// A model file's change-detection fingerprint.
// audit:allow(R1) reason="mtime is a change-detection fingerprint only; it never enters engine state, scores, or checkpoints"
type Stamp = (SystemTime, u64);

fn stamp(path: &Path) -> Option<Stamp> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

/// Watches a model file and yields replacement models as they appear.
#[derive(Debug)]
pub struct ModelWatcher {
    path: PathBuf,
    expected_features: usize,
    last: Option<Stamp>,
}

impl ModelWatcher {
    /// Watch `path`, treating its *current* contents as already loaded;
    /// only subsequent changes are reported. Replacement models must
    /// score `expected_features` features.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>, expected_features: usize) -> Self {
        let path = path.into();
        let last = stamp(&path);
        ModelWatcher {
            path,
            expected_features,
            last,
        }
    }

    /// Check for a change. `None` means unchanged; `Some(Ok(model))` is
    /// a validated replacement ready to hand to every shard;
    /// `Some(Err(_))` is a changed file that failed validation — the
    /// caller keeps its current model (last-known-good) and should log
    /// the error.
    ///
    /// A failed load still advances the fingerprint, so one bad
    /// replacement is reported once, not on every poll.
    pub fn poll(&mut self) -> Option<Result<Arc<SavedModel>, ModelError>> {
        let now = stamp(&self.path)?;
        if Some(now) == self.last {
            return None;
        }
        self.last = Some(now);
        Some(SavedModel::load_expecting(&self.path, self.expected_features).map(Arc::new))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd_cart::classifier::ClassificationTreeBuilder;
    use hdd_cart::sample::{Class, ClassSample};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hdd-serve-reload-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn model() -> SavedModel {
        let samples: Vec<ClassSample> = (0..120)
            .map(|i| {
                let x = (i % 17) as f64;
                let class = if x < 8.0 { Class::Failed } else { Class::Good };
                ClassSample::new(vec![x, (i % 5) as f64], class)
            })
            .collect();
        let tree = ClassificationTreeBuilder::new().build(&samples).unwrap();
        SavedModel::from(tree.compile())
    }

    /// Overwrite `path` and make sure its fingerprint actually moves even
    /// on filesystems with coarse mtime granularity.
    fn overwrite(path: &Path, bytes: &[u8], old: Option<(SystemTime, u64)>) {
        std::fs::write(path, bytes).unwrap();
        for _ in 0..50 {
            if stamp(path) != old {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            std::fs::write(path, bytes).unwrap();
        }
        panic!("could not move the file fingerprint");
    }

    #[test]
    fn unchanged_file_yields_nothing() {
        let path = scratch("unchanged.json");
        model().save(&path).unwrap();
        let mut w = ModelWatcher::new(&path, 2);
        assert!(w.poll().is_none());
        assert!(w.poll().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn valid_replacement_is_loaded() {
        let path = scratch("valid.json");
        let m = model();
        m.save(&path).unwrap();
        let mut w = ModelWatcher::new(&path, 2);
        let before = stamp(&path);

        // Rewrite the same document; the mtime moves the fingerprint.
        overwrite(&path, &std::fs::read(&path).unwrap(), before);
        match w.poll() {
            Some(Ok(loaded)) => assert_eq!(*loaded, m),
            other => panic!("expected a loaded model, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flipped_replacement_is_rejected_once() {
        let path = scratch("flipped.json");
        model().save(&path).unwrap();
        let mut w = ModelWatcher::new(&path, 2);
        let before = stamp(&path);

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        overwrite(&path, &bytes, before);

        match w.poll() {
            Some(Err(ModelError::Corrupt { .. })) => {}
            other => panic!("expected a corrupt-model rejection, got {other:?}"),
        }
        // Reported once; the unchanged bad file stays quiet after that.
        assert!(w.poll().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_silently_unchanged() {
        let path = scratch("vanishing.json");
        model().save(&path).unwrap();
        let mut w = ModelWatcher::new(&path, 2);
        std::fs::remove_file(&path).unwrap();
        assert!(w.poll().is_none(), "a vanished model file is not a change");
    }
}
