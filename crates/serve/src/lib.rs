//! Resilient streaming detection service.
//!
//! This crate turns the batch voting detector into a long-running
//! daemon: it tails an append-only SMART CSV feed, keeps per-drive
//! voting windows, and appends alarms to a line-oriented sink — while
//! surviving the things long-running processes actually meet:
//!
//! - **`kill -9`**: [`Checkpoint`] snapshots the engine (feed position,
//!   voting windows, counters, breaker) through the CRC-checked
//!   container with atomic rename; a restart replays the feed suffix
//!   and produces a byte-identical alarm sink.
//! - **Bad model pushes**: [`ModelWatcher`] validates every replacement
//!   through the checksummed model loader; a corrupt or mismatched file
//!   is rejected and the last-known-good model keeps serving.
//! - **Slow ticks**: scoring runs under a [`hdd_par::CancelToken`] time
//!   budget; an over-budget batch commits *nothing* and is retried, so
//!   deadlines never change what gets alarmed, only when.
//! - **Feed trouble**: transient I/O errors retry with deterministic
//!   capped exponential [`Backoff`]; a flood of unusable rows trips the
//!   quarantine [`CircuitBreaker`] into a degraded mode that suppresses
//!   alarms until the feed heals.
//! - **Overload**: the ingest [`BoundedQueue`] sheds oldest-first and
//!   counts every drop.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod breaker;
pub mod checkpoint;
pub mod engine;
pub mod queue;
pub mod reload;
pub mod retry;
pub mod tailer;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_FORMAT_VERSION, CHECKPOINT_MAGIC};
pub use engine::{Alarm, BatchOutcome, Engine, EngineConfig, FeedLine, ServeStats};
pub use queue::BoundedQueue;
pub use reload::ModelWatcher;
pub use retry::Backoff;
pub use tailer::{FeedTailer, TailEvent, MAX_LINE_BYTES};
