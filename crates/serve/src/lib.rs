//! Resilient sharded streaming detection service.
//!
//! This crate turns the batch voting detector into a long-running
//! daemon: it tails one or more append-only SMART CSV feeds, partitions
//! drives across detection shards, keeps per-drive voting windows, and
//! appends alarms to a line-oriented sink — while surviving the things
//! long-running processes actually meet:
//!
//! - **Scale**: [`MultiFeedIngest`] routes committed lines through a
//!   [`ShardRouter`] to `N` [`EngineShard`]s ticked in parallel by the
//!   [`ServeTopology`]; the merge stage orders alarms by the seq of the
//!   line that raised them, so the sink bytes are identical at any
//!   shard count and any feed interleaving.
//! - **`kill -9`**: each shard snapshots its state (feed cursors,
//!   voting windows, counters, breaker, unmerged alarms) into a
//!   per-shard [`Checkpoint`] file, with the merge state in
//!   `topology.ckpt`, all through the CRC-checked container with atomic
//!   rename; a restart replays the feed suffixes and produces a
//!   byte-identical alarm sink.
//! - **Bad model pushes**: one [`ModelWatcher`] validates every
//!   replacement through the checksummed model loader and hands the
//!   same `Arc`'d model to every shard; a corrupt or mismatched file is
//!   rejected and the last-known-good model keeps serving.
//! - **Slow ticks**: scoring runs under a [`hdd_par::CancelToken`] time
//!   budget; an over-budget batch commits *nothing* and is retried, so
//!   deadlines never change what gets alarmed, only when.
//! - **Feed trouble**: transient I/O errors retry with deterministic
//!   capped exponential [`Backoff`]; a flood of unusable rows trips a
//!   per-shard quarantine [`CircuitBreaker`] into a degraded mode that
//!   suppresses that shard's alarms until its slice of the feed heals.
//! - **Overload**: each shard's [`BoundedQueue`] sheds oldest-first and
//!   counts every drop (the serve loop polls within
//!   [`ServeTopology::free`], so it never actually drops).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod breaker;
pub mod checkpoint;
pub mod engine;
pub mod ingest;
pub mod merge;
pub mod monitor;
pub mod queue;
pub mod reload;
pub mod retry;
pub mod router;
pub mod stats;
pub mod tailer;
pub mod topology;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use checkpoint::{
    Checkpoint, CheckpointError, CheckpointKind, CHECKPOINT_FORMAT_VERSION, CHECKPOINT_MAGIC,
};
pub use engine::{Alarm, BatchOutcome, EngineConfig, EngineShard, RowEvent, SeqAlarm};
pub use ingest::{FeedCursor, MultiFeedIngest, PollOutcome, RoutedLine};
pub use merge::MergeState;
pub use queue::BoundedQueue;
pub use reload::ModelWatcher;
pub use retry::Backoff;
pub use router::ShardRouter;
pub use stats::ShardStats;
pub use tailer::{FeedTailer, TailEvent, MAX_LINE_BYTES};
pub use topology::{shard_path, topology_path, ServeTopology, TickOutcome, SUB_BATCH_LINES};
