//! Per-drive streaming state: history, voting window, alarm latch.
//!
//! A [`DriveMonitor`] is everything a shard remembers about one drive
//! the feed has mentioned. It advances only when a line for that drive
//! commits, and its JSON codec round-trips exactly, so a checkpointed
//! monitor resumes bit-identically.

use hdd_eval::VotingState;
use hdd_json::{JsonCodec, JsonError, Value};
use hdd_smart::csv::{CsvRow, ValueFault};
use hdd_smart::{DriveClass, Hour, SmartSample, NUM_ATTRIBUTES};

/// Live state of one drive the feed has mentioned.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DriveMonitor {
    pub(crate) class: DriveClass,
    /// Recent samples, strictly increasing in hour, pruned to the
    /// feature set's lookback window — exactly the suffix extraction
    /// can ever reference.
    pub(crate) history: Vec<SmartSample>,
    pub(crate) voting: VotingState,
    /// Latched once an alarm was *produced* for this drive.
    pub(crate) alarmed: bool,
}

fn class_to_json(class: DriveClass) -> Vec<(String, Value)> {
    match class {
        DriveClass::Good => vec![("failed".to_string(), Value::Bool(false))],
        DriveClass::Failed { fail_hour } => vec![
            ("failed".to_string(), Value::Bool(true)),
            ("fail_hour".to_string(), Value::Num(f64::from(fail_hour.0))),
        ],
    }
}

fn class_from_json(value: &Value) -> Result<DriveClass, JsonError> {
    let failed = value
        .field("failed")?
        .as_bool()
        .ok_or_else(|| JsonError::new("`failed` must be a boolean"))?;
    if failed {
        Ok(DriveClass::Failed {
            fail_hour: Hour(value.usize_field("fail_hour")? as u32),
        })
    } else {
        Ok(DriveClass::Good)
    }
}

impl JsonCodec for DriveMonitor {
    fn to_json(&self) -> Value {
        let mut fields = class_to_json(self.class);
        fields.push(("alarmed".to_string(), Value::Bool(self.alarmed)));
        fields.push((
            "history".to_string(),
            Value::Arr(
                self.history
                    .iter()
                    .map(|s| {
                        Value::Obj(vec![
                            ("hour".to_string(), Value::Num(f64::from(s.hour.0))),
                            (
                                "values".to_string(),
                                Value::from_f64s(s.values.iter().map(|&v| f64::from(v))),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
        fields.push(("voting".to_string(), self.voting.to_json()));
        Value::Obj(fields)
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let class = class_from_json(value)?;
        let alarmed = value
            .field("alarmed")?
            .as_bool()
            .ok_or_else(|| JsonError::new("`alarmed` must be a boolean"))?;
        let raw_history = value
            .field("history")?
            .as_arr()
            .ok_or_else(|| JsonError::new("`history` must be an array"))?;
        let mut history = Vec::with_capacity(raw_history.len());
        for entry in raw_history {
            let hour = Hour(entry.usize_field("hour")? as u32);
            let values = entry.f64_vec_field("values")?;
            if values.len() != NUM_ATTRIBUTES {
                return Err(JsonError::new(format!(
                    "history sample has {} values, expected {NUM_ATTRIBUTES}",
                    values.len()
                )));
            }
            let mut sample = SmartSample {
                hour,
                values: [0.0; NUM_ATTRIBUTES],
            };
            for (slot, v) in sample.values.iter_mut().zip(&values) {
                *slot = *v as f32;
            }
            history.push(sample);
        }
        // audit:allow(R3) reason="windows(2) yields exactly-2-element slices; w[0] and w[1] always exist"
        if !history.windows(2).all(|w| w[0].hour < w[1].hour) {
            return Err(JsonError::new(
                "history must be strictly increasing in time",
            ));
        }
        Ok(DriveMonitor {
            class,
            history,
            voting: VotingState::from_json(value.field("voting")?)?,
            alarmed,
        })
    }
}

/// How one feed line will be handled; computed read-only, committed in
/// feed order.
#[derive(Debug, Clone)]
pub(crate) enum Decision {
    /// A line this shard already committed before a crash; replay must
    /// skip it with zero effect on counters, breaker or voting.
    Replayed,
    /// Blank line: ignored entirely.
    Blank,
    /// Structurally unparseable row.
    ParseFailure,
    /// Parsed row carrying an unusable measurement.
    BadValue(ValueFault),
    /// Row contradicting its drive's class metadata.
    Conflicting,
    /// Row at or before the drive's latest seen hour.
    Stale,
    /// Usable row; `scored` indexes into the batch's feature rows when
    /// the sample had enough history to extract.
    Accept { row: CsvRow, scored: Option<usize> },
}

/// Drop samples too old for any feature lookback from `newest`: a sample
/// is kept iff `hour + lookback >= newest.hour`, exactly the
/// `change_rate_at` search bound, so extraction over the pruned history
/// is bit-identical to extraction over the full series.
pub(crate) fn prune_history(history: &mut Vec<SmartSample>, lookback: u32) {
    if let Some(newest) = history.last().map(|s| s.hour.0) {
        history.retain(|s| s.hour.0 + lookback >= newest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd_eval::VotingRule;

    fn monitor() -> DriveMonitor {
        DriveMonitor {
            class: DriveClass::Failed {
                fail_hour: Hour(900),
            },
            history: vec![
                SmartSample {
                    hour: Hour(5),
                    values: [1.5; NUM_ATTRIBUTES],
                },
                SmartSample {
                    hour: Hour(9),
                    values: [2.5; NUM_ATTRIBUTES],
                },
            ],
            voting: VotingState::new(3, VotingRule::Majority),
            alarmed: true,
        }
    }

    #[test]
    fn codec_round_trips_through_text() {
        let m = monitor();
        let text = hdd_json::to_string(&m.to_json());
        let back = DriveMonitor::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unsorted_history_is_rejected() {
        let mut m = monitor();
        m.history.swap(0, 1);
        let doc = m.to_json();
        assert!(DriveMonitor::from_json(&doc).is_err());
    }

    #[test]
    fn prune_keeps_exactly_the_lookback_suffix() {
        let mut history: Vec<SmartSample> = (0..10)
            .map(|h| SmartSample {
                hour: Hour(h * 10),
                values: [0.0; NUM_ATTRIBUTES],
            })
            .collect();
        prune_history(&mut history, 25);
        let hours: Vec<u32> = history.iter().map(|s| s.hour.0).collect();
        assert_eq!(hours, vec![70, 80, 90]);
    }
}
