//! Deterministic retry backoff for transient feed I/O failures.
//!
//! The daemon never dies on a flaky filesystem: a failed feed read is
//! retried with capped exponential backoff. The schedule is a pure
//! function of the consecutive-failure count — no jitter — so two
//! daemons replaying the same failure history wait exactly the same
//! amounts, keeping fault-injection runs reproducible.

use std::time::Duration;

/// Capped exponential backoff: `base * 2^k` after the `k`-th consecutive
/// failure, saturating at `cap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    failures: u32,
}

impl Backoff {
    /// A fresh schedule growing from `base` to at most `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or `cap < base`.
    #[must_use]
    pub fn new(base: Duration, cap: Duration) -> Self {
        assert!(!base.is_zero(), "backoff base must be positive");
        assert!(cap >= base, "backoff cap must be at least the base");
        Backoff {
            base,
            cap,
            failures: 0,
        }
    }

    /// Consecutive failures recorded since the last success.
    #[must_use]
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Record a failure and return how long to wait before retrying.
    pub fn next_delay(&mut self) -> Duration {
        // 2^k with the shift clamped so the arithmetic can't overflow;
        // the cap takes over long before the clamp matters.
        let exp = self.failures.min(32);
        let delay = self
            .base
            .checked_mul(1u32 << exp.min(31))
            .unwrap_or(self.cap)
            .min(self.cap);
        self.failures = self.failures.saturating_add(1);
        delay
    }

    /// Record a success: the next failure starts over at `base`.
    pub fn reset(&mut self) {
        self.failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_the_cap() {
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(2));
        let delays: Vec<u64> = (0..8).map(|_| b.next_delay().as_millis() as u64).collect();
        assert_eq!(delays, vec![50, 100, 200, 400, 800, 1600, 2000, 2000]);
        assert_eq!(b.failures(), 8);
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1));
        let _ = b.next_delay();
        let _ = b.next_delay();
        b.reset();
        assert_eq!(b.failures(), 0);
        assert_eq!(b.next_delay(), Duration::from_millis(10));
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = || {
            let mut b = Backoff::new(Duration::from_millis(7), Duration::from_millis(500));
            (0..20).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn huge_failure_counts_saturate_at_the_cap() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_secs(3));
        for _ in 0..100 {
            let _ = b.next_delay();
        }
        assert_eq!(b.next_delay(), Duration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn cap_below_base_is_rejected() {
        let _ = Backoff::new(Duration::from_secs(1), Duration::from_millis(1));
    }
}
