//! A bounded FIFO with drop-oldest backpressure.
//!
//! The streaming service must never grow without bound when the feed
//! outpaces the engine. The queue enforces a hard capacity: pushing into
//! a full queue evicts the *oldest* entry (newest data is the most
//! operationally relevant) and counts the eviction, so the status output
//! can report exactly how much was shed.
//!
//! The serve loop itself avoids drops entirely by never tailing more
//! lines than [`BoundedQueue::free`] — the feed file is durable, so
//! unread lines are simply picked up next tick. The eviction path is the
//! safety valve for callers without that luxury.

use std::collections::VecDeque;

/// A FIFO holding at most `capacity` items; see the module docs.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    dropped: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// The hard capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Slots still free before pushes start evicting.
    #[must_use]
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Total items evicted by pushes into a full queue.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Reset the eviction counter to a checkpointed value — only for
    /// restoring a saved topology, so a resumed run reports the same
    /// cumulative loss an uninterrupted one would.
    pub fn restore_dropped(&mut self, dropped: usize) {
        self.dropped = dropped;
    }

    /// Append `item`; when full, evict and return the oldest entry
    /// (counted in [`BoundedQueue::dropped`]).
    pub fn push(&mut self, item: T) -> Option<T> {
        let evicted = if self.items.len() == self.capacity {
            self.dropped += 1;
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(item);
        evicted
    }

    /// The queued items oldest-first, without reordering the buffer.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// The queued items oldest-first as one slice (reorders the internal
    /// buffer if it has wrapped).
    pub fn make_contiguous(&mut self) -> &[T] {
        self.items.make_contiguous()
    }

    /// Discard the `n` oldest items (after processing them via
    /// [`BoundedQueue::make_contiguous`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the queue length.
    pub fn discard(&mut self, n: usize) {
        assert!(n <= self.items.len(), "cannot discard more than is queued");
        self.items.drain(..n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = BoundedQueue::new(4);
        for i in 0..3 {
            assert!(q.push(i).is_none());
        }
        assert_eq!(q.make_contiguous(), &[0, 1, 2]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.free(), 1);
    }

    #[test]
    fn full_queue_evicts_oldest_and_counts() {
        let mut q = BoundedQueue::new(3);
        for i in 0..3 {
            q.push(i);
        }
        assert_eq!(q.push(3), Some(0));
        assert_eq!(q.push(4), Some(1));
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.make_contiguous(), &[2, 3, 4]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn discard_removes_the_oldest() {
        let mut q = BoundedQueue::new(5);
        for i in 0..5 {
            q.push(i);
        }
        q.discard(2);
        assert_eq!(q.make_contiguous(), &[2, 3, 4]);
        q.discard(3);
        assert!(q.is_empty());
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    #[should_panic(expected = "discard")]
    fn over_discard_is_rejected() {
        let mut q = BoundedQueue::new(2);
        q.push(1);
        q.discard(2);
    }
}
