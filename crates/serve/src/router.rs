//! Drive-id → shard partitioning.
//!
//! Routing must be a pure function of the drive id and the shard count:
//! the same drive lands on the same shard in every run, so a shard's
//! state is a pure function of the feed prefix routed to it, and
//! kill-and-restart replay re-routes identically.
//!
//! Shard counts are restricted to powers of two so the partition is a
//! simple mask of a [SplitMix64]-mixed id. The mix matters: raw drive
//! ids are typically sequential, and `id & (n-1)` would put all of a
//! rack's drives on a handful of shards; the finalizer spreads them
//! uniformly. Masking also gives the *refinement* property — the shard
//! under `2n` shards, reduced mod `n`, is the shard under `n` shards —
//! which makes partitions at different shard counts mutually consistent
//! and cheap to test.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! Lines with no parseable drive id (garbage that will quarantine) are
//! routed by a hash of their leading field, so a garbage flood spreads
//! across shards deterministically instead of funneling into shard 0.

/// The SplitMix64 finalizer: a bijective 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string, for lines with no numeric drive id.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Hash-partitions drive ids across a power-of-two shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    n_shards: usize,
}

impl ShardRouter {
    /// A router over `n_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or not a power of two (the CLI
    /// validates this as a usage error before construction).
    #[must_use]
    pub fn new(n_shards: usize) -> Self {
        assert!(
            n_shards >= 1 && n_shards.is_power_of_two(),
            "shard count must be a power of two, got {n_shards}"
        );
        ShardRouter { n_shards }
    }

    /// How many shards this router partitions across.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The owning shard for a drive id.
    #[must_use]
    pub fn shard_of(&self, drive: u32) -> usize {
        (mix(u64::from(drive)) & (self.n_shards as u64 - 1)) as usize
    }

    /// The owning shard for a raw feed line: by drive id when the
    /// leading field parses as one, by a hash of the leading field
    /// otherwise (the line will quarantine on whichever shard owns it).
    #[must_use]
    pub fn shard_of_line(&self, text: &str) -> usize {
        let leading = text.split(',').next().unwrap_or("");
        match leading.trim().parse::<u32>() {
            Ok(drive) => self.shard_of(drive),
            Err(_) => (fnv1a(leading.as_bytes()) & (self.n_shards as u64 - 1)) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for drive in [0u32, 1, 17, u32::MAX] {
            assert_eq!(r.shard_of(drive), 0);
        }
        assert_eq!(r.shard_of_line("not,a,row"), 0);
    }

    #[test]
    fn assignment_is_stable_across_router_instances() {
        let a = ShardRouter::new(8);
        let b = ShardRouter::new(8);
        for drive in 0..10_000u32 {
            assert_eq!(a.shard_of(drive), b.shard_of(drive));
        }
    }

    #[test]
    fn partitions_are_disjoint_covering_and_refine() {
        // Every drive gets exactly one shard in [0, n); doubling the
        // shard count refines the partition (shard mod n is preserved).
        for n in [1usize, 2, 4, 8] {
            let coarse = ShardRouter::new(n);
            let fine = ShardRouter::new(2 * n);
            let mut seen = vec![0usize; n];
            for drive in 0..50_000u32 {
                let s = coarse.shard_of(drive);
                assert!(s < n);
                seen[s] += 1;
                assert_eq!(fine.shard_of(drive) % n, s, "drive {drive} at n={n}");
            }
            // The mix spreads sequential ids: no shard is starved.
            for (shard, count) in seen.iter().enumerate() {
                assert!(
                    *count * n >= 50_000 / 2,
                    "shard {shard}/{n} got only {count} of 50000"
                );
            }
        }
    }

    #[test]
    fn garbage_lines_route_deterministically() {
        let r = ShardRouter::new(4);
        for text in ["", "garbage-line", "x,y,z", "  12bad,3"] {
            assert_eq!(r.shard_of_line(text), r.shard_of_line(text));
        }
        // A numeric leading field routes exactly like the drive id.
        assert_eq!(r.shard_of_line("42,0,,7,1,2"), r.shard_of(42));
    }
}
