//! Shadow scoring: the candidate rides along on live traffic.
//!
//! While a candidate model is in shadow, every committed row is scored
//! by *both* the incumbent (whose score already travelled with the
//! [`RowEvent`]) and the candidate. Each side keeps its own per-drive
//! voting window — the same [`VotingState`] the live detector uses — so
//! shadow alarms are exactly the alarms each model *would* raise, but
//! the candidate's are only recorded, never emitted.
//!
//! Because committed rows carry their ground-truth labels, the shadow
//! window yields live FDR / FAR / lead-time for both sides, and the
//! [`PromotionGate`] compares them: a candidate is promoted only when it
//! clears the absolute floors *and* does not regress the incumbent's
//! detection rate.

use hdd_eval::{VotingRule, VotingState};
use hdd_json::{JsonCodec, JsonError, Value};
use hdd_serve::RowEvent;
use std::collections::BTreeMap;

/// One drive's shadow voting window for one model side.
#[derive(Debug, Clone, PartialEq)]
struct DriveShadow {
    voting: VotingState,
    alarmed: bool,
    first_alarm: Option<u32>,
}

impl DriveShadow {
    fn new(voters: usize, rule: VotingRule) -> Self {
        DriveShadow {
            voting: VotingState::new(voters, rule),
            alarmed: false,
            first_alarm: None,
        }
    }

    fn observe(&mut self, hour: u32, score: f64) {
        let vote = self.voting.push(score);
        if vote && !self.alarmed {
            self.alarmed = true;
            self.first_alarm = Some(hour);
        }
    }
}

impl JsonCodec for DriveShadow {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("voting".to_string(), self.voting.to_json()),
            ("alarmed".to_string(), Value::Bool(self.alarmed)),
        ];
        if let Some(hour) = self.first_alarm {
            fields.push(("first_alarm".to_string(), Value::Num(f64::from(hour))));
        }
        Value::Obj(fields)
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let first_alarm = match value.get("first_alarm") {
            Some(v) => Some(
                v.as_f64()
                    .filter(|h| h.fract() == 0.0 && *h >= 0.0)
                    .ok_or_else(|| JsonError::expected("an hour", "first_alarm"))?
                    as u32,
            ),
            None => None,
        };
        Ok(DriveShadow {
            voting: VotingState::from_json(value.field("voting")?)?,
            alarmed: value
                .field("alarmed")?
                .as_bool()
                .ok_or_else(|| JsonError::expected("a bool", "alarmed"))?,
            first_alarm,
        })
    }
}

/// Live quality metrics for one model side of the shadow window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowMetrics {
    /// Failed drives detected / failed drives seen (0 when none seen).
    pub fdr: f64,
    /// Good drives false-alarmed / good drives seen (0 when none seen).
    pub far: f64,
    /// Mean hours between first alarm and failure over detected drives.
    pub lead_hours: f64,
    /// Drives this side alarmed on.
    pub alarms: usize,
    /// Distinct drives observed.
    pub drives: usize,
    /// Alarmed drives per scored row — the anomaly-guard baseline.
    pub alarm_rate: f64,
}

/// Both sides of a completed (or in-progress) shadow comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowComparison {
    /// The candidate's live metrics.
    pub candidate: ShadowMetrics,
    /// The incumbent's live metrics over the same rows.
    pub incumbent: ShadowMetrics,
    /// Rows scored by both sides.
    pub rows_scored: usize,
}

/// The promotion gate's absolute floors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionGate {
    /// Minimum candidate failure-detection rate.
    pub min_fdr: f64,
    /// Maximum candidate false-alarm rate.
    pub max_far: f64,
    /// Minimum mean detection lead, in hours.
    pub min_lead_hours: f64,
}

impl PromotionGate {
    /// Judge a shadow comparison. Returns the reasons for refusal,
    /// empty when the candidate clears the gate.
    #[must_use]
    pub fn judge(&self, cmp: &ShadowComparison) -> Vec<String> {
        let c = &cmp.candidate;
        let mut reasons = Vec::new();
        if c.fdr < self.min_fdr {
            reasons.push(format!("fdr {:.3} below floor {:.3}", c.fdr, self.min_fdr));
        }
        if c.far > self.max_far {
            reasons.push(format!(
                "far {:.3} above ceiling {:.3}",
                c.far, self.max_far
            ));
        }
        if c.lead_hours < self.min_lead_hours {
            reasons.push(format!(
                "lead {:.1}h below floor {:.1}h",
                c.lead_hours, self.min_lead_hours
            ));
        }
        if c.fdr < cmp.incumbent.fdr {
            reasons.push(format!(
                "fdr {:.3} regresses incumbent {:.3}",
                c.fdr, cmp.incumbent.fdr
            ));
        }
        reasons
    }
}

/// The two-sided shadow window; see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowScorer {
    voters: usize,
    rule: VotingRule,
    rows_scored: usize,
    candidate: BTreeMap<u32, DriveShadow>,
    incumbent: BTreeMap<u32, DriveShadow>,
    /// Ground truth per drive: `Some(fail_hour)` or `None` for good.
    labels: BTreeMap<u32, Option<u32>>,
}

impl ShadowScorer {
    /// An empty shadow window using the live detector's voting shape.
    #[must_use]
    pub fn new(voters: usize, rule: VotingRule) -> Self {
        ShadowScorer {
            voters,
            rule,
            rows_scored: 0,
            candidate: BTreeMap::new(),
            incumbent: BTreeMap::new(),
            labels: BTreeMap::new(),
        }
    }

    /// Rows scored so far.
    #[must_use]
    pub fn rows_scored(&self) -> usize {
        self.rows_scored
    }

    /// Feed one committed row: the incumbent score travels with the
    /// event, the candidate score is computed by the caller.
    pub fn observe(&mut self, event: &RowEvent, candidate_score: f64) {
        self.labels.insert(event.drive, event.fail_hour);
        let voters = self.voters;
        let rule = self.rule;
        self.candidate
            .entry(event.drive)
            .or_insert_with(|| DriveShadow::new(voters, rule))
            .observe(event.hour, candidate_score);
        self.incumbent
            .entry(event.drive)
            .or_insert_with(|| DriveShadow::new(voters, rule))
            .observe(event.hour, event.incumbent_score);
        self.rows_scored += 1;
    }

    fn side_metrics(&self, side: &BTreeMap<u32, DriveShadow>) -> ShadowMetrics {
        let mut failed_seen = 0usize;
        let mut good_seen = 0usize;
        let mut detected = 0usize;
        let mut false_alarms = 0usize;
        let mut alarms = 0usize;
        let mut lead_sum = 0.0;
        for (drive, label) in &self.labels {
            let alarmed = side.get(drive).is_some_and(|s| s.alarmed);
            if alarmed {
                alarms += 1;
            }
            match label {
                Some(fail) => {
                    failed_seen += 1;
                    if alarmed {
                        detected += 1;
                        let first = side.get(drive).and_then(|s| s.first_alarm).unwrap_or(*fail);
                        lead_sum += f64::from(fail.saturating_sub(first));
                    }
                }
                None => {
                    good_seen += 1;
                    if alarmed {
                        false_alarms += 1;
                    }
                }
            }
        }
        let ratio = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        ShadowMetrics {
            fdr: ratio(detected, failed_seen),
            far: ratio(false_alarms, good_seen),
            lead_hours: if detected == 0 {
                0.0
            } else {
                lead_sum / detected as f64
            },
            alarms,
            drives: self.labels.len(),
            alarm_rate: ratio(alarms, self.rows_scored),
        }
    }

    /// Both sides' live metrics.
    #[must_use]
    pub fn comparison(&self) -> ShadowComparison {
        ShadowComparison {
            candidate: self.side_metrics(&self.candidate),
            incumbent: self.side_metrics(&self.incumbent),
            rows_scored: self.rows_scored,
        }
    }
}

fn side_to_json(side: &BTreeMap<u32, DriveShadow>) -> Value {
    Value::Arr(
        side.iter()
            .map(|(drive, shadow)| {
                Value::Obj(vec![
                    ("drive".to_string(), Value::Num(f64::from(*drive))),
                    ("shadow".to_string(), shadow.to_json()),
                ])
            })
            .collect(),
    )
}

fn side_from_json(value: &Value, field: &str) -> Result<BTreeMap<u32, DriveShadow>, JsonError> {
    let mut side = BTreeMap::new();
    for raw in value
        .field(field)?
        .as_arr()
        .ok_or_else(|| JsonError::expected("an array", field))?
    {
        let drive = raw.usize_field("drive")? as u32;
        side.insert(drive, DriveShadow::from_json(raw.field("shadow")?)?);
    }
    Ok(side)
}

impl JsonCodec for ShadowScorer {
    fn to_json(&self) -> Value {
        let labels = Value::Arr(
            self.labels
                .iter()
                .map(|(drive, label)| {
                    let mut fields = vec![("drive".to_string(), Value::Num(f64::from(*drive)))];
                    if let Some(fail) = label {
                        fields.push(("fail_hour".to_string(), Value::Num(f64::from(*fail))));
                    }
                    Value::Obj(fields)
                })
                .collect(),
        );
        Value::Obj(vec![
            ("voters".to_string(), Value::Num(self.voters as f64)),
            ("rule".to_string(), self.rule.to_json()),
            (
                "rows_scored".to_string(),
                Value::Num(self.rows_scored as f64),
            ),
            ("candidate".to_string(), side_to_json(&self.candidate)),
            ("incumbent".to_string(), side_to_json(&self.incumbent)),
            ("labels".to_string(), labels),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mut labels = BTreeMap::new();
        for raw in value
            .field("labels")?
            .as_arr()
            .ok_or_else(|| JsonError::expected("an array", "labels"))?
        {
            let drive = raw.usize_field("drive")? as u32;
            let fail_hour = match raw.get("fail_hour") {
                Some(v) => Some(
                    v.as_f64()
                        .filter(|h| h.fract() == 0.0 && *h >= 0.0)
                        .ok_or_else(|| JsonError::expected("an hour", "fail_hour"))?
                        as u32,
                ),
                None => None,
            };
            labels.insert(drive, fail_hour);
        }
        Ok(ShadowScorer {
            voters: value.usize_field("voters")?,
            rule: VotingRule::from_json(value.field("rule")?)?,
            rows_scored: value.usize_field("rows_scored")?,
            candidate: side_from_json(value, "candidate")?,
            incumbent: side_from_json(value, "incumbent")?,
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(drive: u32, hour: u32, fail_hour: Option<u32>, incumbent_score: f64) -> RowEvent {
        RowEvent {
            seq: u64::from(drive) * 10_000 + u64::from(hour),
            drive,
            hour,
            fail_hour,
            features: vec![1.0],
            incumbent_score,
        }
    }

    /// Drive 1 fails at hour 100; drive 2 is good. The candidate scores
    /// drive 1 negative (detects) and drive 2 positive (no false
    /// alarm); the incumbent misses drive 1.
    fn seeded_scorer() -> ShadowScorer {
        let mut shadow = ShadowScorer::new(3, VotingRule::Majority);
        for hour in 90..96 {
            shadow.observe(&event(1, hour, Some(100), 1.0), -1.0);
            shadow.observe(&event(2, hour, None, 1.0), 1.0);
        }
        shadow
    }

    #[test]
    fn metrics_separate_candidate_from_incumbent() {
        let shadow = seeded_scorer();
        let cmp = shadow.comparison();
        assert_eq!(cmp.rows_scored, 12);
        assert_eq!(cmp.candidate.drives, 2);
        assert_eq!(cmp.candidate.fdr, 1.0);
        assert_eq!(cmp.candidate.far, 0.0);
        assert_eq!(cmp.candidate.alarms, 1);
        // First alarm fires once the 3-vote window fills at hour 92.
        assert_eq!(cmp.candidate.lead_hours, 8.0);
        assert_eq!(cmp.incumbent.fdr, 0.0);
        assert_eq!(cmp.incumbent.alarms, 0);
    }

    #[test]
    fn gate_passes_good_candidates_and_names_refusal_reasons() {
        let shadow = seeded_scorer();
        let gate = PromotionGate {
            min_fdr: 0.9,
            max_far: 0.05,
            min_lead_hours: 4.0,
        };
        assert!(gate.judge(&shadow.comparison()).is_empty());

        let strict = PromotionGate {
            min_fdr: 0.9,
            max_far: 0.05,
            min_lead_hours: 50.0,
        };
        let reasons = strict.judge(&shadow.comparison());
        assert_eq!(reasons.len(), 1);
        assert!(reasons[0].contains("lead"), "{reasons:?}");
    }

    #[test]
    fn gate_refuses_a_regressing_candidate() {
        // Incumbent detects the failing drive, candidate does not.
        let mut shadow = ShadowScorer::new(3, VotingRule::Majority);
        for hour in 90..96 {
            shadow.observe(&event(1, hour, Some(100), -1.0), 1.0);
        }
        let gate = PromotionGate {
            min_fdr: 0.0,
            max_far: 1.0,
            min_lead_hours: 0.0,
        };
        let reasons = gate.judge(&shadow.comparison());
        assert!(
            reasons.iter().any(|r| r.contains("regresses")),
            "{reasons:?}"
        );
    }

    #[test]
    fn codec_round_trips_mid_window_state() {
        let shadow = seeded_scorer();
        let text = hdd_json::to_string(&shadow.to_json());
        let back = ShadowScorer::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, shadow);
        assert_eq!(back.comparison(), shadow.comparison());
    }
}
