//! Guarded online model lifecycle.
//!
//! The serve daemon (and the gauntlet that stress-tests it) closes the
//! loop from hot model *reload* to actual *retraining*: committed rows
//! feed a bounded [`TrainingBuffer`], a background trainer periodically
//! builds a candidate inside a panic-isolation cell, the candidate
//! shadow-scores live traffic in a [`ShadowScorer`] until a
//! [`PromotionGate`] judges it, and only then is it promoted through the
//! crash-safe two-phase protocol in [`ModelStore`] — with automatic
//! [`ModelStore::rollback`] when post-promotion probation trips.
//!
//! The [`LifecycleManager`] ties these together as an explicit state
//! machine (`Idle → Training → Shadow → Promoting → Probation`, with
//! rollback edges; DESIGN.md §11 has the full diagram). Everything is
//! driven by committed-row counts off the deterministic merged event
//! stream, so lifecycle decisions land at identical stream positions at
//! any shard count, survive `kill -9` byte-identically, and replay
//! exactly from checkpoints.
//!
//! This crate deliberately depends on `hdd-serve` only for its event,
//! checkpoint and merge-filter types — the serve crate does *not* know
//! about lifecycles. Wiring the two together is the caller's job
//! (`hddpred serve --retrain-rows ...` and the workload gauntlet).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod buffer;
pub mod manager;
pub mod promote;
pub mod shadow;

pub use buffer::{BufferPush, TrainingBuffer, WindowMode};
pub use manager::{
    lifecycle_path, LifecycleConfig, LifecycleCounters, LifecycleError, LifecycleFaults,
    LifecycleManager, Phase,
};
pub use promote::{fingerprint, ModelStore, PromoteError, PromoteOutcome, PromotionStep, Recovery};
pub use shadow::{PromotionGate, ShadowComparison, ShadowMetrics, ShadowScorer};
