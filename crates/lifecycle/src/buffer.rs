//! The bounded, checkpoint-consistent training buffer.
//!
//! Committed [`RowEvent`]s (released by the topology merge, so their
//! order is independent of shard count) are labelled against the
//! paper's failure window and buffered as ready-to-train samples. Two
//! window policies mirror §6 of the paper:
//!
//! - [`WindowMode::Accumulation`]: keep the *first* `capacity` usable
//!   samples and saturate — the model is refreshed on a growing-then-
//!   frozen history.
//! - [`WindowMode::Replacing`]: keep the *last* `capacity` usable
//!   samples — a sliding window that forgets old cohorts, the policy
//!   that tracks distribution drift.
//!
//! Labels follow the training-set rule used everywhere else in the
//! workspace: a failed drive's row is a `Failed` sample when its hour is
//! within `window_hours` of the labelled failure, and is *skipped*
//! (neither class) earlier than that; good-drive rows are `Good`
//! samples. Rows carrying non-finite features are counted as poisoned
//! and never reach the buffer — a poisoned feed cannot poison the
//! candidate.

use hdd_cart::sample::{Class, ClassSample};
use hdd_json::{JsonCodec, JsonError, Value};
use hdd_serve::RowEvent;
use std::collections::VecDeque;

/// Which §6 model-updating window the buffer keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMode {
    /// First-`capacity` samples, then saturate.
    Accumulation,
    /// Last-`capacity` samples, sliding.
    Replacing,
}

impl WindowMode {
    /// Stable label, used by flags and checkpoints.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WindowMode::Accumulation => "accumulation",
            WindowMode::Replacing => "replacing",
        }
    }

    /// Parse a [`WindowMode::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "accumulation" => Some(WindowMode::Accumulation),
            "replacing" => Some(WindowMode::Replacing),
            _ => None,
        }
    }
}

/// What [`TrainingBuffer::push`] did with an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferPush {
    /// The row was labelled and buffered.
    Buffered,
    /// The row was outside the failure window (failed drive, too early)
    /// or the accumulation window is full.
    Skipped,
    /// The row carried a non-finite feature and was quarantined.
    Poisoned,
}

/// One buffered, labelled training row.
#[derive(Debug, Clone, PartialEq)]
struct BufferedRow {
    features: Vec<f64>,
    failed: bool,
}

/// The bounded training buffer; see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingBuffer {
    mode: WindowMode,
    capacity: usize,
    window_hours: u32,
    rows: VecDeque<BufferedRow>,
    /// Non-finite rows refused at the gate (never buffered).
    poisoned_rows: usize,
}

impl TrainingBuffer {
    /// An empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — an un-trainable buffer is a
    /// configuration bug, not a runtime condition.
    #[must_use]
    pub fn new(mode: WindowMode, capacity: usize, window_hours: u32) -> Self {
        assert!(capacity >= 1, "the training buffer needs capacity");
        TrainingBuffer {
            mode,
            capacity,
            window_hours,
            rows: VecDeque::new(),
            poisoned_rows: 0,
        }
    }

    /// Buffered samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing is buffered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Buffered `Failed`-class samples.
    #[must_use]
    pub fn failed_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.failed).count()
    }

    /// Rows refused for non-finite features.
    #[must_use]
    pub fn poisoned_rows(&self) -> usize {
        self.poisoned_rows
    }

    /// Label and buffer one committed event.
    pub fn push(&mut self, event: &RowEvent) -> BufferPush {
        if !event.features.iter().all(|v| v.is_finite()) {
            self.poisoned_rows += 1;
            return BufferPush::Poisoned;
        }
        let failed = match event.fail_hour {
            None => false,
            // Outside the failure window a failed drive's row is neither
            // class — the paper trains only on the pre-failure window.
            Some(fail) if event.hour + self.window_hours < fail => return BufferPush::Skipped,
            Some(_) => true,
        };
        if self.rows.len() == self.capacity {
            match self.mode {
                WindowMode::Accumulation => return BufferPush::Skipped,
                WindowMode::Replacing => {
                    self.rows.pop_front();
                }
            }
        }
        self.rows.push_back(BufferedRow {
            features: event.features.clone(),
            failed,
        });
        BufferPush::Buffered
    }

    /// The buffered rows as training samples, oldest first.
    #[must_use]
    pub fn samples(&self) -> Vec<ClassSample> {
        self.rows
            .iter()
            .map(|r| {
                let class = if r.failed { Class::Failed } else { Class::Good };
                ClassSample::new(r.features.clone(), class)
            })
            .collect()
    }

    /// The buffered rows as *label-inverted* samples — the seeded
    /// regressing-candidate fault: a model trained on inverted labels is
    /// a genuinely bad candidate the shadow gate must refuse.
    #[must_use]
    pub fn inverted_samples(&self) -> Vec<ClassSample> {
        self.rows
            .iter()
            .map(|r| {
                let class = if r.failed { Class::Good } else { Class::Failed };
                ClassSample::new(r.features.clone(), class)
            })
            .collect()
    }
}

impl JsonCodec for TrainingBuffer {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "mode".to_string(),
                Value::Str(self.mode.label().to_string()),
            ),
            ("capacity".to_string(), Value::Num(self.capacity as f64)),
            (
                "window_hours".to_string(),
                Value::Num(f64::from(self.window_hours)),
            ),
            (
                "poisoned_rows".to_string(),
                Value::Num(self.poisoned_rows as f64),
            ),
            (
                "rows".to_string(),
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Value::Obj(vec![
                                (
                                    "features".to_string(),
                                    Value::from_f64s(r.features.iter().copied()),
                                ),
                                ("failed".to_string(), Value::Bool(r.failed)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let label = value.str_field("mode")?;
        let mode = WindowMode::from_label(label)
            .ok_or_else(|| JsonError::new(format!("unknown window mode `{label}`")))?;
        let capacity = value.usize_field("capacity")?;
        if capacity == 0 {
            return Err(JsonError::expected("a capacity of at least 1", "capacity"));
        }
        let mut rows = VecDeque::new();
        for raw in value
            .field("rows")?
            .as_arr()
            .ok_or_else(|| JsonError::new("`rows` must be an array"))?
        {
            let features = raw.f64_vec_field("features")?;
            if !features.iter().all(|v| v.is_finite()) {
                return Err(JsonError::new("buffered features must be finite"));
            }
            let failed = raw
                .field("failed")?
                .as_bool()
                .ok_or_else(|| JsonError::expected("a bool", "failed"))?;
            rows.push_back(BufferedRow { features, failed });
        }
        if rows.len() > capacity {
            return Err(JsonError::new(format!(
                "{} buffered rows exceed capacity {capacity}",
                rows.len()
            )));
        }
        Ok(TrainingBuffer {
            mode,
            capacity,
            window_hours: value.usize_field("window_hours")? as u32,
            rows,
            poisoned_rows: value.usize_field("poisoned_rows")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(drive: u32, hour: u32, fail_hour: Option<u32>, features: Vec<f64>) -> RowEvent {
        RowEvent {
            seq: u64::from(drive) * 10_000 + u64::from(hour),
            drive,
            hour,
            fail_hour,
            features,
            incumbent_score: 1.0,
        }
    }

    #[test]
    fn labels_follow_the_failure_window() {
        let mut buf = TrainingBuffer::new(WindowMode::Accumulation, 16, 168);
        assert_eq!(
            buf.push(&event(1, 5, None, vec![1.0, 2.0])),
            BufferPush::Buffered
        );
        // A failed drive's early row is neither class.
        assert_eq!(
            buf.push(&event(2, 10, Some(500), vec![1.0, 2.0])),
            BufferPush::Skipped
        );
        // Within the window it is a Failed sample.
        assert_eq!(
            buf.push(&event(2, 400, Some(500), vec![3.0, 4.0])),
            BufferPush::Buffered
        );
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.failed_rows(), 1);
        let samples = buf.samples();
        assert_eq!(samples[0].class, Class::Good);
        assert_eq!(samples[1].class, Class::Failed);
        let inverted = buf.inverted_samples();
        assert_eq!(inverted[0].class, Class::Failed);
        assert_eq!(inverted[1].class, Class::Good);
    }

    #[test]
    fn poisoned_rows_never_reach_the_buffer() {
        let mut buf = TrainingBuffer::new(WindowMode::Replacing, 4, 168);
        assert_eq!(
            buf.push(&event(1, 1, None, vec![f64::NAN, 1.0])),
            BufferPush::Poisoned
        );
        assert_eq!(
            buf.push(&event(1, 2, None, vec![f64::INFINITY, 1.0])),
            BufferPush::Poisoned
        );
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.poisoned_rows(), 2);
    }

    #[test]
    fn accumulation_saturates_and_replacing_slides() {
        let mut acc = TrainingBuffer::new(WindowMode::Accumulation, 2, 168);
        let mut rep = TrainingBuffer::new(WindowMode::Replacing, 2, 168);
        for h in 0..4u32 {
            let e = event(1, h, None, vec![f64::from(h)]);
            acc.push(&e);
            rep.push(&e);
        }
        assert_eq!(acc.len(), 2);
        assert_eq!(rep.len(), 2);
        let first = |b: &TrainingBuffer| b.samples()[0].features[0];
        assert_eq!(first(&acc), 0.0, "accumulation keeps the head");
        assert_eq!(first(&rep), 2.0, "replacing keeps the tail");
    }

    #[test]
    fn codec_round_trips_and_validates() {
        let mut buf = TrainingBuffer::new(WindowMode::Replacing, 8, 168);
        buf.push(&event(1, 1, None, vec![1.5, -2.5]));
        buf.push(&event(2, 400, Some(500), vec![3.0, 4.0]));
        buf.push(&event(3, 1, None, vec![f64::NAN]));
        let text = hdd_json::to_string(&buf.to_json());
        let back = TrainingBuffer::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, buf);

        for bad in [
            text.replacen("replacing", "forgetting", 1),
            text.replacen("\"capacity\":8", "\"capacity\":1", 1),
        ] {
            assert!(
                TrainingBuffer::from_json(&hdd_json::parse(&bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }
}
