//! The lifecycle state machine: Idle → Training → Shadow → Promoting →
//! Probation, with rollback edges.
//!
//! [`LifecycleManager::consume`] is fed the committed [`RowEvent`]s each
//! topology tick releases (already merged, so the stream is identical at
//! any shard count) and drives everything deterministically off
//! committed-row counts — never wall-clock time:
//!
//! - **Cadence**: once `retrain_rows` committed rows accumulate while
//!   idle (times a doubling backoff after contained trainer failures), a
//!   candidate is trained from the [`TrainingBuffer`] inside an
//!   [`hdd_par`] panic-isolation cell. A panicking or failing trainer
//!   increments a counter and backs off; it never touches the serving
//!   path.
//! - **Shadow**: the staged candidate rides along on live traffic in a
//!   [`ShadowScorer`]; after `shadow_rows` rows the [`PromotionGate`]
//!   either clears it (promotion is *staged*) or refuses it with
//!   recorded reasons.
//! - **Quiesce**: [`LifecycleManager::apply_staged`] runs only when the
//!   caller has fully drained its feeds, so the model swap lands at a
//!   deterministic stream position and alarm output stays byte-identical
//!   across shard counts and `kill -9`.
//! - **Probation**: after promotion the live alarm rate is watched
//!   against the shadow-window baseline; a breaker trip or an alarm-rate
//!   anomaly stages an automatic [`ModelStore::rollback`].
//!
//! All state (buffer, shadow windows, counters, consumed-seq filter)
//! checkpoints into `lifecycle.ckpt`, saved between the sink and
//! `topology.ckpt` so a crash at any point resumes without losing or
//! double-consuming events.

use crate::buffer::{TrainingBuffer, WindowMode};
use crate::promote::{ModelStore, PromoteError, PromoteOutcome, PromotionStep, Recovery};
use crate::shadow::{PromotionGate, ShadowScorer};
use hdd_cart::ClassificationTreeBuilder;
use hdd_eval::{ModelError, Predictor, SavedModel, VotingRule};
use hdd_json::{JsonCodec, JsonError, Value};
use hdd_par::ThreadPool;
use hdd_serve::{Checkpoint, CheckpointError, CheckpointKind, MergeState, RowEvent};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Knobs for the online lifecycle. Every cadence is counted in
/// committed rows, never seconds — the only exception is the optional
/// wall-clock training budget, which is daemon-only (see field docs).
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleConfig {
    /// Committed rows between training attempts (backoff multiplies it).
    pub retrain_rows: usize,
    /// Rows a candidate must shadow-score before the gate judges it.
    pub shadow_rows: usize,
    /// Rows of post-promotion probation before a promotion is final.
    pub probation_rows: usize,
    /// The promotion gate's absolute floors.
    pub gate: PromotionGate,
    /// Training-window policy (paper §6).
    pub mode: WindowMode,
    /// Training buffer capacity, in rows.
    pub buffer_cap: usize,
    /// Failure-window width for labelling buffered rows, in hours.
    pub window_hours: u32,
    /// Retained model-history depth.
    pub history: usize,
    /// Probation trips when the live alarm rate exceeds the shadow
    /// baseline by more than this (alarms per row).
    pub max_alarm_rate_delta: f64,
    /// Voting-window size for shadow scoring (match the live detector).
    pub voters: usize,
    /// Voting rule for shadow scoring (match the live detector).
    pub rule: VotingRule,
    /// Optional wall-clock training budget in milliseconds. **Daemon
    /// only**: an over-budget result is discarded with backoff, which
    /// makes candidate timing depend on the clock — leave `None`
    /// anywhere replay determinism matters (the gauntlet always does).
    pub train_budget_ms: Option<u64>,
}

impl LifecycleConfig {
    /// Defaults sized for the gauntlet fleets; daemons override via
    /// `--retrain-*` flags.
    #[must_use]
    pub fn new(voters: usize, rule: VotingRule) -> Self {
        LifecycleConfig {
            retrain_rows: 2048,
            shadow_rows: 1024,
            probation_rows: 1024,
            gate: PromotionGate {
                min_fdr: 0.5,
                max_far: 0.05,
                min_lead_hours: 0.0,
            },
            mode: WindowMode::Replacing,
            buffer_cap: 8192,
            window_hours: 168,
            history: 3,
            max_alarm_rate_delta: 0.05,
            voters,
            rule,
            train_budget_ms: None,
        }
    }
}

/// Seeded lifecycle fault injections (gauntlet and chaos tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleFaults {
    /// Panic inside the trainer on the n-th attempt (1-based).
    pub trainer_panic: Option<usize>,
    /// Poison the n-th buffered push (1-based) with a NaN feature.
    pub poison_buffer: Option<usize>,
    /// Simulate `kill -9` after this promotion-protocol step, then
    /// immediately run crash recovery as a restarted process would.
    pub crash_at_step: Option<PromotionStep>,
    /// Train candidates on label-inverted samples — a genuinely bad
    /// model the gate must refuse.
    pub regressing_candidate: bool,
}

/// Where the lifecycle state machine currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accumulating rows toward the next training attempt.
    Idle,
    /// A candidate is shadow-scoring live traffic.
    Shadow,
    /// The gate cleared; promotion applies at the next quiesce.
    Promoting,
    /// Promoted; the live alarm rate is under watch.
    Probation,
    /// Probation tripped; rollback applies at the next quiesce.
    RollingBack,
}

impl Phase {
    /// Stable label, used by checkpoints and status output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::Shadow => "shadow",
            Phase::Promoting => "promoting",
            Phase::Probation => "probation",
            Phase::RollingBack => "rolling-back",
        }
    }

    /// Parse a [`Phase::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "idle" => Some(Phase::Idle),
            "shadow" => Some(Phase::Shadow),
            "promoting" => Some(Phase::Promoting),
            "probation" => Some(Phase::Probation),
            "rolling-back" => Some(Phase::RollingBack),
            _ => None,
        }
    }
}

/// Monotonic lifecycle counters, persisted in `lifecycle.ckpt`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleCounters {
    /// Committed rows consumed (after replay dedup).
    pub events_consumed: usize,
    /// Rows shadow-scored by a candidate.
    pub candidate_rows_scored: usize,
    /// Candidates the gate refused.
    pub gate_refusals: usize,
    /// Candidates the gate cleared.
    pub gate_clearances: usize,
    /// Promotions applied.
    pub promotions: usize,
    /// Automatic rollbacks applied.
    pub rollbacks: usize,
    /// Trainer panics contained.
    pub trainer_panics: usize,
    /// Trainer errors (unlearnable buffer, over-budget, staging I/O).
    pub train_failures: usize,
}

type CounterGet = fn(&LifecycleCounters) -> &usize;
type CounterGetMut = fn(&mut LifecycleCounters) -> &mut usize;

/// Table-driven codec: field name, reader, writer (same idiom as
/// `hdd_serve::ShardStats`).
const COUNTER_FIELDS: [(&str, CounterGet, CounterGetMut); 8] = [
    (
        "events_consumed",
        |c| &c.events_consumed,
        |c| &mut c.events_consumed,
    ),
    (
        "candidate_rows_scored",
        |c| &c.candidate_rows_scored,
        |c| &mut c.candidate_rows_scored,
    ),
    (
        "gate_refusals",
        |c| &c.gate_refusals,
        |c| &mut c.gate_refusals,
    ),
    (
        "gate_clearances",
        |c| &c.gate_clearances,
        |c| &mut c.gate_clearances,
    ),
    ("promotions", |c| &c.promotions, |c| &mut c.promotions),
    ("rollbacks", |c| &c.rollbacks, |c| &mut c.rollbacks),
    (
        "trainer_panics",
        |c| &c.trainer_panics,
        |c| &mut c.trainer_panics,
    ),
    (
        "train_failures",
        |c| &c.train_failures,
        |c| &mut c.train_failures,
    ),
];

impl JsonCodec for LifecycleCounters {
    fn to_json(&self) -> Value {
        Value::Obj(
            COUNTER_FIELDS
                .iter()
                .map(|(name, get, _)| ((*name).to_string(), Value::Num(*get(self) as f64)))
                .collect(),
        )
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mut counters = LifecycleCounters::default();
        for (name, _, get_mut) in &COUNTER_FIELDS {
            *get_mut(&mut counters) = value.usize_field(name)?;
        }
        Ok(counters)
    }
}

/// Why a lifecycle operation failed.
#[derive(Debug)]
pub enum LifecycleError {
    /// The promotion store failed.
    Promote(PromoteError),
    /// Loading a model failed.
    Model(ModelError),
    /// Reading or writing `lifecycle.ckpt` failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleError::Promote(e) => write!(f, "lifecycle promotion: {e}"),
            LifecycleError::Model(e) => write!(f, "lifecycle model: {e}"),
            LifecycleError::Checkpoint(e) => write!(f, "lifecycle checkpoint: {e}"),
        }
    }
}

impl std::error::Error for LifecycleError {}

impl From<PromoteError> for LifecycleError {
    fn from(e: PromoteError) -> Self {
        LifecycleError::Promote(e)
    }
}

impl From<ModelError> for LifecycleError {
    fn from(e: ModelError) -> Self {
        LifecycleError::Model(e)
    }
}

impl From<CheckpointError> for LifecycleError {
    fn from(e: CheckpointError) -> Self {
        LifecycleError::Checkpoint(e)
    }
}

/// The `lifecycle.ckpt` path inside a checkpoint directory.
#[must_use]
pub fn lifecycle_path(dir: &Path) -> PathBuf {
    dir.join("lifecycle.ckpt")
}

/// The lifecycle state machine; see the module docs.
#[derive(Debug)]
pub struct LifecycleManager {
    config: LifecycleConfig,
    store: ModelStore,
    faults: LifecycleFaults,
    /// Replay filter over consumed event seqs (same machinery as the
    /// alarm merge's duplicate suppression).
    consumed: MergeState,
    buffer: TrainingBuffer,
    shadow: Option<ShadowScorer>,
    candidate: Option<Arc<SavedModel>>,
    candidate_fingerprint: Option<u64>,
    phase: Phase,
    counters: LifecycleCounters,
    rows_since_train: usize,
    backoff_mult: usize,
    train_attempts: usize,
    pushes: usize,
    baseline_alarm_rate: f64,
    probation_rows_seen: usize,
    probation_alarms: usize,
    rollback_target: Option<u64>,
}

impl LifecycleManager {
    /// A fresh manager over the live model at `model_path`.
    #[must_use]
    pub fn new(config: LifecycleConfig, model_path: PathBuf, faults: LifecycleFaults) -> Self {
        let store = ModelStore::new(model_path, config.history);
        let buffer = TrainingBuffer::new(config.mode, config.buffer_cap, config.window_hours);
        LifecycleManager {
            config,
            store,
            faults,
            consumed: MergeState::new(),
            buffer,
            shadow: None,
            candidate: None,
            candidate_fingerprint: None,
            phase: Phase::Idle,
            counters: LifecycleCounters::default(),
            rows_since_train: 0,
            backoff_mult: 1,
            train_attempts: 0,
            pushes: 0,
            baseline_alarm_rate: 0.0,
            probation_rows_seen: 0,
            probation_alarms: 0,
            rollback_target: None,
        }
    }

    /// Startup path: run crash recovery on the model store, restore
    /// `lifecycle.ckpt` when present, and reconcile the two — the
    /// resumed phase always refers to models that actually exist on
    /// disk.
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError`] when recovery or the checkpoint read
    /// fails (a *missing* checkpoint is a clean cold start, not an
    /// error).
    pub fn resume(
        config: LifecycleConfig,
        model_path: PathBuf,
        faults: LifecycleFaults,
        ckpt_dir: Option<&Path>,
    ) -> Result<(Self, Recovery), LifecycleError> {
        let mut manager = LifecycleManager::new(config, model_path, faults);
        let recovery = manager.store.recover()?;
        if let Some(dir) = ckpt_dir {
            let path = lifecycle_path(dir);
            if path.exists() {
                let ck = Checkpoint::load_expecting(&path, CheckpointKind::Lifecycle)?;
                manager.restore_state(&ck.payload)?;
                manager.reconcile()?;
            }
        }
        Ok((manager, recovery))
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Lifecycle counters.
    #[must_use]
    pub fn counters(&self) -> &LifecycleCounters {
        &self.counters
    }

    /// The training buffer.
    #[must_use]
    pub fn buffer(&self) -> &TrainingBuffer {
        &self.buffer
    }

    /// The model store (paths, history, fingerprints).
    #[must_use]
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// Fingerprint of the current candidate (shadow through probation).
    #[must_use]
    pub fn candidate_fingerprint(&self) -> Option<u64> {
        self.candidate_fingerprint
    }

    /// The in-flight shadow comparison, when a candidate is shadowing.
    #[must_use]
    pub fn shadow_comparison(&self) -> Option<crate::shadow::ShadowComparison> {
        self.shadow.as_ref().map(ShadowScorer::comparison)
    }

    /// Whether a staged promotion or rollback is waiting for a quiesce.
    #[must_use]
    pub fn has_staged_swap(&self) -> bool {
        matches!(self.phase, Phase::Promoting | Phase::RollingBack)
    }

    /// Feed one tick's released events plus that tick's emitted alarm
    /// count and breaker transitions. `watermark` is the topology
    /// merge's emitted low-water mark (`merge_state().emitted()`), which
    /// keeps the replay filter aligned with the alarm stream. Returns
    /// human-readable transition notes.
    pub fn consume(
        &mut self,
        pool: &ThreadPool,
        events: &[RowEvent],
        alarms_this_tick: usize,
        breaker_transitions: usize,
        watermark: u64,
    ) -> Vec<String> {
        let mut notes = Vec::new();
        let mut processed = Vec::new();
        for event in events {
            if self.consumed.already_emitted(event.seq) {
                continue;
            }
            processed.push(event.seq);
            self.counters.events_consumed += 1;
            self.pushes += 1;
            if self.faults.poison_buffer == Some(self.pushes) {
                let mut poisoned = event.clone();
                if let Some(first) = poisoned.features.first_mut() {
                    *first = f64::NAN;
                }
                self.buffer.push(&poisoned);
            } else {
                self.buffer.push(event);
            }
            self.rows_since_train += 1;
            match self.phase {
                Phase::Shadow => {
                    if let (Some(candidate), Some(shadow)) = (&self.candidate, &mut self.shadow) {
                        shadow.observe(event, candidate.score(&event.features));
                        self.counters.candidate_rows_scored += 1;
                    }
                }
                Phase::Probation => self.probation_rows_seen += 1,
                _ => {}
            }
        }
        self.consumed.record_ahead(processed);
        self.consumed.advance(watermark);

        self.judge_shadow(&mut notes);
        self.watch_probation(alarms_this_tick, breaker_transitions, &mut notes);
        if self.phase == Phase::Idle
            && self.rows_since_train >= self.config.retrain_rows.saturating_mul(self.backoff_mult)
            && self.buffer.failed_rows() >= 1
            && self.buffer.failed_rows() < self.buffer.len()
        {
            self.attempt_training(pool, &mut notes);
        }
        notes
    }

    fn judge_shadow(&mut self, notes: &mut Vec<String>) {
        if self.phase != Phase::Shadow {
            return;
        }
        let Some(shadow) = &self.shadow else { return };
        if shadow.rows_scored() < self.config.shadow_rows {
            return;
        }
        let comparison = shadow.comparison();
        let reasons = self.config.gate.judge(&comparison);
        if reasons.is_empty() {
            self.counters.gate_clearances += 1;
            self.baseline_alarm_rate = comparison.incumbent.alarm_rate;
            self.phase = Phase::Promoting;
            notes.push(format!(
                "lifecycle: gate cleared candidate {:016x} (fdr {:.3} vs {:.3}, far {:.3}); promotion staged",
                self.candidate_fingerprint.unwrap_or(0),
                comparison.candidate.fdr,
                comparison.incumbent.fdr,
                comparison.candidate.far,
            ));
        } else {
            self.counters.gate_refusals += 1;
            // The candidate file stays on disk (the next staging
            // overwrites it): deleting here would be a mid-stream disk
            // mutation that a checkpoint replay could not reproduce.
            self.candidate = None;
            self.candidate_fingerprint = None;
            self.shadow = None;
            self.phase = Phase::Idle;
            self.rows_since_train = 0;
            notes.push(format!(
                "lifecycle: gate refused candidate ({})",
                reasons.join("; ")
            ));
        }
    }

    fn watch_probation(
        &mut self,
        alarms_this_tick: usize,
        breaker_transitions: usize,
        notes: &mut Vec<String>,
    ) {
        if self.phase != Phase::Probation {
            return;
        }
        self.probation_alarms += alarms_this_tick;
        let min_assess = (self.config.probation_rows / 4).max(1);
        let rate = if self.probation_rows_seen == 0 {
            0.0
        } else {
            self.probation_alarms as f64 / self.probation_rows_seen as f64
        };
        let anomalous = self.probation_rows_seen >= min_assess
            && rate > self.baseline_alarm_rate + self.config.max_alarm_rate_delta;
        if breaker_transitions > 0 || anomalous {
            self.phase = Phase::RollingBack;
            self.rollback_target = self.store.fingerprint_of(&self.store.prev_path(1)).ok();
            notes.push(format!(
                "lifecycle: probation tripped ({}); rollback staged",
                if breaker_transitions > 0 {
                    "breaker transition".to_string()
                } else {
                    format!(
                        "alarm rate {rate:.4} above baseline {:.4} + {:.4}",
                        self.baseline_alarm_rate, self.config.max_alarm_rate_delta
                    )
                }
            ));
        } else if self.probation_rows_seen >= self.config.probation_rows {
            self.phase = Phase::Idle;
            self.candidate_fingerprint = None;
            self.rows_since_train = 0;
            notes.push("lifecycle: probation passed; promotion is final".to_string());
        }
    }

    fn attempt_training(&mut self, pool: &ThreadPool, notes: &mut Vec<String>) {
        self.train_attempts += 1;
        self.rows_since_train = 0;
        let attempt = self.train_attempts;
        let panic_now = self.faults.trainer_panic == Some(attempt);
        let samples = if self.faults.regressing_candidate {
            self.buffer.inverted_samples()
        } else {
            self.buffer.samples()
        };
        // Wall-clock training budget: daemon-only containment (see
        // LifecycleConfig::train_budget_ms for the determinism caveat).
        let started = self.config.train_budget_ms.map(|_| {
            // audit:allow(R1) reason="budget enforcement is containment of the off-path trainer, never serve state; gauntlet and tests run with train_budget_ms=None"
            std::time::Instant::now()
        });
        let trained = pool.try_parallel_map(&[()], |_| {
            if panic_now {
                // audit:allow(R3) reason="seeded fault injection proving trainer panics are contained by try_parallel_map"
                panic!("injected trainer panic (attempt {attempt})");
            }
            ClassificationTreeBuilder::new()
                .build(&samples)
                .map(|tree| SavedModel::from(tree.compile()))
        });
        let mut fail = |counter: &mut usize, backoff: &mut usize, note: String| {
            *counter += 1;
            *backoff = backoff.saturating_mul(2).min(64);
            notes.push(note);
        };
        match trained {
            Err(panic) => fail(
                &mut self.counters.trainer_panics,
                &mut self.backoff_mult,
                format!("lifecycle: trainer panic contained ({panic}); backing off"),
            ),
            Ok(mut results) => match results.pop() {
                None | Some(Err(_)) => fail(
                    &mut self.counters.train_failures,
                    &mut self.backoff_mult,
                    "lifecycle: training failed on the buffered window; backing off".to_string(),
                ),
                Some(Ok(model)) => {
                    let over_budget = match (started, self.config.train_budget_ms) {
                        // audit:allow(R1) reason="opt-in training time budget: bounds whether a candidate is produced, never which rows commit or which alarms the incumbent emits"
                        (Some(t0), Some(budget)) => t0.elapsed().as_millis() as u64 > budget,
                        _ => false,
                    };
                    if over_budget {
                        fail(
                            &mut self.counters.train_failures,
                            &mut self.backoff_mult,
                            "lifecycle: training exceeded its time budget; candidate discarded"
                                .to_string(),
                        );
                    } else {
                        match self.store.stage_candidate(&model) {
                            Ok(fingerprint) => {
                                self.candidate = Some(Arc::new(model));
                                self.candidate_fingerprint = Some(fingerprint);
                                self.shadow =
                                    Some(ShadowScorer::new(self.config.voters, self.config.rule));
                                self.phase = Phase::Shadow;
                                self.backoff_mult = 1;
                                notes.push(format!(
                                    "lifecycle: candidate {fingerprint:016x} trained on {} rows; shadow begins",
                                    self.buffer.len()
                                ));
                            }
                            Err(e) => fail(
                                &mut self.counters.train_failures,
                                &mut self.backoff_mult,
                                format!(
                                    "lifecycle: staging the candidate failed ({e}); backing off"
                                ),
                            ),
                        }
                    }
                }
            },
        }
    }

    /// Apply a staged promotion or rollback. **Call only at a full
    /// quiesce** (feeds drained, queues empty, events consumed, alarms
    /// flushed): the swap then lands at a deterministic stream position.
    /// Returns the model the caller must swap into its topology, if any.
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError`] when the promotion store or a model
    /// load fails; staged state is preserved so the caller may retry.
    pub fn apply_staged(&mut self) -> Result<Option<Arc<SavedModel>>, LifecycleError> {
        match self.phase {
            Phase::Promoting => {
                let outcome = self.store.promote(self.faults.crash_at_step)?;
                if let PromoteOutcome::Stopped(_) = outcome {
                    // The injected crash landed mid-protocol; run the
                    // exact repair a restarted process would.
                    self.store.recover()?;
                }
                let live = self.store.live_fingerprint()?;
                let model = Arc::new(SavedModel::load(self.store.model_path())?);
                if Some(live) == self.candidate_fingerprint {
                    self.counters.promotions += 1;
                    self.enter_probation();
                } else {
                    // The candidate rotted on disk and recovery restored
                    // the last known good; abandon the promotion.
                    self.reset_to_idle();
                }
                Ok(Some(model))
            }
            Phase::RollingBack => {
                let live = self.store.live_fingerprint()?;
                if self.rollback_target != Some(live) {
                    self.store.rollback()?;
                }
                let model = Arc::new(SavedModel::load(self.store.model_path())?);
                self.counters.rollbacks += 1;
                self.reset_to_idle();
                Ok(Some(model))
            }
            _ => Ok(None),
        }
    }

    fn enter_probation(&mut self) {
        self.phase = Phase::Probation;
        self.candidate = None;
        self.shadow = None;
        self.probation_rows_seen = 0;
        self.probation_alarms = 0;
    }

    fn reset_to_idle(&mut self) {
        self.phase = Phase::Idle;
        self.candidate = None;
        self.candidate_fingerprint = None;
        self.shadow = None;
        self.rollback_target = None;
        self.rows_since_train = 0;
        self.probation_rows_seen = 0;
        self.probation_alarms = 0;
    }

    /// Serialize everything `lifecycle.ckpt` persists.
    #[must_use]
    pub fn state_to_json(&self) -> Value {
        let mut fields = vec![
            (
                "phase".to_string(),
                Value::Str(self.phase.label().to_string()),
            ),
            ("consumed".to_string(), self.consumed.to_json()),
            ("buffer".to_string(), self.buffer.to_json()),
            ("counters".to_string(), self.counters.to_json()),
            (
                "rows_since_train".to_string(),
                Value::Num(self.rows_since_train as f64),
            ),
            (
                "backoff_mult".to_string(),
                Value::Num(self.backoff_mult as f64),
            ),
            (
                "train_attempts".to_string(),
                Value::Num(self.train_attempts as f64),
            ),
            ("pushes".to_string(), Value::Num(self.pushes as f64)),
            (
                "baseline_alarm_rate".to_string(),
                Value::Num(self.baseline_alarm_rate),
            ),
            (
                "probation_rows_seen".to_string(),
                Value::Num(self.probation_rows_seen as f64),
            ),
            (
                "probation_alarms".to_string(),
                Value::Num(self.probation_alarms as f64),
            ),
        ];
        if let Some(shadow) = &self.shadow {
            fields.push(("shadow".to_string(), shadow.to_json()));
        }
        if let Some(fp) = self.candidate_fingerprint {
            fields.push((
                "candidate_fingerprint".to_string(),
                Value::Str(format!("{fp:016x}")),
            ));
        }
        if let Some(fp) = self.rollback_target {
            fields.push((
                "rollback_target".to_string(),
                Value::Str(format!("{fp:016x}")),
            ));
        }
        Value::Obj(fields)
    }

    /// Restore state written by [`LifecycleManager::state_to_json`].
    /// Follow with [`LifecycleManager::resume`]-style reconciliation
    /// before serving (resume does both).
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError::Checkpoint`] when the payload does not
    /// decode.
    pub fn restore_state(&mut self, value: &Value) -> Result<(), LifecycleError> {
        let decode = |e: JsonError| LifecycleError::Checkpoint(CheckpointError::Json(e));
        let phase_label = value.str_field("phase").map_err(decode)?;
        let phase = Phase::from_label(phase_label).ok_or_else(|| {
            LifecycleError::Checkpoint(CheckpointError::Incompatible(format!(
                "unknown lifecycle phase `{phase_label}`"
            )))
        })?;
        let fingerprint_field = |field: &str| -> Result<Option<u64>, LifecycleError> {
            match value.get(field) {
                None => Ok(None),
                Some(v) => {
                    let hex = v.as_str().ok_or_else(|| {
                        decode(JsonError::expected("a fingerprint string", field))
                    })?;
                    Ok(Some(u64::from_str_radix(hex, 16).map_err(|_| {
                        decode(JsonError::expected("a hex fingerprint", field))
                    })?))
                }
            }
        };
        self.phase = phase;
        self.consumed =
            MergeState::from_json(value.field("consumed").map_err(decode)?).map_err(decode)?;
        self.buffer =
            TrainingBuffer::from_json(value.field("buffer").map_err(decode)?).map_err(decode)?;
        self.counters = LifecycleCounters::from_json(value.field("counters").map_err(decode)?)
            .map_err(decode)?;
        self.rows_since_train = value.usize_field("rows_since_train").map_err(decode)?;
        self.backoff_mult = value.usize_field("backoff_mult").map_err(decode)?.max(1);
        self.train_attempts = value.usize_field("train_attempts").map_err(decode)?;
        self.pushes = value.usize_field("pushes").map_err(decode)?;
        self.baseline_alarm_rate = value.f64_field("baseline_alarm_rate").map_err(decode)?;
        self.probation_rows_seen = value.usize_field("probation_rows_seen").map_err(decode)?;
        self.probation_alarms = value.usize_field("probation_alarms").map_err(decode)?;
        self.shadow = match value.get("shadow") {
            Some(raw) => Some(ShadowScorer::from_json(raw).map_err(decode)?),
            None => None,
        };
        self.candidate_fingerprint = fingerprint_field("candidate_fingerprint")?;
        self.rollback_target = fingerprint_field("rollback_target")?;
        self.candidate = None;
        Ok(())
    }

    /// Re-anchor restored state to what actually exists on disk: reload
    /// the candidate for shadow/promoting phases, detect a promotion or
    /// rollback that completed just before the crash, and fall back to
    /// idle when the candidate is gone or corrupt.
    fn reconcile(&mut self) -> Result<(), LifecycleError> {
        match self.phase {
            Phase::Shadow | Phase::Promoting => {
                let path = self.store.candidate_path();
                let loaded = match self.candidate_fingerprint {
                    Some(expected) if path.exists() => {
                        if self.store.fingerprint_of(&path)? == expected {
                            SavedModel::load(&path).ok().map(Arc::new)
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some(model) = loaded {
                    self.candidate = Some(model);
                } else if self.phase == Phase::Promoting
                    && self.candidate_fingerprint == Some(self.store.live_fingerprint()?)
                {
                    // Crash recovery already completed the promotion.
                    self.counters.promotions += 1;
                    self.enter_probation();
                } else {
                    self.reset_to_idle();
                }
            }
            Phase::RollingBack => {
                if self.rollback_target == Some(self.store.live_fingerprint()?) {
                    // Crash recovery already completed the rollback.
                    self.counters.rollbacks += 1;
                    self.reset_to_idle();
                }
            }
            Phase::Idle | Phase::Probation => {}
        }
        Ok(())
    }

    /// Save `lifecycle.ckpt` into `dir` (atomic; between the sink and
    /// `topology.ckpt` in the caller's save order).
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError::Checkpoint`] when the write fails.
    pub fn save_checkpoint(&self, dir: &Path) -> Result<(), LifecycleError> {
        std::fs::create_dir_all(dir)
            .map_err(CheckpointError::Io)
            .map_err(LifecycleError::Checkpoint)?;
        Checkpoint {
            kind: CheckpointKind::Lifecycle,
            payload: self.state_to_json(),
        }
        .save(&lifecycle_path(dir))
        .map_err(LifecycleError::Checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd_cart::{Class, ClassSample};

    const FAIL_HOUR: u32 = 200;

    /// Separable two-feature fleet: drives 0-4 fail at hour 200 with
    /// low feature values, drives 5-9 stay good with high ones.
    fn event(seq: u64, drive: u32, hour: u32, incumbent_score: f64) -> RowEvent {
        let failing = drive < 5;
        let x = if failing {
            f64::from(drive) + f64::from(hour % 7) * 0.1
        } else {
            50.0 + f64::from(drive) + f64::from(hour % 7) * 0.1
        };
        RowEvent {
            seq,
            drive,
            hour,
            fail_hour: failing.then_some(FAIL_HOUR),
            features: vec![x, x * 0.5],
            incumbent_score,
        }
    }

    /// A stream of `rows` events, hour-major over 10 drives, starting
    /// at `seq0`/`hour0`. `incumbent` maps `failing -> score`.
    fn stream(seq0: u64, hour0: u32, rows: usize, incumbent: fn(bool) -> f64) -> Vec<RowEvent> {
        (0..rows)
            .map(|i| {
                let drive = (i % 10) as u32;
                let hour = hour0 + (i / 10) as u32;
                event(seq0 + i as u64, drive, hour, incumbent(drive < 5))
            })
            .collect()
    }

    fn seed_model(dir: &Path) -> PathBuf {
        let samples: Vec<ClassSample> = (0..60)
            .map(|i| {
                let x = f64::from(i % 30);
                // A deliberately wrong incumbent: it believes HIGH
                // values fail, while the fleet's truth is the opposite.
                let class = if x >= 20.0 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x, x * 0.5], class)
            })
            .collect();
        let model = SavedModel::from(
            ClassificationTreeBuilder::new()
                .build(&samples)
                .expect("training the incumbent fixture")
                .compile(),
        );
        let path = dir.join("model.json");
        model.save(&path).expect("saving the incumbent fixture");
        path
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdd-lifecycle-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("creating the temp dir");
        dir
    }

    fn config() -> LifecycleConfig {
        let mut config = LifecycleConfig::new(3, VotingRule::Majority);
        config.retrain_rows = 40;
        config.shadow_rows = 40;
        config.probation_rows = 40;
        config.gate.min_fdr = 0.5;
        config.gate.max_far = 0.2;
        config.buffer_cap = 512;
        config
    }

    /// Stateful event feeder: 10 rows per tick, seq and hour continue
    /// across calls so the consumed-seq filter sees fresh traffic.
    struct Feeder {
        seq: u64,
        hour: u32,
    }

    impl Feeder {
        fn new() -> Self {
            Feeder { seq: 0, hour: 100 }
        }

        fn feed(
            &mut self,
            manager: &mut LifecycleManager,
            pool: &ThreadPool,
            ticks: usize,
        ) -> Vec<String> {
            let mut notes = Vec::new();
            for _ in 0..ticks {
                let batch = stream(self.seq, self.hour, 10, |_| 1.0);
                self.seq += 10;
                self.hour += 1;
                notes.extend(manager.consume(pool, &batch, 0, 0, self.seq));
            }
            notes
        }
    }

    #[test]
    fn full_cycle_trains_shadows_promotes_and_passes_probation() {
        let dir = tempdir("cycle");
        let model_path = seed_model(&dir);
        let mut manager =
            LifecycleManager::new(config(), model_path.clone(), LifecycleFaults::default());
        let store = ModelStore::new(model_path, 3);
        let incumbent_fp = store.live_fingerprint().unwrap();
        let pool = ThreadPool::serial();
        let mut feeder = Feeder::new();

        // 40 rows of cadence, then 40 rows of shadow.
        let notes = feeder.feed(&mut manager, &pool, 8);
        assert_eq!(manager.phase(), Phase::Promoting, "{notes:?}");
        assert_eq!(manager.counters().gate_clearances, 1);
        assert_eq!(manager.counters().candidate_rows_scored, 40);
        let staged_fp = manager.candidate_fingerprint().unwrap();

        let swapped = manager.apply_staged().unwrap().expect("a promoted model");
        assert_eq!(manager.phase(), Phase::Probation);
        assert_eq!(manager.counters().promotions, 1);
        assert_eq!(store.live_fingerprint().unwrap(), staged_fp);
        assert_eq!(
            store.fingerprint_of(&store.prev_path(1)).unwrap(),
            incumbent_fp
        );
        // The swapped-in model is the candidate: it detects the failing
        // cluster the incumbent missed.
        assert!(swapped.score(&[2.0, 1.0]) < 0.0);

        // Probation passes quietly after probation_rows.
        let notes = feeder.feed(&mut manager, &pool, 4);
        assert_eq!(manager.phase(), Phase::Idle, "{notes:?}");
        assert_eq!(manager.counters().rollbacks, 0);
        assert!(notes.iter().any(|n| n.contains("probation passed")));
    }

    #[test]
    fn trainer_panic_is_contained_and_backs_off_by_rows() {
        let dir = tempdir("panic");
        let model_path = seed_model(&dir);
        let faults = LifecycleFaults {
            trainer_panic: Some(1),
            ..LifecycleFaults::default()
        };
        let mut manager = LifecycleManager::new(config(), model_path, faults);
        let pool = ThreadPool::serial();
        let mut feeder = Feeder::new();

        feeder.feed(&mut manager, &pool, 4);
        assert_eq!(manager.counters().trainer_panics, 1);
        assert_eq!(manager.phase(), Phase::Idle);
        // Backoff doubled the cadence: 40 more rows are not enough...
        feeder.feed(&mut manager, &pool, 4);
        assert_eq!(manager.counters().trainer_panics, 1);
        assert_eq!(manager.phase(), Phase::Idle);
        // ...but 80 are, and the second attempt succeeds.
        feeder.feed(&mut manager, &pool, 4);
        assert_eq!(manager.phase(), Phase::Shadow);
        assert_eq!(manager.counters().trainer_panics, 1);
    }

    #[test]
    fn regressing_candidate_is_refused_and_model_file_untouched() {
        let dir = tempdir("refuse");
        let model_path = seed_model(&dir);
        let faults = LifecycleFaults {
            regressing_candidate: true,
            ..LifecycleFaults::default()
        };
        let mut manager = LifecycleManager::new(config(), model_path.clone(), faults);
        let store = ModelStore::new(model_path, 3);
        let incumbent_fp = store.live_fingerprint().unwrap();
        let pool = ThreadPool::serial();
        let mut feeder = Feeder::new();

        let notes = feeder.feed(&mut manager, &pool, 10);
        assert_eq!(manager.counters().gate_refusals, 1, "{notes:?}");
        assert_eq!(manager.counters().promotions, 0);
        assert_eq!(manager.phase(), Phase::Idle);
        assert!(manager.apply_staged().unwrap().is_none());
        assert_eq!(store.live_fingerprint().unwrap(), incumbent_fp);
        assert!(notes.iter().any(|n| n.contains("gate refused")));
    }

    #[test]
    fn poisoned_rows_are_quarantined_not_trained_on() {
        let dir = tempdir("poison");
        let model_path = seed_model(&dir);
        let faults = LifecycleFaults {
            poison_buffer: Some(3),
            ..LifecycleFaults::default()
        };
        let mut manager = LifecycleManager::new(config(), model_path, faults);
        let pool = ThreadPool::serial();
        let mut feeder = Feeder::new();
        feeder.feed(&mut manager, &pool, 2);
        assert_eq!(manager.buffer().poisoned_rows(), 1);
        assert_eq!(manager.buffer().len(), 19);
    }

    #[test]
    fn alarm_rate_anomaly_rolls_back_to_the_incumbent() {
        let dir = tempdir("rollback");
        let model_path = seed_model(&dir);
        let mut manager =
            LifecycleManager::new(config(), model_path.clone(), LifecycleFaults::default());
        let store = ModelStore::new(model_path, 3);
        let incumbent_fp = store.live_fingerprint().unwrap();
        let pool = ThreadPool::serial();
        let mut feeder = Feeder::new();

        feeder.feed(&mut manager, &pool, 8);
        let promoted_fp = manager.candidate_fingerprint().unwrap();
        manager.apply_staged().unwrap().expect("a promoted model");
        assert_eq!(manager.phase(), Phase::Probation);

        // Probation traffic with a pathological alarm flood.
        let batch = stream(2000, 300, 10, |_| 1.0);
        let notes = manager.consume(&pool, &batch, 9, 0, 2010);
        assert_eq!(manager.phase(), Phase::RollingBack, "{notes:?}");
        let swapped = manager.apply_staged().unwrap().expect("the restored model");
        assert_eq!(manager.counters().rollbacks, 1);
        assert_eq!(manager.phase(), Phase::Idle);
        assert_eq!(store.live_fingerprint().unwrap(), incumbent_fp);
        // The bad model is demoted into history, not lost.
        assert_eq!(
            store.fingerprint_of(&store.prev_path(1)).unwrap(),
            promoted_fp
        );
        // The restored model is the (blind) incumbent again.
        assert!(swapped.score(&[2.0, 1.0]) > 0.0);
    }

    #[test]
    fn breaker_transition_during_probation_also_trips_rollback() {
        let dir = tempdir("breaker");
        let model_path = seed_model(&dir);
        let mut manager = LifecycleManager::new(config(), model_path, LifecycleFaults::default());
        let pool = ThreadPool::serial();
        let mut feeder = Feeder::new();
        feeder.feed(&mut manager, &pool, 8);
        manager.apply_staged().unwrap();
        let batch = stream(2000, 300, 10, |_| 1.0);
        manager.consume(&pool, &batch, 0, 1, 2010);
        assert_eq!(manager.phase(), Phase::RollingBack);
    }

    #[test]
    fn injected_crash_mid_promotion_still_lands_exactly_the_candidate() {
        for (i, step) in PromotionStep::ALL.iter().enumerate() {
            let dir = tempdir(&format!("crash-{i}"));
            let model_path = seed_model(&dir);
            let faults = LifecycleFaults {
                crash_at_step: Some(*step),
                ..LifecycleFaults::default()
            };
            let mut manager = LifecycleManager::new(config(), model_path.clone(), faults);
            let store = ModelStore::new(model_path, 3);
            let pool = ThreadPool::serial();
            let mut feeder = Feeder::new();
            feeder.feed(&mut manager, &pool, 8);
            let staged_fp = manager.candidate_fingerprint().unwrap();
            manager.apply_staged().unwrap().expect("a promoted model");
            assert_eq!(manager.phase(), Phase::Probation, "step {step:?}");
            assert_eq!(manager.counters().promotions, 1);
            assert_eq!(store.live_fingerprint().unwrap(), staged_fp);
        }
    }

    #[test]
    fn checkpoint_round_trips_and_replay_is_deduplicated() {
        let dir = tempdir("ckpt");
        let model_path = seed_model(&dir);
        let mut manager =
            LifecycleManager::new(config(), model_path.clone(), LifecycleFaults::default());
        let pool = ThreadPool::serial();
        let mut feeder = Feeder::new();
        // Stop mid-shadow: candidate staged, window partially filled.
        feeder.feed(&mut manager, &pool, 6);
        assert_eq!(manager.phase(), Phase::Shadow);
        manager.save_checkpoint(&dir).unwrap();

        let (mut resumed, recovery) =
            LifecycleManager::resume(config(), model_path, LifecycleFaults::default(), Some(&dir))
                .unwrap();
        assert_eq!(recovery, Recovery::Clean);
        assert_eq!(resumed.phase(), Phase::Shadow);
        assert_eq!(resumed.counters(), manager.counters());
        assert_eq!(
            resumed.candidate_fingerprint(),
            manager.candidate_fingerprint()
        );
        assert!(resumed.candidate.is_some(), "candidate reloaded from disk");

        // Replay the last two ticks (a crash replays a feed suffix):
        // consumed-seq dedup must keep both managers in lockstep.
        let mut seq = 40u64;
        for hour in 104u32..108 {
            let batch = stream(seq, hour, 10, |_| 1.0);
            seq += 10;
            if seq > 60 {
                manager.consume(&pool, &batch, 0, 0, seq);
            }
            resumed.consume(&pool, &batch, 0, 0, seq);
        }
        assert_eq!(resumed.phase(), manager.phase());
        assert_eq!(resumed.counters(), manager.counters());
        assert_eq!(resumed.state_to_json(), manager.state_to_json());
    }

    #[test]
    fn resume_after_completed_promotion_enters_probation_once() {
        let dir = tempdir("resume-promoted");
        let model_path = seed_model(&dir);
        let mut manager =
            LifecycleManager::new(config(), model_path.clone(), LifecycleFaults::default());
        let pool = ThreadPool::serial();
        let mut feeder = Feeder::new();
        feeder.feed(&mut manager, &pool, 8);
        assert_eq!(manager.phase(), Phase::Promoting);
        let staged_fp = manager.candidate_fingerprint().unwrap();
        // Checkpoint BEFORE the promotion applies, then promote, then
        // "crash": the restart sees phase=Promoting but the candidate
        // already live.
        manager.save_checkpoint(&dir).unwrap();
        manager.apply_staged().unwrap();

        let (resumed, _) =
            LifecycleManager::resume(config(), model_path, LifecycleFaults::default(), Some(&dir))
                .unwrap();
        assert_eq!(resumed.phase(), Phase::Probation);
        assert_eq!(resumed.counters().promotions, 1);
        // The fingerprint is kept through probation for status display.
        assert_eq!(resumed.candidate_fingerprint(), Some(staged_fp));
        let store = resumed.store();
        assert_eq!(store.live_fingerprint().unwrap(), staged_fp);
    }
}
