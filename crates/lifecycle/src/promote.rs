//! Crash-safe two-phase model promotion with retained history.
//!
//! The live model file is only ever replaced through a fixed protocol
//! whose every step is an atomic filesystem operation:
//!
//! 1. **Stage**: the candidate is written to `<model>.candidate` via the
//!    checksummed atomic model writer.
//! 2. **Marker**: `<model>.promote` is written (atomically) carrying the
//!    candidate file's fingerprint — promotion intent is now durable.
//! 3. **Rotate**: `<model>.prev-k` history shifts down and the live
//!    model is renamed to `<model>.prev-1`.
//! 4. **Rename**: the candidate is renamed over the live model path.
//! 5. **Unmark**: the marker is removed — promotion is complete.
//!
//! [`ModelStore::recover`] runs at every startup and maps any crash
//! point back to a consistent state: either the promotion completes
//! (marker present, candidate intact) or it is abandoned and the
//! last-known-good model keeps serving (marker present, candidate
//! corrupt). A `kill -9` at *any* step therefore resumes with exactly
//! the incumbent or exactly the candidate — never a torn model.
//!
//! [`ModelStore::rollback`] reuses the same protocol in reverse: the
//! newest history entry is staged as a candidate and promoted, which
//! demotes the bad model into history (where `hddpred lifecycle` can
//! still inspect it).

use hdd_eval::{ModelError, SavedModel};
use hdd_json::{container, Value};
use std::path::{Path, PathBuf};

/// Container magic for the promotion marker file.
const MARKER_MAGIC: &str = "hddpred-promote";

/// FNV-1a 64-bit fingerprint of a byte string.
#[must_use]
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// Filesystem steps of the promotion protocol, used to inject a
/// simulated `kill -9` *after* the named step in chaos tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionStep {
    /// Stop after the marker file is written.
    AfterMarker,
    /// Stop after history rotation (live model renamed to `.prev-1`).
    AfterRotate,
    /// Stop after the candidate is renamed over the live model.
    AfterRename,
}

impl PromotionStep {
    /// Every injectable stop point, in protocol order.
    pub const ALL: [PromotionStep; 3] = [
        PromotionStep::AfterMarker,
        PromotionStep::AfterRotate,
        PromotionStep::AfterRename,
    ];
}

/// What [`ModelStore::promote`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoteOutcome {
    /// The candidate is now the live model; its fingerprint.
    Completed {
        /// Fingerprint of the promoted model file.
        fingerprint: u64,
    },
    /// An injected stop ended the protocol mid-flight (test-only); the
    /// store is in exactly the state a `kill -9` there would leave.
    Stopped(PromotionStep),
}

/// What [`ModelStore::recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// No promotion was in flight. A staged candidate without a marker
    /// is left untouched: promotion intent never became durable, so the
    /// file is either a live shadow candidate (the manager's checkpoint
    /// knows) or harmless litter the next staging overwrites.
    Clean,
    /// An in-flight promotion was carried to completion; the live model
    /// is the candidate with this fingerprint.
    Completed {
        /// Fingerprint of the now-live model file.
        fingerprint: u64,
    },
    /// The in-flight promotion was abandoned (candidate corrupt or
    /// marker unreadable); the live model is the last known good.
    Aborted {
        /// Whether the live model had to be restored from history.
        restored_from_history: bool,
    },
}

/// Errors from the promotion store.
#[derive(Debug)]
pub enum PromoteError {
    /// A filesystem step failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// Loading or saving a model failed.
    Model(ModelError),
    /// Promotion was requested without a staged candidate.
    NoCandidate,
    /// Rollback was requested but no history entry exists.
    NoHistory,
}

impl std::fmt::Display for PromoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PromoteError::Io { path, source } => {
                write!(f, "promotion I/O failed at {}: {source}", path.display())
            }
            PromoteError::Model(e) => write!(f, "promotion model error: {e}"),
            PromoteError::NoCandidate => write!(f, "no staged candidate to promote"),
            PromoteError::NoHistory => write!(f, "no model history to roll back to"),
        }
    }
}

impl std::error::Error for PromoteError {}

impl From<ModelError> for PromoteError {
    fn from(e: ModelError) -> Self {
        PromoteError::Model(e)
    }
}

/// The live model file plus its candidate, marker, and history siblings.
#[derive(Debug, Clone)]
pub struct ModelStore {
    model_path: PathBuf,
    history: usize,
}

impl ModelStore {
    /// A store managing `model_path` with `history` retained
    /// predecessors (clamped to at least 1 so rollback always has a
    /// target).
    #[must_use]
    pub fn new(model_path: PathBuf, history: usize) -> Self {
        ModelStore {
            model_path,
            history: history.max(1),
        }
    }

    /// The live model path.
    #[must_use]
    pub fn model_path(&self) -> &Path {
        &self.model_path
    }

    /// Retained history depth.
    #[must_use]
    pub fn history(&self) -> usize {
        self.history
    }

    /// The staged-candidate sibling path.
    #[must_use]
    pub fn candidate_path(&self) -> PathBuf {
        sibling(&self.model_path, "candidate")
    }

    /// The promotion-marker sibling path.
    #[must_use]
    pub fn marker_path(&self) -> PathBuf {
        sibling(&self.model_path, "promote")
    }

    /// The `k`-th history sibling path (1 = most recent predecessor).
    #[must_use]
    pub fn prev_path(&self, k: usize) -> PathBuf {
        sibling(&self.model_path, &format!("prev-{k}"))
    }

    /// History entries that exist on disk, most recent first.
    #[must_use]
    pub fn history_on_disk(&self) -> Vec<PathBuf> {
        (1..=self.history)
            .map(|k| self.prev_path(k))
            .filter(|p| p.exists())
            .collect()
    }

    /// Fingerprint of the file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`PromoteError::Io`] when the file cannot be read.
    pub fn fingerprint_of(&self, path: &Path) -> Result<u64, PromoteError> {
        let bytes = std::fs::read(path).map_err(io_at(path))?;
        Ok(fingerprint(&bytes))
    }

    /// Fingerprint of the live model file.
    ///
    /// # Errors
    ///
    /// Returns [`PromoteError::Io`] when the live model cannot be read.
    pub fn live_fingerprint(&self) -> Result<u64, PromoteError> {
        self.fingerprint_of(&self.model_path)
    }

    /// Write `model` to the candidate path (protocol step 1) and return
    /// the candidate file's fingerprint.
    ///
    /// # Errors
    ///
    /// Returns an error when saving or re-reading the candidate fails.
    pub fn stage_candidate(&self, model: &SavedModel) -> Result<u64, PromoteError> {
        let path = self.candidate_path();
        model.save(&path)?;
        self.fingerprint_of(&path)
    }

    /// Remove a staged candidate (gate refusal). Missing file is fine.
    ///
    /// # Errors
    ///
    /// Returns [`PromoteError::Io`] on any failure other than the file
    /// already being gone.
    pub fn drop_candidate(&self) -> Result<(), PromoteError> {
        remove_if_present(&self.candidate_path())
    }

    /// Run protocol steps 2–5 over the already-staged candidate.
    ///
    /// `stop_at` injects a simulated crash after the named step; the
    /// caller is expected to follow with [`ModelStore::recover`] exactly
    /// as a restarted process would.
    ///
    /// # Errors
    ///
    /// [`PromoteError::NoCandidate`] when nothing is staged, otherwise
    /// I/O errors from the individual steps.
    pub fn promote(&self, stop_at: Option<PromotionStep>) -> Result<PromoteOutcome, PromoteError> {
        let candidate = self.candidate_path();
        if !candidate.exists() {
            return Err(PromoteError::NoCandidate);
        }
        let fp = self.fingerprint_of(&candidate)?;

        // Step 2: durable promotion intent.
        self.write_marker(fp)?;
        if stop_at == Some(PromotionStep::AfterMarker) {
            return Ok(PromoteOutcome::Stopped(PromotionStep::AfterMarker));
        }

        // Step 3: shift history and demote the live model.
        self.rotate_history()?;
        if stop_at == Some(PromotionStep::AfterRotate) {
            return Ok(PromoteOutcome::Stopped(PromotionStep::AfterRotate));
        }

        // Step 4: the candidate becomes the live model.
        rename(&candidate, &self.model_path)?;
        if stop_at == Some(PromotionStep::AfterRename) {
            return Ok(PromoteOutcome::Stopped(PromotionStep::AfterRename));
        }

        // Step 5: promotion complete.
        remove_if_present(&self.marker_path())?;
        Ok(PromoteOutcome::Completed { fingerprint: fp })
    }

    /// Map any crash point back to a consistent state (see module docs).
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the repair steps themselves.
    pub fn recover(&self) -> Result<Recovery, PromoteError> {
        let marker = self.marker_path();
        let candidate = self.candidate_path();
        if !marker.exists() {
            // No durable intent: a staged candidate (if any) stays put —
            // it may be a live shadow candidate.
            return Ok(Recovery::Clean);
        }

        let Some(expected) = self.read_marker() else {
            // The marker itself is unreadable: promotion intent cannot be
            // trusted, so abandon it conservatively.
            remove_if_present(&candidate)?;
            remove_if_present(&marker)?;
            return self.ensure_live_model();
        };

        let candidate_ok = candidate.exists()
            && self.fingerprint_of(&candidate)? == expected
            && SavedModel::load(&candidate).is_ok();
        if candidate_ok {
            // Resume: crash landed between steps 2 and 4. If the live
            // model is still in place the rotation may not have finished —
            // re-rotating can double-shift history, which only ages
            // entries early and never loses the newest one.
            if self.model_path.exists() {
                self.rotate_history()?;
            }
            rename(&candidate, &self.model_path)?;
            remove_if_present(&marker)?;
            return Ok(Recovery::Completed {
                fingerprint: expected,
            });
        }

        if !candidate.exists() && self.model_path.exists() {
            // Step 4 completed, crash before step 5: check whether the
            // live model IS the promoted candidate.
            if self.live_fingerprint()? == expected {
                remove_if_present(&marker)?;
                return Ok(Recovery::Completed {
                    fingerprint: expected,
                });
            }
        }

        // Candidate corrupt (or vanished without completing): abandon.
        remove_if_present(&candidate)?;
        remove_if_present(&marker)?;
        self.ensure_live_model()
    }

    /// Stage the newest history entry and promote it, demoting the
    /// current (bad) live model into history.
    ///
    /// # Errors
    ///
    /// [`PromoteError::NoHistory`] when no predecessor exists, or the
    /// protocol's own errors.
    pub fn rollback(&self) -> Result<u64, PromoteError> {
        let prev = self.prev_path(1);
        if !prev.exists() {
            return Err(PromoteError::NoHistory);
        }
        // Validate before staging: a rollback target must itself load.
        SavedModel::load(&prev)?;
        let bytes = std::fs::read(&prev).map_err(io_at(&prev))?;
        let candidate = self.candidate_path();
        let tmp = container::tmp_sibling(&candidate);
        std::fs::write(&tmp, &bytes).map_err(io_at(&tmp))?;
        rename(&tmp, &candidate)?;
        match self.promote(None)? {
            PromoteOutcome::Completed { fingerprint } => Ok(fingerprint),
            // Unreachable: promote(None) never stops early; treat it as a
            // missing candidate rather than panicking.
            PromoteOutcome::Stopped(_) => Err(PromoteError::NoCandidate),
        }
    }

    fn write_marker(&self, fp: u64) -> Result<(), PromoteError> {
        let payload = hdd_json::to_string(&Value::Obj(vec![(
            "fingerprint".to_string(),
            Value::Str(format!("{fp:016x}")),
        )]));
        let document = container::seal(MARKER_MAGIC, &payload);
        let path = self.marker_path();
        container::write_atomic(&path, &document).map_err(io_at(&path))
    }

    /// The marker's recorded fingerprint, or `None` when the marker is
    /// unreadable or fails its checksum.
    fn read_marker(&self) -> Option<u64> {
        let text = std::fs::read_to_string(self.marker_path()).ok()?;
        let payload = container::unseal(MARKER_MAGIC, &text).ok()?;
        let value = hdd_json::parse(payload).ok()?;
        let hex = value.str_field("fingerprint").ok()?;
        u64::from_str_radix(hex, 16).ok()
    }

    fn rotate_history(&self) -> Result<(), PromoteError> {
        for k in (1..self.history).rev() {
            let from = self.prev_path(k);
            if from.exists() {
                rename(&from, &self.prev_path(k + 1))?;
            }
        }
        if self.model_path.exists() {
            rename(&self.model_path, &self.prev_path(1))?;
        }
        Ok(())
    }

    /// After an abandoned promotion, make sure a live model exists —
    /// restoring the newest history entry when rotation already demoted
    /// it.
    fn ensure_live_model(&self) -> Result<Recovery, PromoteError> {
        if self.model_path.exists() {
            return Ok(Recovery::Aborted {
                restored_from_history: false,
            });
        }
        let prev = self.prev_path(1);
        if prev.exists() {
            rename(&prev, &self.model_path)?;
            return Ok(Recovery::Aborted {
                restored_from_history: true,
            });
        }
        Err(PromoteError::Io {
            path: self.model_path.clone(),
            source: std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no live model and no history to restore",
            ),
        })
    }
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(std::ffi::OsStr::to_os_string)
        .unwrap_or_default();
    name.push(format!(".{suffix}"));
    path.with_file_name(name)
}

fn io_at(path: &Path) -> impl Fn(std::io::Error) -> PromoteError + '_ {
    move |source| PromoteError::Io {
        path: path.to_path_buf(),
        source,
    }
}

fn rename(from: &Path, to: &Path) -> Result<(), PromoteError> {
    std::fs::rename(from, to).map_err(io_at(from))
}

fn remove_if_present(path: &Path) -> Result<(), PromoteError> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(source) => Err(PromoteError::Io {
            path: path.to_path_buf(),
            source,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd_cart::{Class, ClassSample, ClassificationTreeBuilder};

    fn model(shift: f64) -> SavedModel {
        let samples: Vec<ClassSample> = (0..40)
            .map(|i| {
                let x = f64::from(i % 20) + shift;
                let class = if f64::from(i % 20) < 10.0 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x, x * 0.5], class)
            })
            .collect();
        SavedModel::from(
            ClassificationTreeBuilder::new()
                .build(&samples)
                .expect("training the fixture tree")
                .compile(),
        )
    }

    fn store(dir: &Path) -> ModelStore {
        let path = dir.join("model.json");
        model(0.0).save(&path).expect("seeding the live model");
        ModelStore::new(path, 3)
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdd-promote-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("creating the temp dir");
        dir
    }

    #[test]
    fn promote_rotates_history_and_installs_candidate() {
        let dir = tempdir("basic");
        let store = store(&dir);
        let incumbent_fp = store.live_fingerprint().unwrap();
        let staged_fp = store.stage_candidate(&model(5.0)).unwrap();
        let outcome = store.promote(None).unwrap();
        assert_eq!(
            outcome,
            PromoteOutcome::Completed {
                fingerprint: staged_fp
            }
        );
        assert_eq!(store.live_fingerprint().unwrap(), staged_fp);
        assert_eq!(
            store.fingerprint_of(&store.prev_path(1)).unwrap(),
            incumbent_fp
        );
        assert!(!store.candidate_path().exists());
        assert!(!store.marker_path().exists());
        assert_eq!(store.recover().unwrap(), Recovery::Clean);
    }

    #[test]
    fn crash_at_every_step_resumes_incumbent_or_candidate() {
        for (i, step) in PromotionStep::ALL.iter().enumerate() {
            let dir = tempdir(&format!("crash-{i}"));
            let store = store(&dir);
            let staged_fp = store.stage_candidate(&model(7.0)).unwrap();
            assert_eq!(
                store.promote(Some(*step)).unwrap(),
                PromoteOutcome::Stopped(*step)
            );
            let recovered = store.recover().unwrap();
            assert_eq!(
                recovered,
                Recovery::Completed {
                    fingerprint: staged_fp
                },
                "step {step:?}"
            );
            assert_eq!(store.live_fingerprint().unwrap(), staged_fp);
            assert!(!store.marker_path().exists());
            assert!(!store.candidate_path().exists());
        }
    }

    #[test]
    fn markerless_candidate_is_preserved_and_not_promoted() {
        let dir = tempdir("stale");
        let store = store(&dir);
        let incumbent_fp = store.live_fingerprint().unwrap();
        let staged_fp = store.stage_candidate(&model(3.0)).unwrap();
        assert_eq!(store.recover().unwrap(), Recovery::Clean);
        // The incumbent keeps serving; the shadow candidate survives.
        assert_eq!(store.live_fingerprint().unwrap(), incumbent_fp);
        assert_eq!(
            store.fingerprint_of(&store.candidate_path()).unwrap(),
            staged_fp
        );
    }

    #[test]
    fn corrupt_candidate_falls_back_to_last_known_good() {
        let dir = tempdir("corrupt");
        let store = store(&dir);
        let incumbent_fp = store.live_fingerprint().unwrap();
        store.stage_candidate(&model(9.0)).unwrap();
        // Crash right after the marker, then flip a bit in the candidate.
        assert_eq!(
            store.promote(Some(PromotionStep::AfterMarker)).unwrap(),
            PromoteOutcome::Stopped(PromotionStep::AfterMarker)
        );
        let mut bytes = std::fs::read(store.candidate_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(store.candidate_path(), &bytes).unwrap();
        assert_eq!(
            store.recover().unwrap(),
            Recovery::Aborted {
                restored_from_history: false
            }
        );
        assert_eq!(store.live_fingerprint().unwrap(), incumbent_fp);
        assert!(!store.marker_path().exists());
        assert!(!store.candidate_path().exists());
    }

    #[test]
    fn corrupt_candidate_after_rotation_restores_from_history() {
        let dir = tempdir("restore");
        let store = store(&dir);
        let incumbent_fp = store.live_fingerprint().unwrap();
        store.stage_candidate(&model(2.0)).unwrap();
        assert_eq!(
            store.promote(Some(PromotionStep::AfterRotate)).unwrap(),
            PromoteOutcome::Stopped(PromotionStep::AfterRotate)
        );
        // Live model already demoted to prev-1; now the candidate rots.
        let mut bytes = std::fs::read(store.candidate_path()).unwrap();
        bytes[10] ^= 0x01;
        std::fs::write(store.candidate_path(), &bytes).unwrap();
        assert_eq!(
            store.recover().unwrap(),
            Recovery::Aborted {
                restored_from_history: true
            }
        );
        assert_eq!(store.live_fingerprint().unwrap(), incumbent_fp);
    }

    #[test]
    fn rollback_demotes_the_bad_model_into_history() {
        let dir = tempdir("rollback");
        let store = store(&dir);
        let good_fp = store.live_fingerprint().unwrap();
        store.stage_candidate(&model(4.0)).unwrap();
        let bad_fp = match store.promote(None).unwrap() {
            PromoteOutcome::Completed { fingerprint } => fingerprint,
            PromoteOutcome::Stopped(_) => unreachable!(),
        };
        let restored = store.rollback().unwrap();
        assert_eq!(restored, good_fp);
        assert_eq!(store.live_fingerprint().unwrap(), good_fp);
        assert_eq!(store.fingerprint_of(&store.prev_path(1)).unwrap(), bad_fp);
    }

    #[test]
    fn history_depth_is_bounded() {
        let dir = tempdir("depth");
        let store = store(&dir);
        for round in 0..5 {
            store
                .stage_candidate(&model(10.0 + f64::from(round)))
                .unwrap();
            store.promote(None).unwrap();
        }
        assert_eq!(store.history_on_disk().len(), 3);
        assert!(!store.prev_path(4).exists());
    }

    #[test]
    fn rollback_without_history_is_refused() {
        let dir = tempdir("nohist");
        let store = store(&dir);
        assert!(matches!(store.rollback(), Err(PromoteError::NoHistory)));
    }
}
