//! Streaming scenario fleet generator.
//!
//! [`generate_fleet`] turns a [`ScenarioManifest`] into CSV feed bytes,
//! one drive at a time — memory stays constant in the fleet's *row*
//! count (only the per-drive spec table is held). Every draw comes from
//! the manifest seed through [`hdd_smart`]'s deterministic RNG, so the
//! same manifest always emits byte-identical feeds; [`fleet_fingerprint`]
//! regenerates into a hashing sink to prove it cheaply.
//!
//! Faults are injected *inline with exact counts* ([`FleetSummary`]),
//! which is what lets the gauntlet assert bounded degradation as
//! equalities (`stale_rows == injected_stale`) instead of tolerances:
//!
//! * stale rows — re-emitted tails and duplicates (burst, flood),
//! * garbage rows — unparseable lines aimed at the circuit breaker,
//! * rotations — mid-feed header lines the tailer counts as rotations.

use crate::manifest::ScenarioManifest;
use crate::scenario::Scenario;
use hdd_smart::csv::{write_header, write_series};
use hdd_smart::gen::generate_series;
use hdd_smart::rng::splitmix64;
use hdd_smart::time::OBSERVATION_HOURS;
use hdd_smart::{
    DatasetGenerator, DriveClass, DriveId, DriveSpec, FailureMode, FamilyProfile, Hour,
    SmartSample, SmartSeries, NUM_ATTRIBUTES,
};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Tail length re-emitted per bursting drive in `hot-feed-burst`.
const BURST_TAIL_ROWS: usize = 32;
/// Garbage lines per flood burst in `quarantine-flood` — sized so that
/// even split across four shards, each shard's 100-row breaker window
/// sees well over the default 0.1 quarantine ceiling.
const FLOOD_GARBAGE_ROWS: usize = 120;
/// Rows between injected header lines in `rotation-storm`.
const ROTATION_EVERY_ROWS: usize = 64;
/// Drives per rack in `rack-failures`.
const RACK_SIZE: usize = 8;
/// Oscillation half-period (hours) in `threshold-oscillator`.
const OSCILLATION_HOURS: u32 = 6;
/// Counter inflation at the far end of the drifted firmware cohort in
/// `firmware-cohort-drift` — raw counters grow 3× faster than the
/// population the incumbent was trained on.
const DRIFT_COUNTER_SCALE: f64 = 3.0;
/// Analog-attenuation floor at the far end of the drifted cohort: the
/// normalized-attribute half of the failure signature fades to 35 % of
/// its trained-on amplitude.
const DRIFT_ANALOG_FLOOR: f64 = 0.35;

/// Ground truth for one generated drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTruth {
    /// The drive id as it appears in the feed.
    pub drive: u32,
    /// The hour the drive fails, `None` for good drives.
    pub fail_hour: Option<u32>,
}

/// What a generation pass emitted, with exact injected-fault counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetSummary {
    /// Ground truth per drive, in emission order.
    pub truth: Vec<FleetTruth>,
    /// Clean data rows written (first emission of each sample).
    pub clean_rows: usize,
    /// Rows the engine must count as stale (re-emissions, duplicates).
    pub injected_stale: usize,
    /// Unparseable rows the engine must quarantine.
    pub injected_garbage: usize,
    /// Mid-feed header lines ingest must count as rotations.
    pub injected_rotations: usize,
}

impl FleetSummary {
    /// Every line the engine will see as a data row.
    #[must_use]
    pub fn engine_rows(&self) -> usize {
        self.clean_rows + self.injected_stale + self.injected_garbage
    }
}

/// A counting FNV-1a 64 sink: hashes whatever is written through it.
///
/// Byte-identity of two generation passes reduces to comparing two
/// `(hash, len)` pairs instead of buffering either output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnvWriter {
    hash: u64,
    len: u64,
}

impl FnvWriter {
    /// An empty sink (the FNV-1a offset basis).
    #[must_use]
    pub fn new() -> Self {
        FnvWriter {
            hash: 0xCBF2_9CE4_8422_2325,
            len: 0,
        }
    }

    /// The FNV-1a 64 hash of everything written so far.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing was written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for FnvWriter {
    fn default() -> Self {
        FnvWriter::new()
    }
}

impl Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &b in buf {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.len += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Generate the manifest's fleet into `feeds` (one writer per feed).
///
/// # Errors
///
/// Propagates writer errors.
///
/// # Panics
///
/// Panics if `feeds.len()` differs from the manifest's `n_feeds` — the
/// caller built the wrong number of sinks.
pub fn generate_fleet<W: Write>(
    manifest: &ScenarioManifest,
    feeds: &mut [W],
) -> io::Result<FleetSummary> {
    assert_eq!(
        feeds.len(),
        manifest.n_feeds,
        "manifest wants {} feed(s), caller passed {}",
        manifest.n_feeds,
        feeds.len()
    );
    let mut gen = Generator {
        manifest,
        profile: FamilyProfile::w().scaled(manifest.scale),
        summary: FleetSummary::default(),
        rows_since_rotation: vec![0; feeds.len()],
        garbage_counter: 0,
    };
    for feed in feeds.iter_mut() {
        write_header(&mut *feed)?;
    }
    match manifest.scenario {
        Scenario::CalibratedMix => gen.calibrated_mix(feeds)?,
        Scenario::HotFeedBurst => gen.hot_feed_burst(feeds)?,
        Scenario::RackFailures => gen.rack_failures(feeds)?,
        Scenario::RotationStorm => gen.rotation_storm(feeds)?,
        Scenario::ShardSkew => gen.shard_skew(feeds)?,
        Scenario::LateMimic => gen.late_mimic(feeds)?,
        Scenario::ThresholdOscillator => gen.threshold_oscillator(feeds)?,
        Scenario::QuarantineFlood => gen.quarantine_flood(feeds)?,
        Scenario::FirmwareCohortDrift => gen.firmware_cohort_drift(feeds)?,
    }
    for feed in feeds.iter_mut() {
        feed.flush()?;
    }
    Ok(gen.summary)
}

/// Regenerate the manifest's fleet into hashing sinks and return the
/// per-feed `(fnv64, byte_len)` fingerprints.
///
/// # Errors
///
/// Propagates generator errors (none occur for in-memory sinks).
pub fn fleet_fingerprint(manifest: &ScenarioManifest) -> io::Result<Vec<(u64, u64)>> {
    let mut sinks = vec![FnvWriter::new(); manifest.n_feeds];
    generate_fleet(manifest, &mut sinks)?;
    Ok(sinks.into_iter().map(|s| (s.hash(), s.len())).collect())
}

struct Generator<'a> {
    manifest: &'a ScenarioManifest,
    profile: FamilyProfile,
    summary: FleetSummary,
    rows_since_rotation: Vec<usize>,
    garbage_counter: u64,
}

impl Generator<'_> {
    fn dataset(&self) -> hdd_smart::Dataset {
        DatasetGenerator::new(self.profile.clone(), self.manifest.seed).generate()
    }

    fn feed_of(&self, drive_index: usize) -> usize {
        drive_index % self.manifest.n_feeds
    }

    /// Record a clean series emission in the summary.
    fn record(&mut self, series: &SmartSeries) {
        self.summary.truth.push(FleetTruth {
            drive: series.drive.0,
            fail_hour: series.class.fail_hour().map(|h| h.0),
        });
        self.summary.clean_rows += series.len();
    }

    fn emit<W: Write>(
        &mut self,
        feed: &mut W,
        feed_idx: usize,
        series: &SmartSeries,
    ) -> io::Result<()> {
        self.record(series);
        self.rows_since_rotation[feed_idx] += series.len();
        write_series(feed, series)
    }

    /// `expected/calibrated-mix`: the paper's fleet, round-robined.
    fn calibrated_mix<W: Write>(&mut self, feeds: &mut [W]) -> io::Result<()> {
        let ds = self.dataset();
        for (i, spec) in ds.drives().iter().enumerate() {
            let f = self.feed_of(i);
            let series = ds.series(spec);
            self.emit(&mut feeds[f], f, &series)?;
        }
        Ok(())
    }

    /// `stress/hot-feed-burst`: feed 0 re-emits the recent tail of
    /// every other of its drives right after the clean series — rows
    /// the engine has already committed, so all of them must land in
    /// `stale_rows` and nowhere else.
    fn hot_feed_burst<W: Write>(&mut self, feeds: &mut [W]) -> io::Result<()> {
        let ds = self.dataset();
        for (i, spec) in ds.drives().iter().enumerate() {
            let f = self.feed_of(i);
            let series = ds.series(spec);
            self.emit(&mut feeds[f], f, &series)?;
            let bursts = f == 0 && (i / self.manifest.n_feeds).is_multiple_of(2);
            if bursts && !series.is_empty() {
                let tail_start = series.len().saturating_sub(BURST_TAIL_ROWS);
                let tail = &series.samples()[tail_start..];
                let replay = SmartSeries::new(series.drive, series.class, tail.to_vec());
                write_series(&mut feeds[f], &replay)?;
                self.summary.injected_stale += tail.len();
            }
        }
        Ok(())
    }

    /// `stress/rack-failures`: every fourth rack of [`RACK_SIZE`]
    /// drives is rewritten as correlated failures inside a tight
    /// window, alarms for a whole rack landing almost at once.
    fn rack_failures<W: Write>(&mut self, feeds: &mut [W]) -> io::Result<()> {
        const MODES: [FailureMode; 4] = [
            FailureMode::MediaDefects,
            FailureMode::MechanicalWear,
            FailureMode::Thermal,
            FailureMode::Electronic,
        ];
        let ds = self.dataset();
        for (i, spec) in ds.drives().iter().enumerate() {
            let f = self.feed_of(i);
            let rack = i / RACK_SIZE;
            let series = if rack % 4 == 3 {
                // The rack dies together: fail hours 2h apart, the
                // window itself placed per-rack but kept deep enough
                // into the observation period for a full pre-failure
                // trace.
                let base = 600 + (rack as u32 % 7) * 96;
                let fail_hour = Hour(base + (i % RACK_SIZE) as u32 * 2);
                let mut doomed = spec.clone();
                doomed.class = DriveClass::Failed { fail_hour };
                doomed.failure_mode = Some(MODES[i % MODES.len()]);
                doomed.deterioration_hours = 336.0;
                doomed.chronic_outlier = false;
                generate_series(&self.profile, self.manifest.seed, &doomed)
            } else {
                ds.series(spec)
            };
            self.emit(&mut feeds[f], f, &series)?;
        }
        Ok(())
    }

    /// `stress/rotation-storm`: a mid-feed header every
    /// [`ROTATION_EVERY_ROWS`] rows (each counted as a rotation by the
    /// tailer) on top of a deliberately unbalanced drive split — the
    /// short feed stalls the watermark so held-back alarms only drain
    /// through the idle flush.
    fn rotation_storm<W: Write>(&mut self, feeds: &mut [W]) -> io::Result<()> {
        let ds = self.dataset();
        let last = self.manifest.n_feeds - 1;
        for (i, spec) in ds.drives().iter().enumerate() {
            let f = if self.manifest.n_feeds == 1 || i % 4 != 3 {
                0
            } else {
                last
            };
            let series = ds.series(spec);
            self.emit(&mut feeds[f], f, &series)?;
            if self.rows_since_rotation[f] >= ROTATION_EVERY_ROWS {
                write_header(&mut feeds[f])?;
                self.summary.injected_rotations += 1;
                self.rows_since_rotation[f] = 0;
            }
        }
        Ok(())
    }

    /// `stress/shard-skew`: drive ids remapped onto the subset whose
    /// SplitMix64 hash lands on shard 0 at four shards (and therefore
    /// at two and one as well) — the whole population funnels into one
    /// shard while the others idle.
    fn shard_skew<W: Write>(&mut self, feeds: &mut [W]) -> io::Result<()> {
        let ds = self.dataset();
        let mut candidate = 0u32;
        for (i, spec) in ds.drives().iter().enumerate() {
            while splitmix64(u64::from(candidate)) & 3 != 0 {
                candidate += 1;
            }
            let mut skewed = spec.clone();
            skewed.id = DriveId(candidate);
            candidate += 1;
            let f = self.feed_of(i);
            let series = ds.series(&skewed);
            self.emit(&mut feeds[f], f, &series)?;
        }
        Ok(())
    }

    /// `adversarial/late-mimic`: failing drives whose deterioration
    /// window is squeezed to 24 hours — SMART values track healthy
    /// percentiles until the abrupt terminal plunge, starving the
    /// detector of lead time.
    fn late_mimic<W: Write>(&mut self, feeds: &mut [W]) -> io::Result<()> {
        let ds = self.dataset();
        for (i, spec) in ds.drives().iter().enumerate() {
            let f = self.feed_of(i);
            let series = match spec.class {
                DriveClass::Good => ds.series(spec),
                DriveClass::Failed { .. } => {
                    let mut mimic = spec.clone();
                    mimic.deterioration_hours = 24.0;
                    mimic.analog_attenuation = 1.0;
                    generate_series(&self.profile, self.manifest.seed, &mimic)
                }
            };
            self.emit(&mut feeds[f], f, &series)?;
        }
        Ok(())
    }

    /// `adversarial/threshold-oscillator`: the calibrated fleet plus
    /// good-*labelled* drives that alternate every
    /// [`OSCILLATION_HOURS`] between a healthy twin's values and a
    /// failing twin's — each flip can swing the per-sample class and
    /// thrash the voting window.
    fn threshold_oscillator<W: Write>(&mut self, feeds: &mut [W]) -> io::Result<()> {
        let ds = self.dataset();
        for (i, spec) in ds.drives().iter().enumerate() {
            let f = self.feed_of(i);
            let series = ds.series(spec);
            self.emit(&mut feeds[f], f, &series)?;
        }
        let n_drives = ds.drives().len();
        let n_osc = (n_drives / 4).max(4);
        let base_id = ds.drives().iter().map(|s| s.id.0).max().unwrap_or(0) + 1;
        for k in 0..n_osc {
            let id = DriveId(base_id + k as u32);
            let healthy = DriveSpec {
                id,
                class: DriveClass::Good,
                initial_age_hours: 20_000.0,
                failure_mode: None,
                deterioration_hours: 0.0,
                chronic_outlier: false,
                counter_scale: 1.0,
                analog_attenuation: 1.0,
                stream: 0x05C0_0000 + k as u64,
            };
            let failing = DriveSpec {
                class: DriveClass::Failed {
                    fail_hour: Hour(OBSERVATION_HOURS),
                },
                failure_mode: Some(FailureMode::MediaDefects),
                deterioration_hours: 480.0,
                stream: 0x0F01_0000 + k as u64,
                ..healthy.clone()
            };
            let healthy_series = generate_series(&self.profile, self.manifest.seed, &healthy);
            let failing_series = generate_series(&self.profile, self.manifest.seed, &failing);
            let failing_by_hour: BTreeMap<u32, [f32; NUM_ATTRIBUTES]> = failing_series
                .samples()
                .iter()
                .map(|s| (s.hour.0, s.values))
                .collect();
            // The failing twin only covers the pre-failure window;
            // outside the overlap the oscillator is simply healthy.
            let samples: Vec<SmartSample> = healthy_series
                .samples()
                .iter()
                .map(|s| {
                    let flip = (s.hour.0 / OSCILLATION_HOURS) % 2 == 1;
                    let values = if flip {
                        failing_by_hour.get(&s.hour.0).copied().unwrap_or(s.values)
                    } else {
                        s.values
                    };
                    SmartSample {
                        hour: s.hour,
                        values,
                    }
                })
                .collect();
            let oscillator = SmartSeries::new(id, DriveClass::Good, samples);
            let f = self.feed_of(n_drives + k);
            self.emit(&mut feeds[f], f, &oscillator)?;
        }
        Ok(())
    }

    /// `adversarial/quarantine-flood`: after every other drive, a burst
    /// of [`FLOOD_GARBAGE_ROWS`] distinct unparseable lines (they route
    /// by a hash of the line, spreading across shards); after *every*
    /// drive, its first and last rows are duplicated. Garbage must land
    /// in `parse_failures` (tripping the breaker), duplicates in
    /// `stale_rows`, and nothing else may move.
    fn quarantine_flood<W: Write>(&mut self, feeds: &mut [W]) -> io::Result<()> {
        let ds = self.dataset();
        for (i, spec) in ds.drives().iter().enumerate() {
            let f = self.feed_of(i);
            let series = ds.series(spec);
            self.emit(&mut feeds[f], f, &series)?;
            if let (Some(first), Some(last)) = (series.samples().first(), series.samples().last()) {
                for sample in [last, first] {
                    let dup = SmartSeries::new(series.drive, series.class, vec![*sample]);
                    write_series(&mut feeds[f], &dup)?;
                    self.summary.injected_stale += 1;
                }
            }
            if i % 2 == 0 {
                for _ in 0..FLOOD_GARBAGE_ROWS {
                    let token = splitmix64(self.manifest.seed ^ self.garbage_counter);
                    self.garbage_counter += 1;
                    writeln!(&mut feeds[f], "%%flood-{token:016x}%%")?;
                    self.summary.injected_garbage += 1;
                }
            }
        }
        Ok(())
    }

    /// `adversarial/firmware-cohort-drift`: the first half of the fleet
    /// is the calibrated population the incumbent was trained on; the
    /// second half is a newer firmware cohort whose attribute
    /// distributions drift linearly with cohort position — counters
    /// inflate toward [`DRIFT_COUNTER_SCALE`], analog signals attenuate
    /// toward [`DRIFT_ANALOG_FLOOR`] — with a small seed-keyed jitter so
    /// no two manifests drift identically. A model frozen on the first
    /// cohort's cut points decays on the second; one retrained on live
    /// drifted rows recovers.
    fn firmware_cohort_drift<W: Write>(&mut self, feeds: &mut [W]) -> io::Result<()> {
        let ds = self.dataset();
        let n = ds.drives().len();
        let cohort_start = n / 2;
        let cohort_len = (n - cohort_start).max(1);
        for (i, spec) in ds.drives().iter().enumerate() {
            let f = self.feed_of(i);
            let series = if i < cohort_start {
                ds.series(spec)
            } else {
                let progress = (i - cohort_start) as f64 / cohort_len as f64;
                let jitter = (splitmix64(self.manifest.seed ^ i as u64) % 1000) as f64 / 10_000.0;
                let drift = (progress + jitter).min(1.0);
                let mut shifted = spec.clone();
                shifted.counter_scale =
                    spec.counter_scale * (1.0 + drift * (DRIFT_COUNTER_SCALE - 1.0));
                shifted.analog_attenuation =
                    spec.analog_attenuation * (1.0 - drift * (1.0 - DRIFT_ANALOG_FLOOR));
                generate_series(&self.profile, self.manifest.seed, &shifted)
            };
            self.emit(&mut feeds[f], f, &series)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ScenarioManifest;
    use hdd_json::JsonCodec as _;

    fn tiny(scenario: Scenario) -> ScenarioManifest {
        ScenarioManifest::new(0xF1EE7, scenario, 0.001, 2)
    }

    #[test]
    fn same_manifest_regenerates_byte_identically() {
        for scenario in Scenario::ALL {
            let m = tiny(scenario);
            let first = fleet_fingerprint(&m).unwrap();
            let second = fleet_fingerprint(&m).unwrap();
            assert_eq!(first, second, "{}", scenario.label());
            assert!(
                first.iter().all(|&(_, len)| len > 0),
                "{}: a feed came out empty",
                scenario.label()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = fleet_fingerprint(&tiny(Scenario::CalibratedMix)).unwrap();
        let b = fleet_fingerprint(&ScenarioManifest::new(
            0xF1EE8,
            Scenario::CalibratedMix,
            0.001,
            2,
        ))
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn summaries_count_exactly_what_was_emitted() {
        for scenario in Scenario::ALL {
            let m = tiny(scenario);
            let mut feeds = vec![Vec::<u8>::new(), Vec::new()];
            let summary = generate_fleet(&m, &mut feeds).unwrap();
            let text: Vec<String> = feeds
                .iter()
                .map(|f| String::from_utf8(f.clone()).unwrap())
                .collect();
            let garbage: usize = text
                .iter()
                .map(|t| t.lines().filter(|l| l.starts_with("%%flood-")).count())
                .sum();
            assert_eq!(garbage, summary.injected_garbage, "{}", scenario.label());
            let headers: usize = text
                .iter()
                .map(|t| t.lines().filter(|l| l.starts_with("drive,")).count())
                .sum();
            // One leading header per feed; the rest are injected
            // rotations.
            assert_eq!(
                headers,
                m.n_feeds + summary.injected_rotations,
                "{}",
                scenario.label()
            );
            let data_rows: usize = text
                .iter()
                .map(|t| {
                    t.lines()
                        .filter(|l| !l.is_empty() && !l.starts_with("drive,"))
                        .count()
                })
                .sum();
            assert_eq!(data_rows, summary.engine_rows(), "{}", scenario.label());
            assert!(!summary.truth.is_empty(), "{}", scenario.label());
        }
    }

    #[test]
    fn shard_skew_ids_all_route_to_shard_zero() {
        let m = tiny(Scenario::ShardSkew);
        let mut feeds = vec![Vec::<u8>::new(), Vec::new()];
        let summary = generate_fleet(&m, &mut feeds).unwrap();
        for t in &summary.truth {
            assert_eq!(
                splitmix64(u64::from(t.drive)) & 3,
                0,
                "drive {} escapes shard 0",
                t.drive
            );
        }
    }

    #[test]
    fn oscillators_are_labelled_good() {
        let m = tiny(Scenario::ThresholdOscillator);
        let fingerprint_baseline = fleet_fingerprint(&tiny(Scenario::CalibratedMix)).unwrap();
        let fingerprint = fleet_fingerprint(&m).unwrap();
        assert_ne!(fingerprint, fingerprint_baseline);
        let mut feeds = vec![Vec::<u8>::new(), Vec::new()];
        let summary = generate_fleet(&m, &mut feeds).unwrap();
        let baseline = generate_fleet(
            &tiny(Scenario::CalibratedMix),
            &mut [Vec::<u8>::new(), Vec::new()],
        )
        .unwrap();
        let extra = summary.truth.len() - baseline.truth.len();
        assert!(extra >= 4, "expected oscillator drives, got {extra}");
        assert!(summary.truth[baseline.truth.len()..]
            .iter()
            .all(|t| t.fail_hour.is_none()));
    }

    #[test]
    fn firmware_cohort_drift_shifts_values_not_labels() {
        // The drift attacks the attribute distributions, not the ground
        // truth: the fleet has the same drives with the same fail hours
        // as the calibrated mix, but the emitted bytes differ (the
        // drifted cohort's SMART values moved).
        let m = tiny(Scenario::FirmwareCohortDrift);
        let baseline_m = tiny(Scenario::CalibratedMix);
        let mut feeds = vec![Vec::<u8>::new(), Vec::new()];
        let drifted = generate_fleet(&m, &mut feeds).unwrap();
        let baseline = generate_fleet(&baseline_m, &mut [Vec::<u8>::new(), Vec::new()]).unwrap();
        assert_eq!(drifted.truth, baseline.truth);
        assert_eq!(drifted.injected_stale, 0);
        assert_eq!(drifted.injected_garbage, 0);
        assert_ne!(
            fleet_fingerprint(&m).unwrap(),
            fleet_fingerprint(&baseline_m).unwrap()
        );
    }

    #[test]
    fn committed_manifest_regenerates_byte_identically() {
        // The committed manifest is the workload-side replay artifact:
        // regenerating from it must reproduce the recorded per-feed
        // fingerprints forever. A mismatch means the generator is no
        // longer a pure function of its manifest.
        let text = include_str!("../manifests/calibrated-mix.json");
        let value = hdd_json::parse(text).unwrap();
        let manifest = ScenarioManifest::from_json(&value).unwrap();
        let committed: Vec<String> = match value.field("fnv").unwrap() {
            hdd_json::Value::Arr(items) => items
                .iter()
                .map(|v| match v {
                    hdd_json::Value::Str(s) => s.clone(),
                    other => panic!("fnv entries must be strings, got {other:?}"),
                })
                .collect(),
            other => panic!("fnv must be an array, got {other:?}"),
        };
        let fresh: Vec<String> = fleet_fingerprint(&manifest)
            .unwrap()
            .into_iter()
            .map(|(hash, len)| format!("{hash:#018x}:{len}"))
            .collect();
        assert_eq!(fresh, committed);
    }
}
