//! The scenario taxonomy: three profiles, nine scenarios.
//!
//! A [`Profile`] names an operating regime; a [`Scenario`] is one
//! concrete fleet shape within it. Labels are stable CLI/manifest
//! identifiers — renaming one breaks committed manifests, so treat them
//! like a wire format.

/// An operating regime the gauntlet exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// The paper's calibrated healthy/failing mix — the baseline the
    /// detector was designed for.
    Expected,
    /// Transport-level pressure: bursts, correlated rack failures,
    /// rotation storms, shard-skewed drive populations.
    Stress,
    /// Detector-level attacks: SMART sequences shaped to evade or
    /// thrash the voting window, and quarantine floods aimed at the
    /// circuit breaker.
    Adversarial,
}

impl Profile {
    /// Every profile, in severity order.
    pub const ALL: [Profile; 3] = [Profile::Expected, Profile::Stress, Profile::Adversarial];

    /// Stable identifier used by the CLI and manifests.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Profile::Expected => "expected",
            Profile::Stress => "stress",
            Profile::Adversarial => "adversarial",
        }
    }

    /// Inverse of [`Profile::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Profile> {
        Profile::ALL.into_iter().find(|p| p.label() == label)
    }

    /// The scenarios this profile runs, in declaration order.
    #[must_use]
    pub fn scenarios(self) -> &'static [Scenario] {
        match self {
            Profile::Expected => &[Scenario::CalibratedMix],
            Profile::Stress => &[
                Scenario::HotFeedBurst,
                Scenario::RackFailures,
                Scenario::RotationStorm,
                Scenario::ShardSkew,
            ],
            Profile::Adversarial => &[
                Scenario::LateMimic,
                Scenario::ThresholdOscillator,
                Scenario::QuarantineFlood,
                Scenario::FirmwareCohortDrift,
            ],
        }
    }
}

/// One concrete fleet shape; see [`crate::gen`] for what each emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// The calibrated healthy/failing mix per the paper's SMART
    /// distributions, drives round-robined across feeds.
    CalibratedMix,
    /// Feed 0 re-emits the recent tail of half its drives — a hot feed
    /// replaying rows the engine has already committed (all stale).
    HotFeedBurst,
    /// Every fourth rack of eight drives fails within a tight window —
    /// correlated failures concentrating alarms in time.
    RackFailures,
    /// Mid-feed header lines (counted as rotations by ingest) plus a
    /// deliberately unbalanced drive split that stalls the watermark at
    /// the short feed.
    RotationStorm,
    /// Drive ids remapped so every drive routes to shard 0 at up to
    /// four shards — the worst-case population skew.
    ShardSkew,
    /// Failing drives whose SMART values track healthy percentiles
    /// until an abrupt terminal degradation window.
    LateMimic,
    /// Good-labelled drives oscillating between healthy and failing
    /// twins' values, maximizing churn in the voting window.
    ThresholdOscillator,
    /// Bursts of unparseable rows plus duplicate re-emissions, sized to
    /// push the quarantine circuit breaker into Degraded.
    QuarantineFlood,
    /// A late firmware cohort whose SMART attribute distributions shift
    /// gradually away from the training population (counters inflated,
    /// analog signals attenuated, keyed off the manifest seed): the
    /// frozen incumbent's detection decays on the drifted cohort, and
    /// only an online-retrained model recovers it.
    FirmwareCohortDrift,
}

impl Scenario {
    /// Every scenario, grouped by profile.
    pub const ALL: [Scenario; 9] = [
        Scenario::CalibratedMix,
        Scenario::HotFeedBurst,
        Scenario::RackFailures,
        Scenario::RotationStorm,
        Scenario::ShardSkew,
        Scenario::LateMimic,
        Scenario::ThresholdOscillator,
        Scenario::QuarantineFlood,
        Scenario::FirmwareCohortDrift,
    ];

    /// Stable identifier used by the CLI, manifests and bench rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scenario::CalibratedMix => "calibrated-mix",
            Scenario::HotFeedBurst => "hot-feed-burst",
            Scenario::RackFailures => "rack-failures",
            Scenario::RotationStorm => "rotation-storm",
            Scenario::ShardSkew => "shard-skew",
            Scenario::LateMimic => "late-mimic",
            Scenario::ThresholdOscillator => "threshold-oscillator",
            Scenario::QuarantineFlood => "quarantine-flood",
            Scenario::FirmwareCohortDrift => "firmware-cohort-drift",
        }
    }

    /// Inverse of [`Scenario::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.label() == label)
    }

    /// The profile this scenario belongs to.
    #[must_use]
    pub fn profile(self) -> Profile {
        match self {
            Scenario::CalibratedMix => Profile::Expected,
            Scenario::HotFeedBurst
            | Scenario::RackFailures
            | Scenario::RotationStorm
            | Scenario::ShardSkew => Profile::Stress,
            Scenario::LateMimic
            | Scenario::ThresholdOscillator
            | Scenario::QuarantineFlood
            | Scenario::FirmwareCohortDrift => Profile::Adversarial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in Profile::ALL {
            assert_eq!(Profile::from_label(p.label()), Some(p));
        }
        for s in Scenario::ALL {
            assert_eq!(Scenario::from_label(s.label()), Some(s));
        }
        assert_eq!(Profile::from_label("chaos"), None);
        assert_eq!(Scenario::from_label("bit-rot"), None);
    }

    #[test]
    fn every_scenario_is_listed_under_its_profile() {
        for s in Scenario::ALL {
            assert!(
                s.profile().scenarios().contains(&s),
                "{} missing from {}",
                s.label(),
                s.profile().label()
            );
        }
        let total: usize = Profile::ALL.iter().map(|p| p.scenarios().len()).sum();
        assert_eq!(total, Scenario::ALL.len());
    }
}
