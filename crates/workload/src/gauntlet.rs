//! The resilience gauntlet: generate, serve, score, assert.
//!
//! [`run`] executes every scenario of a profile. Per scenario it
//! generates the fleet into feed files, proves the generation is
//! byte-identical on regeneration (hash of the files vs a second pass
//! into a hashing sink), then drives the sharded serve topology over
//! the feeds at 1, 2 and 4 shards and scores the merged alarm sink
//! against ground truth: FDR, FAR, mean alarm lead time, p99 tick
//! latency and the degradation counters.
//!
//! Degradation must stay *bounded*, and the bounds are equalities
//! wherever the generator knows the exact injected count:
//!
//! * no queue evictions ever (the loop polls within `free()`),
//! * `stale_rows == injected_stale`, `parse_failures ==
//!   injected_garbage`, ingest rotations `== injected_rotations`,
//! * the breaker-transition counter matches the transition events the
//!   topology reported (the checkpointed counter is replay-exact),
//! * alarms may be suppressed only if a breaker actually left Healthy,
//! * the alarm sink is byte-identical across every shard count run.
//!
//! Any violation is a [`GauntletError::Degraded`], not a statistic.

use crate::gen::{fleet_fingerprint, generate_fleet, FleetSummary, FnvWriter};
use crate::manifest::ScenarioManifest;
use crate::scenario::{Profile, Scenario};
use hdd_bench::report::Report;
use hdd_cart::{Class, ClassSample, ClassificationTreeBuilder, TrainError};
use hdd_eval::{ModelError, SavedModel, VotingRule};
use hdd_fault::FaultClass;
use hdd_json::{JsonCodec as _, JsonError};
use hdd_lifecycle::{
    LifecycleConfig, LifecycleCounters, LifecycleError, LifecycleFaults, LifecycleManager,
    PromotionStep,
};
use hdd_par::{CancelToken, ThreadPool};
use hdd_serve::{EngineConfig, MultiFeedIngest, ServeTopology};
use hdd_smart::rng::DeterministicRng;
use hdd_smart::{DatasetGenerator, FamilyProfile, SmartSeries};
use hdd_stats::FeatureSet;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Shard-queue capacity during gauntlet runs; the loop never polls more
/// than `free()`, so this only bounds memory, never drops rows.
const QUEUE_CAPACITY: usize = 2048;
/// Training window (hours before failure) for the inline model.
const TRAIN_WINDOW_HOURS: u32 = 168;
/// Salt separating the training fleet's seed from the scenario seed,
/// so the model never trains on the exact fleet it is scored against.
const TRAIN_SEED_SALT: u64 = 0x7EAC_4ED5;

/// Online-retraining knobs for a gauntlet run (`None` in
/// [`GauntletConfig::retrain`] means the model stays frozen).
#[derive(Debug, Clone)]
pub struct RetrainSpec {
    /// Committed rows between training attempts.
    pub retrain_rows: usize,
    /// Rows a candidate must shadow-score before the gate judges it.
    pub shadow_rows: usize,
    /// Rows of post-promotion probation before a promotion is final.
    pub probation_rows: usize,
    /// Seeded lifecycle fault to inject, if any.
    pub fault: Option<FaultClass>,
}

impl RetrainSpec {
    /// Defaults sized so the gauntlet fleets retrain and judge at least
    /// once well before the feeds drain.
    #[must_use]
    pub fn new(fault: Option<FaultClass>) -> Self {
        RetrainSpec {
            retrain_rows: 2048,
            shadow_rows: 1024,
            probation_rows: 1024,
            fault,
        }
    }

    fn faults(&self) -> LifecycleFaults {
        let mut faults = LifecycleFaults::default();
        match self.fault {
            Some(FaultClass::TrainerPanic) => faults.trainer_panic = Some(1),
            Some(FaultClass::PoisonedBuffer) => faults.poison_buffer = Some(1),
            Some(FaultClass::CrashDuringPromotion) => {
                faults.crash_at_step = Some(PromotionStep::AfterMarker);
            }
            Some(FaultClass::RegressingCandidate) => faults.regressing_candidate = true,
            _ => {}
        }
        faults
    }
}

/// Everything a gauntlet run needs beyond the scenario manifests.
#[derive(Debug, Clone)]
pub struct GauntletConfig {
    /// Root seed shared by every scenario manifest.
    pub seed: u64,
    /// Which profile's scenarios to run.
    pub profile: Profile,
    /// Run only this scenario instead of the whole profile.
    pub scenario: Option<Scenario>,
    /// Highest shard count exercised; every power of two up to it runs
    /// and all runs must produce byte-identical alarm sinks.
    pub max_shards: usize,
    /// Fleet size as a fraction of the paper's family-W population.
    pub scale: f64,
    /// Feed files per scenario.
    pub n_feeds: usize,
    /// Rows offered to the topology per tick.
    pub rate: usize,
    /// Voting-window size for the detector.
    pub voters: usize,
    /// Per-shard quarantine circuit-breaker ceiling.
    pub max_quarantine: f64,
    /// Directory for generated feeds and per-scenario manifests.
    pub work_dir: PathBuf,
    /// Serve an existing model file instead of training inline.
    pub model: Option<PathBuf>,
    /// Run the online retraining lifecycle alongside scoring.
    pub retrain: Option<RetrainSpec>,
}

impl GauntletConfig {
    /// Defaults matching `hddpred gauntlet`.
    #[must_use]
    pub fn new(seed: u64, profile: Profile, work_dir: PathBuf) -> Self {
        GauntletConfig {
            seed,
            profile,
            scenario: None,
            max_shards: 4,
            scale: 0.004,
            n_feeds: 2,
            rate: 512,
            voters: 11,
            max_quarantine: 0.1,
            work_dir,
            model: None,
            retrain: None,
        }
    }
}

/// Why a gauntlet run failed.
#[derive(Debug)]
pub enum GauntletError {
    /// Reading or writing a file failed at the OS level.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The model file was rejected.
    Model {
        /// The model file.
        path: String,
        /// The underlying error.
        source: ModelError,
    },
    /// Inline training could not produce a model.
    Train(TrainError),
    /// A replay manifest did not parse.
    Manifest {
        /// The manifest file.
        path: String,
        /// The underlying error.
        source: JsonError,
    },
    /// A bounded-degradation assertion failed — the serve stack
    /// degraded beyond what the scenario injected.
    Degraded(String),
    /// The online retraining lifecycle failed outside its containment.
    Lifecycle(LifecycleError),
}

impl fmt::Display for GauntletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GauntletError::Io { path, source } => write!(f, "{path}: {source}"),
            GauntletError::Model { path, source } => write!(f, "{path}: {source}"),
            GauntletError::Train(source) => write!(f, "gauntlet training failed: {source}"),
            GauntletError::Manifest { path, source } => write!(f, "{path}: {source}"),
            GauntletError::Degraded(msg) => write!(f, "gauntlet assertion failed: {msg}"),
            GauntletError::Lifecycle(source) => write!(f, "gauntlet lifecycle failed: {source}"),
        }
    }
}

impl std::error::Error for GauntletError {}

/// What the online retraining lifecycle did during one run.
#[derive(Debug, Clone)]
pub struct LifecycleOutcome {
    /// Lifecycle counters at the end of the run.
    pub counters: LifecycleCounters,
    /// Final phase label.
    pub phase: &'static str,
    /// Fingerprint of the live model file after the run.
    pub live_fingerprint: u64,
    /// Rows the buffer quarantined for non-finite features.
    pub poisoned_rows: usize,
    /// FDR of the frozen incumbent over this fleet (the run's own
    /// score — promotions only apply at the final quiesce).
    pub incumbent_fdr: f64,
    /// FDR of the live post-run model rescored over the same fleet;
    /// equals `incumbent_fdr` when nothing was promoted.
    pub post_promotion_fdr: f64,
}

/// One scenario scored at one shard count.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Shard count of this run.
    pub n_shards: usize,
    /// The merged alarm sink, exactly as `hddpred serve` would write it.
    pub sink: String,
    /// Failed-drive detection rate (detected failed / failed).
    pub fdr: f64,
    /// False alarm rate (alarmed good / good).
    pub far: f64,
    /// Mean hours between first alarm and failure over detected drives.
    pub lead_hours: f64,
    /// Alarm lines emitted.
    pub alarms: usize,
    /// Sum of tick wall times, milliseconds.
    pub wall_ms: f64,
    /// 99th-percentile tick wall time, milliseconds.
    pub p99_tick_ms: f64,
    /// Data rows the engines saw.
    pub rows_seen: usize,
    /// Rows counted stale (late arrivals and duplicates).
    pub stale_rows: usize,
    /// Rows quarantined as unusable.
    pub quarantined_rows: usize,
    /// Rows evicted from shard queues (must be zero).
    pub dropped_rows: usize,
    /// Alarm decisions suppressed while a breaker was degraded.
    pub alarms_suppressed: usize,
    /// Circuit-breaker state transitions across all shards.
    pub breaker_transitions: usize,
    /// Online-retraining results when [`GauntletConfig::retrain`] is set.
    pub lifecycle: Option<LifecycleOutcome>,
}

/// Run every scenario the config selects; see the module docs.
///
/// # Errors
///
/// Returns [`GauntletError`] on I/O or model failure, or when a
/// bounded-degradation assertion does not hold.
pub fn run(config: &GauntletConfig) -> Result<Vec<ScenarioOutcome>, GauntletError> {
    let model = prepare_model(config)?;
    let features = FeatureSet::critical13();
    let scenarios: Vec<Scenario> = match config.scenario {
        Some(s) => vec![s],
        None => config.profile.scenarios().to_vec(),
    };
    let mut outcomes = Vec::new();
    for scenario in scenarios {
        let manifest = ScenarioManifest::new(config.seed, scenario, config.scale, config.n_feeds);
        persist_manifest(config, &manifest)?;
        outcomes.extend(run_manifest(config, &manifest, &model, &features)?);
    }
    Ok(outcomes)
}

/// Replay one committed manifest (`hddpred gauntlet --manifest`).
///
/// # Errors
///
/// As [`run`].
pub fn replay(
    config: &GauntletConfig,
    manifest: &ScenarioManifest,
) -> Result<Vec<ScenarioOutcome>, GauntletError> {
    let model = prepare_model(config)?;
    let features = FeatureSet::critical13();
    run_manifest(config, manifest, &model, &features)
}

/// Load a manifest file written by [`run`] (or committed to the repo).
///
/// # Errors
///
/// Returns [`GauntletError::Io`] / [`GauntletError::Manifest`] when the
/// file cannot be read or decoded.
pub fn load_manifest(path: &Path) -> Result<ScenarioManifest, GauntletError> {
    let text = std::fs::read_to_string(path).map_err(|source| GauntletError::Io {
        path: path.display().to_string(),
        source,
    })?;
    hdd_json::parse(&text)
        .and_then(|v| ScenarioManifest::from_json(&v))
        .map_err(|source| GauntletError::Manifest {
            path: path.display().to_string(),
            source,
        })
}

/// Fold outcomes into the benchmark report shape
/// (`op` = scenario label, `n_threads` = shard count).
#[must_use]
pub fn to_report(outcomes: &[ScenarioOutcome]) -> Report {
    let mut report = Report::new();
    for o in outcomes {
        let mut metrics = vec![
            ("fdr", o.fdr),
            ("far", o.far),
            ("lead_hours", o.lead_hours),
            ("p99_tick_ms", o.p99_tick_ms),
            ("alarms", o.alarms as f64),
            ("rows_seen", o.rows_seen as f64),
            ("stale_rows", o.stale_rows as f64),
            ("quarantined_rows", o.quarantined_rows as f64),
            ("dropped_rows", o.dropped_rows as f64),
            ("alarms_suppressed", o.alarms_suppressed as f64),
            ("breaker_transitions", o.breaker_transitions as f64),
        ];
        if let Some(lc) = &o.lifecycle {
            metrics.extend([
                ("incumbent_fdr", lc.incumbent_fdr),
                ("post_promotion_fdr", lc.post_promotion_fdr),
                ("promotions", lc.counters.promotions as f64),
                ("rollbacks", lc.counters.rollbacks as f64),
                ("gate_refusals", lc.counters.gate_refusals as f64),
                ("gate_clearances", lc.counters.gate_clearances as f64),
                ("trainer_panics", lc.counters.trainer_panics as f64),
            ]);
        }
        report.push_with(o.scenario.label(), o.n_shards, o.wall_ms, 1.0, &metrics);
    }
    report
}

/// Train the inline model on a calibrated fleet derived from (but not
/// equal to) the scenario seed, mirroring `hddpred train`'s sampling.
///
/// # Errors
///
/// Returns [`GauntletError::Train`] when the tree cannot be built.
pub fn train_model(seed: u64, scale: f64) -> Result<SavedModel, GauntletError> {
    let dataset = DatasetGenerator::new(FamilyProfile::w().scaled(scale), seed).generate();
    let features = FeatureSet::critical13();
    let series: Vec<SmartSeries> = dataset
        .drives()
        .iter()
        .map(|spec| dataset.series(spec))
        .collect();
    let rng = DeterministicRng::new(seed ^ 0x007E_A1CB);
    let mut samples = Vec::new();
    for (d, s) in series.iter().enumerate() {
        match s.class.fail_hour() {
            None => {
                // Three random healthy samples per good drive.
                for k in 0..3u64 {
                    for attempt in 0..8u64 {
                        let u = rng.uniform(d as u64 ^ (attempt << 32), k);
                        let idx = (u * s.len() as f64) as usize;
                        if let Some(f) = features.extract(s, idx) {
                            samples.push(ClassSample::new(f, Class::Good));
                            break;
                        }
                    }
                }
            }
            Some(fail) => {
                let start = fail - TRAIN_WINDOW_HOURS;
                for idx in 0..s.len() {
                    if s.samples()[idx].hour < start {
                        continue;
                    }
                    if let Some(f) = features.extract(s, idx) {
                        samples.push(ClassSample::new(f, Class::Failed));
                    }
                }
            }
        }
    }
    let tree = ClassificationTreeBuilder::new()
        .build(&samples)
        .map_err(GauntletError::Train)?;
    Ok(SavedModel::from(tree.compile()))
}

fn prepare_model(config: &GauntletConfig) -> Result<Arc<SavedModel>, GauntletError> {
    let features = FeatureSet::critical13();
    let model = match &config.model {
        Some(path) => SavedModel::load_expecting(path, features.len()).map_err(|source| {
            GauntletError::Model {
                path: path.display().to_string(),
                source,
            }
        })?,
        None => train_model(config.seed ^ TRAIN_SEED_SALT, config.scale)?,
    };
    Ok(Arc::new(model))
}

fn io_at<P: AsRef<Path>>(path: P) -> impl Fn(io::Error) -> GauntletError {
    let path = path.as_ref().display().to_string();
    move |source| GauntletError::Io {
        path: path.clone(),
        source,
    }
}

fn persist_manifest(
    config: &GauntletConfig,
    manifest: &ScenarioManifest,
) -> Result<(), GauntletError> {
    std::fs::create_dir_all(&config.work_dir).map_err(io_at(&config.work_dir))?;
    let path = config
        .work_dir
        .join(format!("manifest-{}.json", manifest.scenario.label()));
    let mut text = hdd_json::to_string(&manifest.to_json());
    text.push('\n');
    std::fs::write(&path, text).map_err(io_at(&path))
}

fn run_manifest(
    config: &GauntletConfig,
    manifest: &ScenarioManifest,
    model: &Arc<SavedModel>,
    features: &FeatureSet,
) -> Result<Vec<ScenarioOutcome>, GauntletError> {
    std::fs::create_dir_all(&config.work_dir).map_err(io_at(&config.work_dir))?;
    let label = manifest.scenario.label();
    let paths: Vec<PathBuf> = (0..manifest.n_feeds)
        .map(|f| config.work_dir.join(format!("{label}-feed-{f}.csv")))
        .collect();
    let summary = {
        let mut feeds = Vec::with_capacity(paths.len());
        for path in &paths {
            feeds.push(BufWriter::new(File::create(path).map_err(io_at(path))?));
        }
        generate_fleet(manifest, &mut feeds).map_err(io_at(&config.work_dir))?
    };

    // Determinism gate: a second generation pass into hashing sinks
    // must fingerprint exactly what landed on disk.
    let expected = fleet_fingerprint(manifest).map_err(io_at(&config.work_dir))?;
    for (path, (hash, len)) in paths.iter().zip(&expected) {
        let mut file = File::open(path).map_err(io_at(path))?;
        let mut sink = FnvWriter::new();
        io::copy(&mut file, &mut sink).map_err(io_at(path))?;
        if (sink.hash(), sink.len()) != (*hash, *len) {
            return Err(GauntletError::Degraded(format!(
                "{label}: regeneration is not byte-identical for {} \
                 (got {:#018x}:{}, expected {hash:#018x}:{len})",
                path.display(),
                sink.hash(),
                sink.len(),
            )));
        }
    }

    let mut outcomes = Vec::new();
    for n_shards in [1usize, 2, 4] {
        if n_shards > config.max_shards {
            break;
        }
        outcomes.push(drive(
            config, manifest, &summary, model, features, n_shards, &paths,
        )?);
    }
    if let Some((first, rest)) = outcomes.split_first() {
        for o in rest {
            if o.sink != first.sink {
                return Err(GauntletError::Degraded(format!(
                    "{label}: alarm sink at {} shard(s) differs from the \
                     serial run ({} vs {} alarm lines)",
                    o.n_shards, o.alarms, first.alarms,
                )));
            }
            // The committed-event stream is shard-count invariant, so
            // the whole lifecycle — training timing, candidate bytes,
            // gate verdicts — must replay identically too.
            if let (Some(a), Some(b)) = (&first.lifecycle, &o.lifecycle) {
                if a.live_fingerprint != b.live_fingerprint || a.counters != b.counters {
                    return Err(GauntletError::Degraded(format!(
                        "{label}: lifecycle diverged across shard counts \
                         (live model {:016x} at 1 shard vs {:016x} at {})",
                        a.live_fingerprint, b.live_fingerprint, o.n_shards,
                    )));
                }
            }
        }
    }
    Ok(outcomes)
}

/// Time one closure, returning its result and the wall milliseconds.
fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    // audit:allow(R1) reason="gauntlet tick latency is observability-only; the measured value is reported in BENCH_gauntlet.json and never feeds back into engine state or alarm output"
    let start = std::time::Instant::now();
    let out = f();
    // audit:allow(R1) reason="gauntlet tick latency is observability-only; the measured value is reported in BENCH_gauntlet.json and never feeds back into engine state or alarm output"
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (out, ms)
}

fn ensure(cond: bool, label: &str, msg: impl FnOnce() -> String) -> Result<(), GauntletError> {
    if cond {
        Ok(())
    } else {
        Err(GauntletError::Degraded(format!("{label}: {}", msg())))
    }
}

#[allow(clippy::too_many_lines)]
fn drive(
    config: &GauntletConfig,
    manifest: &ScenarioManifest,
    summary: &FleetSummary,
    model: &Arc<SavedModel>,
    features: &FeatureSet,
    n_shards: usize,
    paths: &[PathBuf],
) -> Result<ScenarioOutcome, GauntletError> {
    let label = manifest.scenario.label();
    let mut topology = ServeTopology::new(
        model,
        features,
        EngineConfig::new(config.voters, VotingRule::Majority, config.max_quarantine),
        n_shards,
        paths.len(),
        QUEUE_CAPACITY,
    )
    .map_err(|source| GauntletError::Model {
        path: "<gauntlet model>".to_string(),
        source,
    })?;
    let mut ingest = MultiFeedIngest::new(paths, topology.router());
    let pool = ThreadPool::global();
    let mut sink = String::new();
    let mut tick_times = Vec::new();
    let mut transitions = 0usize;
    let mut rotations = 0usize;
    let mut manager = match &config.retrain {
        Some(spec) => {
            let dir = config
                .work_dir
                .join(format!("lifecycle-{label}-{n_shards}"));
            std::fs::create_dir_all(&dir).map_err(io_at(&dir))?;
            let model_path = dir.join("model.bin");
            model
                .save(&model_path)
                .map_err(|source| GauntletError::Model {
                    path: model_path.display().to_string(),
                    source,
                })?;
            let mut lc = LifecycleConfig::new(config.voters, VotingRule::Majority);
            lc.retrain_rows = spec.retrain_rows;
            lc.shadow_rows = spec.shadow_rows;
            lc.probation_rows = spec.probation_rows;
            topology.set_record_events(true);
            Some(LifecycleManager::new(lc, model_path, spec.faults()))
        }
        None => None,
    };

    loop {
        let budget = config.rate.min(topology.free());
        let polled = ingest.poll(budget);
        if let Some((f, source)) = polled.errors.into_iter().next() {
            return Err(GauntletError::Io {
                path: paths[f].display().to_string(),
                source,
            });
        }
        rotations += polled.rotations;
        let evicted = topology.enqueue(polled.routed);
        ensure(evicted == 0, label, || {
            format!("{evicted} row(s) evicted from shard queues at {n_shards} shard(s)")
        })?;
        let token = CancelToken::new();
        let (ticked, ms) =
            time_ms(|| topology.tick(&pool, &token, &ingest.cursors(), ingest.watermark()));
        let tick =
            ticked.map_err(|e| GauntletError::Degraded(format!("{label}: scoring failed: {e}")))?;
        tick_times.push(ms);
        transitions += tick.transitions.len();
        for alarm in &tick.alarms {
            let _ = writeln_alarm(&mut sink, &alarm.alarm.to_string());
        }
        if let Some(manager) = manager.as_mut() {
            let _notes = manager.consume(
                &pool,
                &tick.events,
                tick.alarms.len(),
                tick.transitions.len(),
                topology.merge_state().emitted(),
            );
        }
        if polled.lines_read == 0 && !topology.has_queued() {
            let flushed = topology.flush_pending();
            for alarm in &flushed {
                let _ = writeln_alarm(&mut sink, &alarm.alarm.to_string());
            }
            if let Some(manager) = manager.as_mut() {
                let events = topology.flush_events();
                let _notes = manager.consume(
                    &pool,
                    &events,
                    flushed.len(),
                    0,
                    topology.merge_state().emitted(),
                );
            }
            break;
        }
    }

    let stats = topology.stats();
    let dropped = topology.dropped();
    ensure(dropped == 0, label, || {
        format!("{dropped} row(s) dropped at {n_shards} shard(s)")
    })?;
    ensure(stats.rows_seen == summary.engine_rows(), label, || {
        format!(
            "engines saw {} rows, generator emitted {}",
            stats.rows_seen,
            summary.engine_rows()
        )
    })?;
    ensure(stats.stale_rows == summary.injected_stale, label, || {
        format!(
            "{} stale row(s) counted, {} injected",
            stats.stale_rows, summary.injected_stale
        )
    })?;
    ensure(
        stats.parse_failures == summary.injected_garbage,
        label,
        || {
            format!(
                "{} parse failure(s) counted, {} garbage row(s) injected",
                stats.parse_failures, summary.injected_garbage
            )
        },
    )?;
    ensure(
        stats.quarantined_rows() == summary.injected_garbage,
        label,
        || {
            format!(
                "{} quarantined row(s), only {} injected — clean rows were quarantined",
                stats.quarantined_rows(),
                summary.injected_garbage
            )
        },
    )?;
    ensure(rotations == summary.injected_rotations, label, || {
        format!(
            "{rotations} rotation(s) observed, {} injected",
            summary.injected_rotations
        )
    })?;
    ensure(stats.breaker_transitions == transitions, label, || {
        format!(
            "checkpointed transition counter says {}, topology reported {transitions}",
            stats.breaker_transitions
        )
    })?;
    // Alarms may only be lost while a breaker is Degraded — suppression
    // without any state transition would mean alarms vanish silently.
    ensure(
        stats.alarms_suppressed == 0 || transitions >= 1,
        label,
        || {
            format!(
                "{} alarm(s) suppressed but no breaker ever left Healthy",
                stats.alarms_suppressed
            )
        },
    )?;
    if manifest.scenario == Scenario::QuarantineFlood {
        ensure(transitions >= 1, label, || {
            "the flood never tripped a circuit breaker".to_string()
        })?;
    }

    let (fdr, far, lead_hours, alarms) = score_sink(&sink, summary);
    let lifecycle = match manager {
        None => None,
        Some(mut manager) => {
            // The feeds are drained, queues empty and alarms flushed —
            // the quiesce at which staged swaps are allowed to land.
            while manager.has_staged_swap() {
                if let Some(next) = manager.apply_staged().map_err(GauntletError::Lifecycle)? {
                    topology
                        .swap_model(&next)
                        .map_err(|source| GauntletError::Model {
                            path: manager.store().model_path().display().to_string(),
                            source,
                        })?;
                }
            }
            let live_fingerprint = manager
                .store()
                .live_fingerprint()
                .map_err(|e| GauntletError::Lifecycle(e.into()))?;
            let counters = manager.counters().clone();
            let post_promotion_fdr = if counters.promotions > 0 {
                let promoted = Arc::new(SavedModel::load(manager.store().model_path()).map_err(
                    |source| GauntletError::Model {
                        path: manager.store().model_path().display().to_string(),
                        source,
                    },
                )?);
                rescore(config, &promoted, features, paths, summary)?
            } else {
                fdr
            };
            Some(LifecycleOutcome {
                counters,
                phase: manager.phase().label(),
                live_fingerprint,
                poisoned_rows: manager.buffer().poisoned_rows(),
                incumbent_fdr: fdr,
                post_promotion_fdr,
            })
        }
    };
    if let (Some(spec), Some(lc)) = (&config.retrain, &lifecycle) {
        assert_lifecycle(label, manifest.scenario, spec, lc)?;
    }
    let wall_ms = tick_times.iter().sum();
    Ok(ScenarioOutcome {
        scenario: manifest.scenario,
        n_shards,
        sink,
        fdr,
        far,
        lead_hours,
        alarms,
        wall_ms,
        p99_tick_ms: p99(&tick_times),
        rows_seen: stats.rows_seen,
        stale_rows: stats.stale_rows,
        quarantined_rows: stats.quarantined_rows(),
        dropped_rows: dropped,
        alarms_suppressed: stats.alarms_suppressed,
        breaker_transitions: stats.breaker_transitions,
        lifecycle,
    })
}

/// Score the same feeds again with `model` on one shard, no lifecycle
/// and no degradation assertions — used to measure what a freshly
/// promoted model would have detected on the fleet the incumbent just
/// served.
fn rescore(
    config: &GauntletConfig,
    model: &Arc<SavedModel>,
    features: &FeatureSet,
    paths: &[PathBuf],
    summary: &FleetSummary,
) -> Result<f64, GauntletError> {
    let mut topology = ServeTopology::new(
        model,
        features,
        EngineConfig::new(config.voters, VotingRule::Majority, config.max_quarantine),
        1,
        paths.len(),
        QUEUE_CAPACITY,
    )
    .map_err(|source| GauntletError::Model {
        path: "<promoted model>".to_string(),
        source,
    })?;
    let mut ingest = MultiFeedIngest::new(paths, topology.router());
    let pool = ThreadPool::global();
    let mut sink = String::new();
    loop {
        let budget = config.rate.min(topology.free());
        let polled = ingest.poll(budget);
        if let Some((f, source)) = polled.errors.into_iter().next() {
            return Err(GauntletError::Io {
                path: paths[f].display().to_string(),
                source,
            });
        }
        topology.enqueue(polled.routed);
        let token = CancelToken::new();
        let tick = topology
            .tick(&pool, &token, &ingest.cursors(), ingest.watermark())
            .map_err(|e| GauntletError::Degraded(format!("rescore failed: {e}")))?;
        for alarm in &tick.alarms {
            let _ = writeln_alarm(&mut sink, &alarm.alarm.to_string());
        }
        if polled.lines_read == 0 && !topology.has_queued() {
            for alarm in topology.flush_pending() {
                let _ = writeln_alarm(&mut sink, &alarm.alarm.to_string());
            }
            break;
        }
    }
    let (fdr, _, _, _) = score_sink(&sink, summary);
    Ok(fdr)
}

/// Scenario- and fault-specific lifecycle assertions: injected faults
/// must land where the containment says they do, and the drift scenario
/// must actually drive a promotion that recovers detection.
fn assert_lifecycle(
    label: &str,
    scenario: Scenario,
    spec: &RetrainSpec,
    lc: &LifecycleOutcome,
) -> Result<(), GauntletError> {
    let c = &lc.counters;
    match spec.fault {
        Some(FaultClass::TrainerPanic) => {
            ensure(c.trainer_panics >= 1, label, || {
                "the seeded trainer panic never fired".to_string()
            })?;
        }
        Some(FaultClass::PoisonedBuffer) => {
            ensure(lc.poisoned_rows >= 1, label, || {
                "the poisoned row was not quarantined by the buffer".to_string()
            })?;
        }
        Some(FaultClass::RegressingCandidate) => {
            ensure(c.promotions == 0, label, || {
                format!(
                    "a label-inverted candidate was promoted ({} promotion(s))",
                    c.promotions
                )
            })?;
            ensure(c.gate_refusals >= 1, label, || {
                "the gate never judged (and refused) the regressing candidate".to_string()
            })?;
        }
        Some(FaultClass::CrashDuringPromotion) => {
            // Recovery must either complete the staged promotion (the
            // candidate was intact on disk) or leave the incumbent —
            // promotions only count when the live model matched the
            // candidate afterwards, so a cleared gate must end promoted.
            ensure(c.gate_clearances == 0 || c.promotions >= 1, label, || {
                "crash recovery lost a cleared promotion".to_string()
            })?;
        }
        _ => {}
    }
    if scenario == Scenario::FirmwareCohortDrift
        && matches!(spec.fault, None | Some(FaultClass::CrashDuringPromotion))
    {
        ensure(c.gate_clearances >= 1 && c.promotions >= 1, label, || {
            format!(
                "the drifted cohort never drove a promotion \
                 (clearances {}, promotions {}, refusals {})",
                c.gate_clearances, c.promotions, c.gate_refusals
            )
        })?;
        ensure(lc.post_promotion_fdr >= lc.incumbent_fdr, label, || {
            format!(
                "the promoted model did not recover detection \
                 ({:.3} post-promotion vs {:.3} incumbent)",
                lc.post_promotion_fdr, lc.incumbent_fdr
            )
        })?;
    }
    Ok(())
}

/// Append one `drive,hour` alarm line; writing to a `String` cannot
/// fail, the `Result` only satisfies `fmt::Write`.
fn writeln_alarm(sink: &mut String, line: &str) -> fmt::Result {
    use fmt::Write as _;
    writeln!(sink, "{line}")
}

/// FDR, FAR, mean lead hours and alarm count from a sink vs the truth.
fn score_sink(sink: &str, summary: &FleetSummary) -> (f64, f64, f64, usize) {
    let mut first_alarm: BTreeMap<u32, u32> = BTreeMap::new();
    let mut alarms = 0usize;
    for line in sink.lines() {
        alarms += 1;
        if let Some((drive, hour)) = line.split_once(',') {
            if let (Ok(d), Ok(h)) = (drive.parse::<u32>(), hour.parse::<u32>()) {
                first_alarm.entry(d).or_insert(h);
            }
        }
    }
    let mut failed = 0usize;
    let mut detected = 0usize;
    let mut good = 0usize;
    let mut false_alarms = 0usize;
    let mut lead_sum = 0.0f64;
    for t in &summary.truth {
        match t.fail_hour {
            Some(fail) => {
                failed += 1;
                if let Some(&hour) = first_alarm.get(&t.drive) {
                    detected += 1;
                    lead_sum += f64::from(fail) - f64::from(hour);
                }
            }
            None => {
                good += 1;
                if first_alarm.contains_key(&t.drive) {
                    false_alarms += 1;
                }
            }
        }
    }
    let fdr = if failed == 0 {
        0.0
    } else {
        detected as f64 / failed as f64
    };
    let far = if good == 0 {
        0.0
    } else {
        false_alarms as f64 / good as f64
    };
    let lead = if detected == 0 {
        0.0
    } else {
        lead_sum / detected as f64
    };
    (fdr, far, lead, alarms)
}

/// The 99th-percentile of `ticks` (nearest-rank), 0 for an empty run.
fn p99(ticks: &[f64]) -> f64 {
    if ticks.is_empty() {
        return 0.0;
    }
    let mut sorted = ticks.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::FleetTruth;

    fn truth(entries: &[(u32, Option<u32>)]) -> FleetSummary {
        FleetSummary {
            truth: entries
                .iter()
                .map(|&(drive, fail_hour)| FleetTruth { drive, fail_hour })
                .collect(),
            ..FleetSummary::default()
        }
    }

    #[test]
    fn score_sink_computes_fdr_far_and_lead() {
        let summary = truth(&[(0, None), (1, None), (2, Some(1000)), (3, Some(900))]);
        let sink = "2,940\n1,500\n2,950\n";
        let (fdr, far, lead, alarms) = score_sink(sink, &summary);
        assert_eq!(alarms, 3);
        assert!((fdr - 0.5).abs() < 1e-12);
        assert!((far - 0.5).abs() < 1e-12);
        assert!((lead - 60.0).abs() < 1e-12, "first alarm wins: {lead}");
    }

    #[test]
    fn empty_classes_do_not_divide_by_zero() {
        let (fdr, far, lead, alarms) = score_sink("", &truth(&[]));
        assert_eq!((fdr, far, lead, alarms), (0.0, 0.0, 0.0, 0));
    }

    #[test]
    fn p99_is_nearest_rank() {
        assert_eq!(p99(&[]), 0.0);
        assert_eq!(p99(&[5.0]), 5.0);
        let ticks: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p99(&ticks), 99.0);
        let ticks: Vec<f64> = (1..=200).map(f64::from).collect();
        assert_eq!(p99(&ticks), 198.0);
    }

    #[test]
    fn report_rows_carry_the_gauntlet_columns() {
        let outcome = ScenarioOutcome {
            scenario: Scenario::CalibratedMix,
            n_shards: 2,
            sink: String::new(),
            fdr: 0.5,
            far: 0.01,
            lead_hours: 100.0,
            alarms: 3,
            wall_ms: 12.0,
            p99_tick_ms: 0.7,
            rows_seen: 1000,
            stale_rows: 0,
            quarantined_rows: 0,
            dropped_rows: 0,
            alarms_suppressed: 0,
            breaker_transitions: 0,
            lifecycle: None,
        };
        let text = hdd_json::to_string(&to_report(std::slice::from_ref(&outcome)).to_json());
        for column in [
            "\"fdr\"",
            "\"far\"",
            "\"p99_tick_ms\"",
            "\"dropped_rows\"",
            "\"lead_hours\"",
            "\"breaker_transitions\"",
        ] {
            assert!(text.contains(column), "missing {column} in {text}");
        }
        assert!(
            !text.contains("incumbent_fdr"),
            "frozen runs gained lifecycle columns"
        );

        let mut retrained = outcome;
        retrained.lifecycle = Some(LifecycleOutcome {
            counters: LifecycleCounters::default(),
            phase: "probation",
            live_fingerprint: 0xDEAD_BEEF,
            poisoned_rows: 0,
            incumbent_fdr: 0.4,
            post_promotion_fdr: 0.8,
        });
        let text = hdd_json::to_string(&to_report(&[retrained]).to_json());
        for column in [
            "\"incumbent_fdr\"",
            "\"post_promotion_fdr\"",
            "\"promotions\"",
            "\"rollbacks\"",
            "\"gate_refusals\"",
        ] {
            assert!(text.contains(column), "missing {column} in {text}");
        }
    }

    #[test]
    fn lifecycle_faults_map_onto_seeded_injections() {
        assert_eq!(
            RetrainSpec::new(Some(FaultClass::TrainerPanic)).faults(),
            LifecycleFaults {
                trainer_panic: Some(1),
                ..LifecycleFaults::default()
            }
        );
        assert_eq!(
            RetrainSpec::new(Some(FaultClass::CrashDuringPromotion)).faults(),
            LifecycleFaults {
                crash_at_step: Some(PromotionStep::AfterMarker),
                ..LifecycleFaults::default()
            }
        );
        assert!(
            RetrainSpec::new(Some(FaultClass::RegressingCandidate))
                .faults()
                .regressing_candidate
        );
        // Non-lifecycle fault classes leave the lifecycle untouched.
        assert_eq!(
            RetrainSpec::new(Some(FaultClass::NanValue)).faults(),
            LifecycleFaults::default()
        );
        assert_eq!(RetrainSpec::new(None).faults(), LifecycleFaults::default());
    }
}
