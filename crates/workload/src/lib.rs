//! Scenario fleet generation and the serve resilience gauntlet.
//!
//! Two layers, both deterministic:
//!
//! * [`gen`] — a streaming, constant-memory fleet generator. A
//!   [`manifest::ScenarioManifest`] (seed + scenario + knobs) fully
//!   determines the emitted feed bytes: the same manifest regenerates a
//!   byte-identical fleet, which is what makes a gauntlet run a
//!   *replayable* artifact rather than a one-off. Scenarios come in
//!   three profiles (see [`scenario`]): `expected` is the paper's
//!   calibrated healthy/failing mix, `stress` perturbs the transport
//!   (bursts, rotation storms, correlated racks, shard skew) and
//!   `adversarial` attacks the detector itself (late mimics,
//!   near-threshold oscillators, quarantine floods).
//! * [`gauntlet`] — drives the sharded serve topology over a generated
//!   fleet against ground-truth labels and scores the outcome:
//!   FDR/FAR, alarm lead time, p99 tick latency, and the degradation
//!   counters (dropped/stale/quarantined rows, circuit-breaker
//!   transitions). Degradation must stay *bounded*: every injected
//!   fault is accounted for by an exact counter assertion, the alarm
//!   sink must be byte-identical at 1, 2 and 4 shards, and alarms may
//!   be lost only while a breaker is Degraded.
//!
//! The generator injects faults itself (inline, with exact counts)
//! rather than post-processing through `hdd-fault`: the gauntlet's
//! bounded-degradation assertions need to know *exactly* how many
//! garbage, stale and rotation events went in, not a seeded rate.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod gauntlet;
pub mod gen;
pub mod manifest;
pub mod scenario;

pub use gauntlet::{GauntletConfig, GauntletError, LifecycleOutcome, RetrainSpec, ScenarioOutcome};
pub use gen::{fleet_fingerprint, generate_fleet, FleetSummary, FleetTruth, FnvWriter};
pub use manifest::ScenarioManifest;
pub use scenario::{Profile, Scenario};
