//! The replayable scenario manifest.
//!
//! A [`ScenarioManifest`] is the *complete* input of a fleet: seed,
//! scenario and sizing knobs. [`crate::gen::generate_fleet`] is a pure
//! function of it, so a committed manifest regenerates byte-identical
//! feeds forever — the gauntlet persists one per scenario next to its
//! report, and `hddpred gauntlet --manifest <path>` replays it.
//!
//! The seed is serialized as a *string*: JSON numbers travel through
//! `f64` and would silently round seeds above 2^53, breaking the
//! byte-identity contract for exactly the seeds least likely to be
//! noticed.

use crate::scenario::Scenario;
use hdd_json::{JsonCodec, JsonError, Value};

/// Everything that determines a generated fleet, byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioManifest {
    /// Root seed for every deterministic draw in the fleet.
    pub seed: u64,
    /// Which fleet shape to emit.
    pub scenario: Scenario,
    /// Fraction of the paper's family-W fleet to synthesize.
    pub scale: f64,
    /// How many feed files the fleet is split across.
    pub n_feeds: usize,
}

impl ScenarioManifest {
    /// A manifest with explicit knobs.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive or `n_feeds` is zero — both
    /// would make the generator meaningless rather than small.
    #[must_use]
    pub fn new(seed: u64, scenario: Scenario, scale: f64, n_feeds: usize) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(n_feeds >= 1, "a fleet needs at least one feed");
        ScenarioManifest {
            seed,
            scenario,
            scale,
            n_feeds,
        }
    }
}

impl JsonCodec for ScenarioManifest {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "profile".to_string(),
                Value::Str(self.scenario.profile().label().to_string()),
            ),
            (
                "scenario".to_string(),
                Value::Str(self.scenario.label().to_string()),
            ),
            ("seed".to_string(), Value::Str(self.seed.to_string())),
            ("scale".to_string(), Value::Num(self.scale)),
            ("n_feeds".to_string(), Value::Num(self.n_feeds as f64)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let label = value.str_field("scenario")?;
        let scenario = Scenario::from_label(label)
            .ok_or_else(|| JsonError::new(format!("unknown scenario `{label}`")))?;
        let profile = value.str_field("profile")?;
        if profile != scenario.profile().label() {
            return Err(JsonError::new(format!(
                "scenario `{label}` belongs to profile `{}`, manifest says `{profile}`",
                scenario.profile().label()
            )));
        }
        let seed: u64 = value
            .str_field("seed")?
            .parse()
            .map_err(|_| JsonError::expected("a decimal u64", "seed"))?;
        let scale = value.f64_field("scale")?;
        if scale <= 0.0 || scale.is_nan() {
            return Err(JsonError::expected("a positive number", "scale"));
        }
        let n_feeds = value.usize_field("n_feeds")?;
        if n_feeds == 0 {
            return Err(JsonError::expected("a feed count of at least 1", "n_feeds"));
        }
        Ok(ScenarioManifest {
            seed,
            scenario,
            scale,
            n_feeds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        for scenario in Scenario::ALL {
            let m = ScenarioManifest::new(u64::MAX - 3, scenario, 0.004, 2);
            let text = hdd_json::to_string(&m.to_json());
            let back = ScenarioManifest::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, m, "{}", scenario.label());
        }
    }

    #[test]
    fn mismatched_profile_is_rejected() {
        let mut json = ScenarioManifest::new(1, Scenario::QuarantineFlood, 0.01, 2).to_json();
        if let Value::Obj(pairs) = &mut json {
            for (k, v) in pairs {
                if k == "profile" {
                    *v = Value::Str("expected".to_string());
                }
            }
        }
        assert!(ScenarioManifest::from_json(&json).is_err());
    }

    #[test]
    fn bad_knobs_are_rejected() {
        let good = ScenarioManifest::new(1, Scenario::CalibratedMix, 0.01, 2);
        let mutate = |key: &str, v: Value| {
            let mut json = good.to_json();
            if let Value::Obj(pairs) = &mut json {
                for (k, slot) in pairs {
                    if k == key {
                        *slot = v.clone();
                    }
                }
            }
            ScenarioManifest::from_json(&json)
        };
        assert!(mutate("seed", Value::Str("not-a-number".to_string())).is_err());
        assert!(mutate("scale", Value::Num(0.0)).is_err());
        assert!(mutate("n_feeds", Value::Num(0.0)).is_err());
        assert!(mutate("scenario", Value::Str("bit-rot".to_string())).is_err());
    }
}
