//! Deterministic fork-join parallelism on `std::thread::scope`.
//!
//! Training and evaluation decompose into independent units — features of
//! a split search, trees of a forest, drives of a test population — whose
//! per-unit work is pure. This crate runs those units across a bounded
//! number of scoped worker threads and **always merges results in
//! submission order**, so the output of every parallel call is
//! bit-identical to the serial loop it replaces. With one thread, the
//! combinators do not spawn at all: they run the plain serial iterator,
//! so `threads = 1` *is* the old code path, not an emulation of it.
//!
//! # Thread-count resolution
//!
//! [`resolve_threads`] picks the worker count from, in order:
//!
//! 1. an explicit caller value (a `--threads` CLI flag),
//! 2. the process-wide override set by [`configure_threads`],
//! 3. the `HDDPRED_THREADS` environment variable (ignored unless it
//!    parses to an integer ≥ 1),
//! 4. [`std::thread::available_parallelism`] (clamped to
//!    [`MAX_THREADS`]).
//!
//! # Example
//!
//! ```
//! use hdd_par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.parallel_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // submission order
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Hard cap on resolved worker counts: fork-join gains flatten well
/// before this, and a runaway environment value must not fork-bomb.
pub const MAX_THREADS: usize = 64;

/// Environment variable consulted by [`resolve_threads`].
pub const THREADS_ENV_VAR: &str = "HDDPRED_THREADS";

/// Process-wide thread-count override; `0` means "not set".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default thread count (what a `--threads` CLI
/// flag plumbs through). Takes precedence over `HDDPRED_THREADS` and
/// hardware detection; explicit per-call values still win.
///
/// # Panics
///
/// Panics if `n` is zero — callers validate user input first and report
/// their own error (the CLI rejects `--threads 0` before calling this).
pub fn configure_threads(n: usize) {
    assert!(n >= 1, "thread count must be at least 1");
    CONFIGURED.store(n.min(MAX_THREADS), Ordering::Relaxed);
}

/// The process-wide override, if [`configure_threads`] has been called.
#[must_use]
pub fn configured_threads() -> Option<usize> {
    match CONFIGURED.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Worker count from the `HDDPRED_THREADS` environment variable, when it
/// parses to an integer ≥ 1 (anything else is ignored, not an error —
/// a bad environment must not take the pipeline down).
#[must_use]
pub fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(MAX_THREADS))
}

/// Number of hardware threads, clamped to `[1, MAX_THREADS]`.
#[must_use]
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, MAX_THREADS)
}

/// Resolve a worker count: `explicit` > [`configure_threads`] >
/// `HDDPRED_THREADS` > hardware. Always returns at least 1.
///
/// # Panics
///
/// Panics if `explicit` is `Some(0)`; validate CLI input before calling.
#[must_use]
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        assert!(n >= 1, "thread count must be at least 1");
        return n.min(MAX_THREADS);
    }
    configured_threads()
        .or_else(env_threads)
        .unwrap_or_else(hardware_threads)
}

/// A scoped fork-join pool: a worker count plus the discipline that every
/// parallel call joins all of its workers before returning and merges
/// their results in submission order.
///
/// The pool is trivially copyable — workers are scoped threads spawned
/// per call, so no state outlives a call and non-`'static` borrows (the
/// training matrix, the dataset) flow into workers without `Arc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    n_threads: usize,
}

impl Default for ThreadPool {
    /// The globally resolved pool ([`resolve_threads`] with no explicit
    /// value).
    fn default() -> Self {
        ThreadPool::global()
    }
}

impl ThreadPool {
    /// A pool with exactly `n_threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    #[must_use]
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads >= 1, "thread count must be at least 1");
        ThreadPool {
            n_threads: n_threads.min(MAX_THREADS),
        }
    }

    /// The single-threaded pool: every combinator runs the plain serial
    /// loop, spawning nothing.
    #[must_use]
    pub fn serial() -> Self {
        ThreadPool { n_threads: 1 }
    }

    /// The pool resolved from the process-wide configuration
    /// (override / environment / hardware).
    #[must_use]
    pub fn global() -> Self {
        ThreadPool {
            n_threads: resolve_threads(None),
        }
    }

    /// Worker count.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Whether this pool actually forks (more than one worker).
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.n_threads > 1
    }

    /// Map `f` over `items`, returning results in item order.
    ///
    /// Items are dealt to workers in contiguous chunks; each worker's
    /// results are concatenated back in submission order, so the output
    /// is identical to `items.iter().map(f).collect()` whenever `f` is a
    /// pure function of its item.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the scope joins all workers first).
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if !self.is_parallel() || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(self.n_threads);
        let f = &f;
        let mut results: Vec<Vec<R>> = Vec::with_capacity(self.n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                results.push(handle.join().expect("worker thread panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Map `f` over the index range `0..n`, returning results in index
    /// order — the fan-out shape of per-feature and per-tree work.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f`.
    pub fn parallel_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if !self.is_parallel() || n <= 1 {
            return (0..n).map(f).collect();
        }
        let chunk = n.div_ceil(self.n_threads);
        let f = &f;
        let mut results: Vec<Vec<R>> = Vec::with_capacity(self.n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    scope.spawn(move || (start..end).map(f).collect::<Vec<R>>())
                })
                .collect();
            for handle in handles {
                results.push(handle.join().expect("worker thread panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Split `items` into at most `n_threads` contiguous chunks, apply
    /// `f` to each whole chunk, and return the per-chunk results in chunk
    /// order — the reduce-friendly shape (per-chunk accumulators merged
    /// by the caller in a fixed order keep floating-point sums stable
    /// for a given thread count).
    ///
    /// With one worker this is a single `f(items)` call.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f`.
    pub fn parallel_for_chunks<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        if !self.is_parallel() || items.len() == 1 {
            return vec![f(items)];
        }
        let chunk = items.len().div_ceil(self.n_threads);
        let f = &f;
        let mut results: Vec<R> = Vec::with_capacity(self.n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| scope.spawn(move || f(part)))
                .collect();
            for handle in handles {
                results.push(handle.join().expect("worker thread panicked"));
            }
        });
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_submission_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.parallel_map(&items, |&x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn map_range_matches_serial() {
        let expect: Vec<usize> = (0..57).map(|i| i * i).collect();
        for threads in [1, 4, 7] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.parallel_map_range(57, |i| i * i), expect);
        }
    }

    #[test]
    fn chunk_results_arrive_in_chunk_order() {
        let items: Vec<u32> = (0..100).collect();
        let pool = ThreadPool::new(4);
        let sums = pool.parallel_for_chunks(&items, |part| part.iter().sum::<u32>());
        assert_eq!(sums.len(), 4);
        assert_eq!(sums.iter().sum::<u32>(), items.iter().sum::<u32>());
        // Chunks are contiguous and ordered: first chunk holds 0..25.
        assert_eq!(sums[0], (0..25).sum::<u32>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = ThreadPool::new(8);
        assert_eq!(pool.parallel_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(pool.parallel_map(&[7u8], |&x| x + 1), vec![8]);
        assert_eq!(
            pool.parallel_for_chunks(&[] as &[u8], |c| c.len()),
            Vec::<usize>::new()
        );
        assert_eq!(pool.parallel_map_range(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn serial_pool_never_forks() {
        // Observable via thread ids: every call runs on this thread.
        let here = std::thread::current().id();
        let ids = ThreadPool::serial().parallel_map(&[1, 2, 3], |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == here));
    }

    #[test]
    fn parallel_pool_runs_off_thread() {
        let here = std::thread::current().id();
        let items: Vec<u32> = (0..64).collect();
        let ids = ThreadPool::new(4).parallel_map(&items, |_| std::thread::current().id());
        assert!(ids.iter().any(|&id| id != here));
    }

    #[test]
    fn resolution_precedence() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(10_000)), MAX_THREADS);
        assert!(resolve_threads(None) >= 1);
        configure_threads(2);
        assert_eq!(configured_threads(), Some(2));
        assert_eq!(resolve_threads(None), 2);
        assert_eq!(resolve_threads(Some(5)), 5, "explicit beats configured");
        configure_threads(1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn pool_constructors() {
        assert_eq!(ThreadPool::serial().n_threads(), 1);
        assert!(!ThreadPool::serial().is_parallel());
        assert!(ThreadPool::new(2).is_parallel());
        assert!(ThreadPool::global().n_threads() >= 1);
        assert_eq!(ThreadPool::new(1_000_000).n_threads(), MAX_THREADS);
    }
}
