//! Deterministic fork-join parallelism on `std::thread::scope`.
//!
//! Training and evaluation decompose into independent units — features of
//! a split search, trees of a forest, drives of a test population — whose
//! per-unit work is pure. This crate runs those units across a bounded
//! number of scoped worker threads and **always merges results in
//! submission order**, so the output of every parallel call is
//! bit-identical to the serial loop it replaces. With one thread, the
//! combinators do not spawn at all: they run the plain serial iterator,
//! so `threads = 1` *is* the old code path, not an emulation of it.
//!
//! # Thread-count resolution
//!
//! [`resolve_threads`] picks the worker count from, in order:
//!
//! 1. an explicit caller value (a `--threads` CLI flag),
//! 2. the process-wide override set by [`configure_threads`],
//! 3. the `HDDPRED_THREADS` environment variable (ignored unless it
//!    parses to an integer ≥ 1),
//! 4. [`std::thread::available_parallelism`] (clamped to
//!    [`MAX_THREADS`]).
//!
//! # Example
//!
//! ```
//! use hdd_par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.parallel_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // submission order
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A worker panic, contained and surfaced as a value.
///
/// Every combinator wraps its per-chunk work in
/// [`std::panic::catch_unwind`], so a panicking closure never tears down
/// a worker thread mid-scope: the scope joins normally, no other chunk is
/// poisoned, and the panic arrives on the *submitting* thread — as this
/// typed error from the `try_` combinators, or re-raised as a regular
/// panic from the infallible ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the chunk (in submission order) whose closure panicked.
    pub chunk: usize,
    /// The panic message, when the payload was a string (the common
    /// case); `"<non-string panic payload>"` otherwise.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked in chunk {}: {}",
            self.chunk, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Extract a readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Merge per-chunk outcomes in submission order, keeping the first
/// panic (deterministic: the earliest chunk wins regardless of timing).
fn merge_chunks<R>(chunks: Vec<Result<Vec<R>, String>>) -> Result<Vec<R>, WorkerPanic> {
    let mut out = Vec::new();
    for (chunk, result) in chunks.into_iter().enumerate() {
        match result {
            Ok(mut part) => out.append(&mut part),
            Err(message) => return Err(WorkerPanic { chunk, message }),
        }
    }
    Ok(out)
}

/// Why a cancellable call stopped before finishing its work.
///
/// Produced by [`CancelToken::check`]; the distinction matters to
/// callers — a deadline overrun means "retry with the same input next
/// tick", an explicit cancel means "this work is obsolete".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl std::error::Error for Interrupt {}

/// Why a `_cancel` combinator returned without a full result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A worker's closure panicked (contained, earliest chunk wins).
    Panic(WorkerPanic),
    /// The token was cancelled before every chunk started.
    Cancelled,
    /// The token's deadline passed before every chunk started.
    DeadlineExceeded,
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::Panic(p) => write!(f, "{p}"),
            ParError::Cancelled => write!(f, "cancelled"),
            ParError::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl std::error::Error for ParError {}

impl From<WorkerPanic> for ParError {
    fn from(p: WorkerPanic) -> Self {
        ParError::Panic(p)
    }
}

impl From<Interrupt> for ParError {
    fn from(i: Interrupt) -> Self {
        match i {
            Interrupt::Cancelled => ParError::Cancelled,
            Interrupt::DeadlineExceeded => ParError::DeadlineExceeded,
        }
    }
}

/// A chunk's failure, kept as a value until the deterministic merge.
enum ChunkFailure {
    Panic(String),
    Interrupt(Interrupt),
}

/// Merge cancellable per-chunk outcomes in submission order: the
/// earliest failing chunk wins regardless of thread timing, so the same
/// inputs always report the same error.
fn merge_cancellable<R>(chunks: Vec<Result<Vec<R>, ChunkFailure>>) -> Result<Vec<R>, ParError> {
    let mut out = Vec::new();
    for (chunk, result) in chunks.into_iter().enumerate() {
        match result {
            Ok(mut part) => out.append(&mut part),
            Err(ChunkFailure::Panic(message)) => {
                return Err(ParError::Panic(WorkerPanic { chunk, message }))
            }
            Err(ChunkFailure::Interrupt(i)) => return Err(i.into()),
        }
    }
    Ok(out)
}

/// A cooperative cancellation handle: cloneable, checkable, optionally
/// carrying a wall-clock deadline.
///
/// Workers do not get pre-empted — cancellation is observed at chunk
/// boundaries via [`CancelToken::check`], so a caller that needs a tick
/// budget honoured should keep its work items reasonably small (the
/// streaming engine bounds batches with its ingest queue cap).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires on its own; only
    /// [`CancelToken::cancel`] trips it.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that reports [`Interrupt::DeadlineExceeded`] once
    /// `deadline` passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token whose deadline is `budget` from now.
    #[must_use]
    pub fn with_budget(budget: Duration) -> Self {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// Trip the token: every clone observes the cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The wall-clock deadline, if this token carries one.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Check for an interrupt: explicit cancellation wins over the
    /// deadline when both apply.
    ///
    /// # Errors
    ///
    /// Returns the [`Interrupt`] when the token is tripped or expired.
    pub fn check(&self) -> Result<(), Interrupt> {
        if self.is_cancelled() {
            return Err(Interrupt::Cancelled);
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => Err(Interrupt::DeadlineExceeded),
            _ => Ok(()),
        }
    }
}

/// Hard cap on resolved worker counts: fork-join gains flatten well
/// before this, and a runaway environment value must not fork-bomb.
pub const MAX_THREADS: usize = 64;

/// Environment variable consulted by [`resolve_threads`].
pub const THREADS_ENV_VAR: &str = "HDDPRED_THREADS";

/// Process-wide thread-count override; `0` means "not set".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default thread count (what a `--threads` CLI
/// flag plumbs through). Takes precedence over `HDDPRED_THREADS` and
/// hardware detection; explicit per-call values still win.
///
/// # Panics
///
/// Panics if `n` is zero — callers validate user input first and report
/// their own error (the CLI rejects `--threads 0` before calling this).
pub fn configure_threads(n: usize) {
    assert!(n >= 1, "thread count must be at least 1");
    CONFIGURED.store(n.min(MAX_THREADS), Ordering::Relaxed);
}

/// The process-wide override, if [`configure_threads`] has been called.
#[must_use]
pub fn configured_threads() -> Option<usize> {
    match CONFIGURED.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Worker count from the `HDDPRED_THREADS` environment variable, when it
/// parses to an integer ≥ 1 (anything else is ignored, not an error —
/// a bad environment must not take the pipeline down).
#[must_use]
pub fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(MAX_THREADS))
}

/// Number of hardware threads, clamped to `[1, MAX_THREADS]`.
#[must_use]
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, MAX_THREADS)
}

/// Resolve a worker count: `explicit` > [`configure_threads`] >
/// `HDDPRED_THREADS` > hardware. Always returns at least 1.
///
/// # Panics
///
/// Panics if `explicit` is `Some(0)`; validate CLI input before calling.
#[must_use]
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        assert!(n >= 1, "thread count must be at least 1");
        return n.min(MAX_THREADS);
    }
    configured_threads()
        .or_else(env_threads)
        .unwrap_or_else(hardware_threads)
}

/// A scoped fork-join pool: a worker count plus the discipline that every
/// parallel call joins all of its workers before returning and merges
/// their results in submission order.
///
/// The pool is trivially copyable — workers are scoped threads spawned
/// per call, so no state outlives a call and non-`'static` borrows (the
/// training matrix, the dataset) flow into workers without `Arc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    n_threads: usize,
    /// Minimum items dealt to a worker before another worker is engaged.
    /// Defaults to 1 (chunking purely by thread count); raise it via
    /// [`ThreadPool::with_min_chunk`] when per-item work is small enough
    /// that spawn/join overhead would dominate an under-filled chunk.
    min_chunk: usize,
}

impl Default for ThreadPool {
    /// The globally resolved pool ([`resolve_threads`] with no explicit
    /// value).
    fn default() -> Self {
        ThreadPool::global()
    }
}

impl ThreadPool {
    /// A pool with exactly `n_threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    #[must_use]
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads >= 1, "thread count must be at least 1");
        ThreadPool {
            n_threads: n_threads.min(MAX_THREADS),
            min_chunk: 1,
        }
    }

    /// The single-threaded pool: every combinator runs the plain serial
    /// loop, spawning nothing.
    #[must_use]
    pub fn serial() -> Self {
        ThreadPool {
            n_threads: 1,
            min_chunk: 1,
        }
    }

    /// The pool resolved from the process-wide configuration
    /// (override / environment / hardware).
    #[must_use]
    pub fn global() -> Self {
        ThreadPool {
            n_threads: resolve_threads(None),
            min_chunk: 1,
        }
    }

    /// The same pool with a minimum-work floor: no worker is handed fewer
    /// than `min_chunk` items (except the final remainder chunk). With
    /// `ceil(n / n_threads) < min_chunk`, fewer workers are engaged —
    /// trading idle threads for chunks big enough to amortise spawn/join
    /// overhead. Merge order is still submission order, so results remain
    /// bit-identical to the unfloored pool; only the chunk *boundaries*
    /// (and hence [`WorkerPanic::chunk`] indices) change.
    ///
    /// A `min_chunk` of 0 is treated as 1.
    #[must_use]
    pub fn with_min_chunk(self, min_chunk: usize) -> Self {
        ThreadPool {
            n_threads: self.n_threads,
            min_chunk: min_chunk.max(1),
        }
    }

    /// The minimum chunk size this pool deals to a worker.
    #[must_use]
    pub fn min_chunk(&self) -> usize {
        self.min_chunk
    }

    /// The chunk size this pool would deal for `n` items: items split
    /// evenly across workers, floored at [`ThreadPool::min_chunk`].
    #[must_use]
    pub fn chunk_size_for(&self, n: usize) -> usize {
        n.div_ceil(self.n_threads).max(self.min_chunk)
    }

    /// Worker count.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Whether this pool actually forks (more than one worker).
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.n_threads > 1
    }

    /// Map `f` over `items`, returning results in item order.
    ///
    /// Items are dealt to workers in contiguous chunks; each worker's
    /// results are concatenated back in submission order, so the output
    /// is identical to `items.iter().map(f).collect()` whenever `f` is a
    /// pure function of its item.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` on the submitting thread (all workers
    /// are joined first — no deadlock, no abandoned chunks). Use
    /// [`ThreadPool::try_parallel_map`] to receive it as a typed error
    /// instead.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.try_parallel_map(items, f) {
            Ok(out) => out,
            // audit:allow(R3) reason="re-raises a worker panic already contained by try_*; the try_ variants are the no-panic API"
            Err(p) => panic!("{p}"),
        }
    }

    /// [`ThreadPool::parallel_map`] with panic containment: a panic in
    /// `f` is caught in the worker, every other chunk still completes,
    /// and the first panicking chunk (in submission order — deterministic
    /// regardless of thread timing) is returned as a [`WorkerPanic`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkerPanic`] when `f` panicked on any item.
    pub fn try_parallel_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if !self.is_parallel() || items.len() <= 1 {
            let only = catch_unwind(AssertUnwindSafe(|| items.iter().map(&f).collect()))
                .map_err(|p| panic_message(&*p));
            return merge_chunks(vec![only]);
        }
        let chunk = self.chunk_size_for(items.len());
        let f = &f;
        let mut results: Vec<Result<Vec<R>, String>> = Vec::with_capacity(self.n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| part.iter().map(f).collect::<Vec<R>>()))
                            .map_err(|p| panic_message(&*p))
                    })
                })
                .collect();
            for handle in handles {
                results.push(handle.join().unwrap_or_else(|p| Err(panic_message(&*p))));
            }
        });
        merge_chunks(results)
    }

    /// Map `f` over the index range `0..n`, returning results in index
    /// order — the fan-out shape of per-feature and per-tree work.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` on the submitting thread; see
    /// [`ThreadPool::try_parallel_map_range`] for the fallible form.
    pub fn parallel_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match self.try_parallel_map_range(n, f) {
            Ok(out) => out,
            // audit:allow(R3) reason="re-raises a worker panic already contained by try_*; the try_ variants are the no-panic API"
            Err(p) => panic!("{p}"),
        }
    }

    /// [`ThreadPool::parallel_map_range`] with panic containment.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerPanic`] when `f` panicked on any index.
    pub fn try_parallel_map_range<R, F>(&self, n: usize, f: F) -> Result<Vec<R>, WorkerPanic>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if !self.is_parallel() || n <= 1 {
            let only = catch_unwind(AssertUnwindSafe(|| (0..n).map(&f).collect()))
                .map_err(|p| panic_message(&*p));
            return merge_chunks(vec![only]);
        }
        let chunk = self.chunk_size_for(n);
        let f = &f;
        let mut results: Vec<Result<Vec<R>, String>> = Vec::with_capacity(self.n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| (start..end).map(f).collect::<Vec<R>>()))
                            .map_err(|p| panic_message(&*p))
                    })
                })
                .collect();
            for handle in handles {
                results.push(handle.join().unwrap_or_else(|p| Err(panic_message(&*p))));
            }
        });
        merge_chunks(results)
    }

    /// Split `items` into at most `n_threads` contiguous chunks, apply
    /// `f` to each whole chunk, and return the per-chunk results in chunk
    /// order — the reduce-friendly shape (per-chunk accumulators merged
    /// by the caller in a fixed order keep floating-point sums stable
    /// for a given thread count).
    ///
    /// With one worker this is a single `f(items)` call.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` on the submitting thread; see
    /// [`ThreadPool::try_parallel_for_chunks`] for the fallible form.
    pub fn parallel_for_chunks<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        match self.try_parallel_for_chunks(items, f) {
            Ok(out) => out,
            // audit:allow(R3) reason="re-raises a worker panic already contained by try_*; the try_ variants are the no-panic API"
            Err(p) => panic!("{p}"),
        }
    }

    /// [`ThreadPool::try_parallel_map`] with cooperative cancellation:
    /// `token` is checked once before each chunk starts, so an expired
    /// deadline or an explicit cancel stops the call at the next chunk
    /// boundary instead of running the whole input.
    ///
    /// On interrupt **no partial results are returned** — the caller
    /// retries the same input later (the streaming engine leaves the
    /// batch queued), which keeps outputs a pure function of the input
    /// regardless of where the interrupt landed.
    ///
    /// # Errors
    ///
    /// Returns [`ParError::Cancelled`] / [`ParError::DeadlineExceeded`]
    /// when the token tripped before every chunk ran, or
    /// [`ParError::Panic`] when `f` panicked (earliest chunk in
    /// submission order wins, deterministically).
    pub fn try_parallel_map_cancel<T, R, F>(
        &self,
        token: &CancelToken,
        items: &[T],
        f: F,
    ) -> Result<Vec<R>, ParError>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let run_chunk = |part: &[T]| -> Result<Vec<R>, ChunkFailure> {
            token.check().map_err(ChunkFailure::Interrupt)?;
            catch_unwind(AssertUnwindSafe(|| part.iter().map(&f).collect()))
                .map_err(|p| ChunkFailure::Panic(panic_message(&*p)))
        };
        if !self.is_parallel() || items.len() <= 1 {
            return merge_cancellable(vec![run_chunk(items)]);
        }
        let chunk = self.chunk_size_for(items.len());
        let run_chunk = &run_chunk;
        let mut results: Vec<Result<Vec<R>, ChunkFailure>> = Vec::with_capacity(self.n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| scope.spawn(move || run_chunk(part)))
                .collect();
            for handle in handles {
                results.push(
                    handle
                        .join()
                        .unwrap_or_else(|p| Err(ChunkFailure::Panic(panic_message(&*p)))),
                );
            }
        });
        merge_cancellable(results)
    }

    /// [`ThreadPool::try_parallel_map_range`] with cooperative
    /// cancellation; see [`ThreadPool::try_parallel_map_cancel`] for the
    /// checking and no-partial-results semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ParError`] on interrupt or contained panic.
    pub fn try_parallel_map_range_cancel<R, F>(
        &self,
        token: &CancelToken,
        n: usize,
        f: F,
    ) -> Result<Vec<R>, ParError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let run_range = |start: usize, end: usize| -> Result<Vec<R>, ChunkFailure> {
            token.check().map_err(ChunkFailure::Interrupt)?;
            catch_unwind(AssertUnwindSafe(|| (start..end).map(&f).collect()))
                .map_err(|p| ChunkFailure::Panic(panic_message(&*p)))
        };
        if !self.is_parallel() || n <= 1 {
            return merge_cancellable(vec![run_range(0, n)]);
        }
        let chunk = self.chunk_size_for(n);
        let run_range = &run_range;
        let mut results: Vec<Result<Vec<R>, ChunkFailure>> = Vec::with_capacity(self.n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    scope.spawn(move || run_range(start, end))
                })
                .collect();
            for handle in handles {
                results.push(
                    handle
                        .join()
                        .unwrap_or_else(|p| Err(ChunkFailure::Panic(panic_message(&*p)))),
                );
            }
        });
        merge_cancellable(results)
    }

    /// Apply `f` to every item through an **exclusive** reference, one
    /// item per task, returning per-item results in submission order —
    /// the fan-out shape of stateful workers that each own a disjoint
    /// slice of state (the serve topology's engine shards).
    ///
    /// Unlike the read-only combinators, `f` may mutate its item; the
    /// items are split with `chunks_mut`, so no two workers ever alias.
    /// A panicking item is contained exactly like
    /// [`ThreadPool::try_parallel_map`]: every other item still runs, the
    /// scope joins normally, and the earliest panicking chunk (in
    /// submission order) is reported. Mutations made by `f` before a
    /// panic are kept — callers that need all-or-nothing semantics must
    /// make `f` itself transactional, as the engine shards do.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerPanic`] when `f` panicked on any item.
    pub fn try_parallel_map_mut<T, R, F>(
        &self,
        items: &mut [T],
        f: F,
    ) -> Result<Vec<R>, WorkerPanic>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        if !self.is_parallel() || items.len() <= 1 {
            let only = catch_unwind(AssertUnwindSafe(|| {
                items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect()
            }))
            .map_err(|p| panic_message(&*p));
            return merge_chunks(vec![only]);
        }
        let chunk = self.chunk_size_for(items.len());
        let f = &f;
        let mut results: Vec<Result<Vec<R>, String>> = Vec::with_capacity(self.n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks_mut(chunk)
                .enumerate()
                .map(|(chunk_idx, part)| {
                    let base = chunk_idx * chunk;
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| {
                            part.iter_mut()
                                .enumerate()
                                .map(|(i, t)| f(base + i, t))
                                .collect::<Vec<R>>()
                        }))
                        .map_err(|p| panic_message(&*p))
                    })
                })
                .collect();
            for handle in handles {
                results.push(handle.join().unwrap_or_else(|p| Err(panic_message(&*p))));
            }
        });
        merge_chunks(results)
    }

    /// [`ThreadPool::parallel_for_chunks`] with panic containment.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerPanic`] when `f` panicked on any chunk.
    pub fn try_parallel_for_chunks<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        if !self.is_parallel() || items.len() == 1 {
            let only =
                catch_unwind(AssertUnwindSafe(|| vec![f(items)])).map_err(|p| panic_message(&*p));
            return merge_chunks(vec![only]);
        }
        let chunk = self.chunk_size_for(items.len());
        let f = &f;
        let mut results: Vec<Result<Vec<R>, String>> = Vec::with_capacity(self.n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| vec![f(part)]))
                            .map_err(|p| panic_message(&*p))
                    })
                })
                .collect();
            for handle in handles {
                results.push(handle.join().unwrap_or_else(|p| Err(panic_message(&*p))));
            }
        });
        merge_chunks(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_submission_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.parallel_map(&items, |&x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn map_range_matches_serial() {
        let expect: Vec<usize> = (0..57).map(|i| i * i).collect();
        for threads in [1, 4, 7] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.parallel_map_range(57, |i| i * i), expect);
        }
    }

    #[test]
    fn chunk_results_arrive_in_chunk_order() {
        let items: Vec<u32> = (0..100).collect();
        let pool = ThreadPool::new(4);
        let sums = pool.parallel_for_chunks(&items, |part| part.iter().sum::<u32>());
        assert_eq!(sums.len(), 4);
        assert_eq!(sums.iter().sum::<u32>(), items.iter().sum::<u32>());
        // Chunks are contiguous and ordered: first chunk holds 0..25.
        assert_eq!(sums[0], (0..25).sum::<u32>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = ThreadPool::new(8);
        assert_eq!(pool.parallel_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(pool.parallel_map(&[7u8], |&x| x + 1), vec![8]);
        assert_eq!(
            pool.parallel_for_chunks(&[] as &[u8], |c| c.len()),
            Vec::<usize>::new()
        );
        assert_eq!(pool.parallel_map_range(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn serial_pool_never_forks() {
        // Observable via thread ids: every call runs on this thread.
        let here = std::thread::current().id();
        let ids = ThreadPool::serial().parallel_map(&[1, 2, 3], |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == here));
    }

    #[test]
    fn parallel_pool_runs_off_thread() {
        let here = std::thread::current().id();
        let items: Vec<u32> = (0..64).collect();
        let ids = ThreadPool::new(4).parallel_map(&items, |_| std::thread::current().id());
        assert!(ids.iter().any(|&id| id != here));
    }

    #[test]
    fn resolution_precedence() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(10_000)), MAX_THREADS);
        assert!(resolve_threads(None) >= 1);
        configure_threads(2);
        assert_eq!(configured_threads(), Some(2));
        assert_eq!(resolve_threads(None), 2);
        assert_eq!(resolve_threads(Some(5)), 5, "explicit beats configured");
        configure_threads(1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn pool_constructors() {
        assert_eq!(ThreadPool::serial().n_threads(), 1);
        assert!(!ThreadPool::serial().is_parallel());
        assert!(ThreadPool::new(2).is_parallel());
        assert!(ThreadPool::global().n_threads() >= 1);
        assert_eq!(ThreadPool::new(1_000_000).n_threads(), MAX_THREADS);
    }

    #[test]
    fn min_chunk_floor_changes_dealing_not_results() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 7).collect();
        let pool = ThreadPool::new(8).with_min_chunk(40);
        assert_eq!(pool.min_chunk(), 40);
        assert_eq!(pool.chunk_size_for(100), 40, "floor beats ceil(100/8)=13");
        assert_eq!(pool.chunk_size_for(1000), 125, "even split above floor");
        assert_eq!(pool.parallel_map(&items, |&x| x * 7), expect);
        // 100 items at min_chunk 40 -> chunks of 40/40/20, not 8 of 13.
        let sums = pool.parallel_for_chunks(&items, |part| part.len());
        assert_eq!(sums, vec![40, 40, 20]);
        // Zero floors are normalised, defaults stay at 1.
        assert_eq!(ThreadPool::new(8).with_min_chunk(0).min_chunk(), 1);
        assert_eq!(ThreadPool::new(8).min_chunk(), 1);
        assert_eq!(ThreadPool::serial().min_chunk(), 1);
    }

    #[test]
    fn min_chunk_floor_keeps_results_identical_across_combinators() {
        let items: Vec<u64> = (0..333).collect();
        let base = ThreadPool::new(4);
        let floored = base.with_min_chunk(100);
        assert_eq!(
            base.parallel_map(&items, |&x| x * x),
            floored.parallel_map(&items, |&x| x * x)
        );
        assert_eq!(
            base.parallel_map_range(333, |i| i as u64 + 1),
            floored.parallel_map_range(333, |i| i as u64 + 1)
        );
        let token = CancelToken::new();
        assert_eq!(
            base.try_parallel_map_cancel(&token, &items, |&x| x + 2),
            floored.try_parallel_map_cancel(&token, &items, |&x| x + 2)
        );
        let mut a: Vec<u64> = (0..57).collect();
        let mut b = a.clone();
        let step = |i: usize, v: &mut u64| {
            *v += i as u64;
            *v
        };
        assert_eq!(
            base.try_parallel_map_mut(&mut a, step),
            floored.try_parallel_map_mut(&mut b, step)
        );
        assert_eq!(a, b);
    }

    #[test]
    fn worker_panic_becomes_typed_error() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let err = pool
                .try_parallel_map(&items, |&x| {
                    assert!(x != 63, "injected failure on 63");
                    x * 2
                })
                .unwrap_err();
            assert!(err.message.contains("injected failure"), "{err}");
            assert!(err.to_string().contains("worker panicked"), "{err}");
        }
    }

    #[test]
    fn pool_survives_a_panicking_call() {
        // No poisoned state: the same pool value works fine right after
        // a call whose closure panicked.
        let pool = ThreadPool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let _ = pool.try_parallel_map(&items, |_| -> u32 { panic!("boom") });
        assert_eq!(
            pool.parallel_map(&items, |&x| x + 1),
            (1..65).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn first_panicking_chunk_wins_deterministically() {
        // Chunks 1 and 3 both panic; the reported chunk must always be
        // the earliest in submission order, regardless of thread timing.
        let pool = ThreadPool::new(4);
        for _ in 0..20 {
            let err = pool
                .try_parallel_map_range(8, |i| {
                    if i == 3 || i == 7 {
                        panic!("unit {i} failed");
                    }
                    i
                })
                .unwrap_err();
            assert_eq!(err.chunk, 1, "{err}");
            assert!(err.message.contains("unit 3"), "{err}");
        }
    }

    #[test]
    fn try_variants_succeed_like_their_panicking_twins() {
        let pool = ThreadPool::new(3);
        let items: Vec<u64> = (0..50).collect();
        assert_eq!(
            pool.try_parallel_map(&items, |&x| x * x).unwrap(),
            pool.parallel_map(&items, |&x| x * x)
        );
        assert_eq!(
            pool.try_parallel_map_range(50, |i| i + 1).unwrap(),
            pool.parallel_map_range(50, |i| i + 1)
        );
        assert_eq!(
            pool.try_parallel_for_chunks(&items, |c| c.len()).unwrap(),
            pool.parallel_for_chunks(&items, |c| c.len())
        );
        assert_eq!(
            pool.try_parallel_for_chunks(&[] as &[u8], |c| c.len()),
            Ok(Vec::new())
        );
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn infallible_map_reraises_on_submitting_thread() {
        let items: Vec<u32> = (0..64).collect();
        let _ = ThreadPool::new(4).parallel_map(&items, |_| -> u32 { panic!("kaboom") });
    }

    #[test]
    fn fresh_token_lets_work_through() {
        let pool = ThreadPool::new(4);
        let token = CancelToken::new();
        let items: Vec<u64> = (0..100).collect();
        assert_eq!(
            pool.try_parallel_map_cancel(&token, &items, |&x| x * 2)
                .unwrap(),
            items.iter().map(|x| x * 2).collect::<Vec<u64>>()
        );
        assert_eq!(
            pool.try_parallel_map_range_cancel(&token, 10, |i| i + 1)
                .unwrap(),
            (1..11).collect::<Vec<usize>>()
        );
    }

    #[test]
    fn cancelled_token_stops_every_combinator() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.check(), Err(Interrupt::Cancelled));
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            assert_eq!(
                pool.try_parallel_map_cancel(&token, &items, |&x| x),
                Err(ParError::Cancelled)
            );
            assert_eq!(
                pool.try_parallel_map_range_cancel(&token, 100, |i| i),
                Err(ParError::Cancelled)
            );
        }
    }

    #[test]
    fn expired_deadline_is_a_typed_error() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(token.check(), Err(Interrupt::DeadlineExceeded));
        let pool = ThreadPool::new(2);
        let items: Vec<u32> = (0..50).collect();
        assert_eq!(
            pool.try_parallel_map_cancel(&token, &items, |&x| x),
            Err(ParError::DeadlineExceeded)
        );
    }

    #[test]
    fn generous_deadline_does_not_interrupt() {
        let token = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(token.check().is_ok());
        assert!(token.deadline().is_some());
        let pool = ThreadPool::new(3);
        let items: Vec<u32> = (0..200).collect();
        assert_eq!(
            pool.try_parallel_map_cancel(&token, &items, |&x| x + 1)
                .unwrap(),
            (1..201).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn cancel_wins_over_deadline() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        token.cancel();
        assert_eq!(token.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn clones_observe_cancellation() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn cancellable_panic_is_contained_and_deterministic() {
        let pool = ThreadPool::new(4);
        let token = CancelToken::new();
        for _ in 0..10 {
            let err = pool
                .try_parallel_map_range_cancel(&token, 8, |i| {
                    if i == 3 || i == 7 {
                        panic!("unit {i} failed");
                    }
                    i
                })
                .unwrap_err();
            match err {
                ParError::Panic(p) => {
                    assert_eq!(p.chunk, 1, "{p}");
                    assert!(p.message.contains("unit 3"), "{p}");
                }
                other => panic!("expected Panic, got {other}"),
            }
        }
    }

    #[test]
    fn interrupt_and_par_error_display() {
        assert_eq!(Interrupt::Cancelled.to_string(), "cancelled");
        assert_eq!(ParError::DeadlineExceeded.to_string(), "deadline exceeded");
        assert_eq!(ParError::from(Interrupt::Cancelled), ParError::Cancelled);
        assert_eq!(
            ParError::from(Interrupt::DeadlineExceeded),
            ParError::DeadlineExceeded
        );
        let p = WorkerPanic {
            chunk: 2,
            message: "boom".to_string(),
        };
        assert!(ParError::from(p).to_string().contains("chunk 2"));
    }

    #[test]
    fn chunked_panic_is_contained_too() {
        let items: Vec<u32> = (0..100).collect();
        let pool = ThreadPool::new(4);
        let err = pool
            .try_parallel_for_chunks(&items, |part| {
                assert!(!part.contains(&80), "chunk holding 80 dies");
                part.len()
            })
            .unwrap_err();
        assert_eq!(err.chunk, 3);
    }

    #[test]
    fn map_mut_mutates_in_place_and_matches_serial() {
        let mut parallel_items: Vec<u64> = (0..97).collect();
        let mut serial_items = parallel_items.clone();
        let step = |i: usize, v: &mut u64| {
            *v = v.wrapping_mul(31).wrapping_add(i as u64);
            *v % 7
        };
        let got = ThreadPool::new(4)
            .try_parallel_map_mut(&mut parallel_items, step)
            .unwrap();
        let want = ThreadPool::serial()
            .try_parallel_map_mut(&mut serial_items, step)
            .unwrap();
        assert_eq!(got, want, "results must be submission-ordered");
        assert_eq!(parallel_items, serial_items, "mutations must agree");
    }

    #[test]
    fn map_mut_panic_is_contained_and_earliest_wins() {
        let mut items: Vec<u32> = (0..16).collect();
        let err = ThreadPool::new(4)
            .try_parallel_map_mut(&mut items, |_, v| {
                assert!(*v != 6 && *v != 13, "unit {v} dies");
                *v += 100;
                *v
            })
            .unwrap_err();
        assert_eq!(err.chunk, 1, "{err}");
        assert!(err.message.contains("unit 6"), "{err}");
        // Chunks without a panicking unit still ran to completion.
        assert_eq!(items[0], 100);
        assert_eq!(items[11], 111);
    }
}
