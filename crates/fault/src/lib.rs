//! Deterministic fault injection for robustness testing.
//!
//! Real SMART telemetry arrives with gaps, glitches and malformed
//! records; model files on disk rot, get truncated by crashes, or lose
//! bits to bad sectors. This crate corrupts healthy inputs *on purpose*
//! so the rest of the workspace can prove it degrades gracefully:
//!
//! * [`FaultInjector::corrupt_csv`] damages a SMART CSV stream with one
//!   of the [`FaultClass`] corruptions — NaN and out-of-range feature
//!   values, truncated and garbage rows, dropped samples, duplicated and
//!   out-of-order timestamps — and returns an [`InjectionReport`] with
//!   the *exact* per-class counts, so ingestion-side quarantine counters
//!   can be checked for equality, not just plausibility.
//! * [`FaultInjector::flip_bit`] flips a single pseudo-random bit in a
//!   byte buffer (a serialized model file), returning the offset and bit
//!   so tests can assert the loader rejects precisely that corruption.
//!
//! Everything is seeded and dependency-free: the same `(seed, input,
//! class, rate)` always produces the same corrupted output, byte for
//! byte, so chaos-test failures replay exactly.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

/// A SMART CSV row has `drive,failed,fail_hour,hour` plus the twelve
/// feature columns of the paper's Table II.
const ROW_FIELDS: usize = 16;

/// Index of the first feature column within a row.
const FIRST_FEATURE: usize = 4;

/// One class of injected corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Replace a feature value with `NaN` (parses as a float, but is not
    /// a usable measurement).
    NanValue,
    /// Replace a feature value with an absurd out-of-range magnitude.
    OutOfRangeValue,
    /// Cut a row off mid-line, as a crashed writer or torn read would.
    TruncatedRow,
    /// Replace a whole row with unparseable garbage bytes.
    GarbageRow,
    /// Silently drop a sample, leaving a gap in the series.
    DroppedRow,
    /// Duplicate a sample, producing two rows with the same timestamp.
    DuplicatedTimestamp,
    /// Swap two adjacent same-drive rows, producing exactly one
    /// out-of-order timestamp per swap.
    OutOfOrderTimestamp,
    /// Cut the final line in half and drop its newline terminator — the
    /// shape of an append caught mid-write. A batch reader sees one
    /// parse failure; a streaming tailer must leave the bytes unread
    /// until the writer finishes the line.
    PartialTrailingLine,
    /// Insert copies of the header line mid-stream — the shape of a feed
    /// file freshly rotated (truncated and restarted) while a tailer has
    /// bytes in flight.
    MidStreamRotation,
    /// Injectively remap every drive id so all of them land on shard 0
    /// of a 4-shard topology — the worst-case routing skew a hash
    /// partition can meet, with valid and still-distinct ids.
    ShardSkewedIds,
    /// Re-append a copy of the trailing data rows — a retransmitting
    /// collector flooding one feed with rows the daemon already
    /// committed (a burst of stale duplicates).
    HotFeedBurst,
    /// Panic inside the background trainer — the lifecycle must contain
    /// it, count it, and back off; the serving path never notices. A
    /// process-level fault, not a byte corruption: [`corrupt_csv`] is a
    /// documented no-op for it.
    ///
    /// [`corrupt_csv`]: FaultInjector::corrupt_csv
    TrainerPanic,
    /// Poison the training buffer with a NaN feature that slipped past
    /// ingestion — the buffer must quarantine it, never train on it.
    /// Process-level; [`corrupt_csv`] is a documented no-op.
    ///
    /// [`corrupt_csv`]: FaultInjector::corrupt_csv
    PoisonedBuffer,
    /// `kill -9` mid promotion protocol — recovery must land exactly the
    /// incumbent or exactly the candidate, never a torn model.
    /// Process-level; [`corrupt_csv`] is a documented no-op.
    ///
    /// [`corrupt_csv`]: FaultInjector::corrupt_csv
    CrashDuringPromotion,
    /// Train candidates on label-inverted samples — a genuinely worse
    /// model the shadow gate must refuse (and, if it ever got through,
    /// probation must roll back). Process-level; [`corrupt_csv`] is a
    /// documented no-op.
    ///
    /// [`corrupt_csv`]: FaultInjector::corrupt_csv
    RegressingCandidate,
}

impl FaultClass {
    /// Every CSV-stream fault class, in a fixed order — the corpus chaos
    /// suites iterate over.
    pub const CSV_CORPUS: [FaultClass; 7] = [
        FaultClass::NanValue,
        FaultClass::OutOfRangeValue,
        FaultClass::TruncatedRow,
        FaultClass::GarbageRow,
        FaultClass::DroppedRow,
        FaultClass::DuplicatedTimestamp,
        FaultClass::OutOfOrderTimestamp,
    ];

    /// The stream-shaped fault classes: corruptions whose whole point is
    /// the *boundary* of the byte stream (an unfinished append, a
    /// rotation) rather than the content of a row.
    pub const STREAM_CORPUS: [FaultClass; 2] = [
        FaultClass::PartialTrailingLine,
        FaultClass::MidStreamRotation,
    ];

    /// The topology-shaped fault classes: pathologies that only matter
    /// once drives are partitioned across shards and feeds — routing
    /// skew and per-feed retransmission floods.
    pub const TOPOLOGY_CORPUS: [FaultClass; 2] =
        [FaultClass::ShardSkewedIds, FaultClass::HotFeedBurst];

    /// The lifecycle-shaped fault classes: process-level pathologies of
    /// online retraining (trainer crashes, poisoned buffers, promotion
    /// interrupted, regressing candidates). These corrupt no bytes —
    /// [`FaultInjector::corrupt_csv`] passes them through unchanged —
    /// the gauntlet maps them onto seeded lifecycle injections instead.
    pub const LIFECYCLE_CORPUS: [FaultClass; 4] = [
        FaultClass::TrainerPanic,
        FaultClass::PoisonedBuffer,
        FaultClass::CrashDuringPromotion,
        FaultClass::RegressingCandidate,
    ];

    /// Every fault class, in declaration order — the universe
    /// [`FaultClass::from_label`] resolves against.
    pub const ALL: [FaultClass; 15] = [
        FaultClass::NanValue,
        FaultClass::OutOfRangeValue,
        FaultClass::TruncatedRow,
        FaultClass::GarbageRow,
        FaultClass::DroppedRow,
        FaultClass::DuplicatedTimestamp,
        FaultClass::OutOfOrderTimestamp,
        FaultClass::PartialTrailingLine,
        FaultClass::MidStreamRotation,
        FaultClass::ShardSkewedIds,
        FaultClass::HotFeedBurst,
        FaultClass::TrainerPanic,
        FaultClass::PoisonedBuffer,
        FaultClass::CrashDuringPromotion,
        FaultClass::RegressingCandidate,
    ];

    /// Resolve a [`FaultClass::label`] back to its class — the parse
    /// direction scenario manifests need.
    #[must_use]
    pub fn from_label(label: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.label() == label)
    }

    /// A stable human-readable label (for logs and test diagnostics).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::NanValue => "nan-value",
            FaultClass::OutOfRangeValue => "out-of-range-value",
            FaultClass::TruncatedRow => "truncated-row",
            FaultClass::GarbageRow => "garbage-row",
            FaultClass::DroppedRow => "dropped-row",
            FaultClass::DuplicatedTimestamp => "duplicated-timestamp",
            FaultClass::OutOfOrderTimestamp => "out-of-order-timestamp",
            FaultClass::PartialTrailingLine => "partial-trailing-line",
            FaultClass::MidStreamRotation => "mid-stream-rotation",
            FaultClass::ShardSkewedIds => "shard-skewed-ids",
            FaultClass::HotFeedBurst => "hot-feed-burst",
            FaultClass::TrainerPanic => "trainer-panic",
            FaultClass::PoisonedBuffer => "poisoned-buffer",
            FaultClass::CrashDuringPromotion => "crash-during-promotion",
            FaultClass::RegressingCandidate => "regressing-candidate",
        }
    }

    /// Whether this class corrupts the byte stream at all.
    /// [`FaultClass::LIFECYCLE_CORPUS`] classes are process-level: they
    /// are injected into the retraining lifecycle, not the feed.
    #[must_use]
    pub fn is_lifecycle(self) -> bool {
        FaultClass::LIFECYCLE_CORPUS.contains(&self)
    }
}

/// Exact counts of what [`FaultInjector::corrupt_csv`] injected.
///
/// Chaos tests assert ingestion-side quarantine counters *equal* these —
/// the injector never lets two corruptions land on the same row, so the
/// counts are unambiguous.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionReport {
    /// Rows whose feature value was replaced with `NaN`.
    pub nan_rows: usize,
    /// Rows whose feature value was replaced with an out-of-range number.
    pub out_of_range_rows: usize,
    /// Rows cut off mid-line.
    pub truncated_rows: usize,
    /// Rows replaced with unparseable garbage.
    pub garbage_rows: usize,
    /// Rows silently removed.
    pub dropped_rows: usize,
    /// Extra rows inserted with a timestamp already present.
    pub duplicated_rows: usize,
    /// Adjacent same-drive row pairs swapped (one timestamp descent each).
    pub swapped_pairs: usize,
    /// Trailing lines cut in half and left without a newline terminator.
    pub partial_tails: usize,
    /// Header copies inserted mid-stream (simulated rotations).
    pub rotations: usize,
    /// Rows whose drive id was remapped onto the hot shard.
    pub skewed_rows: usize,
    /// Stale duplicate rows re-appended as a retransmission burst.
    pub burst_rows: usize,
}

impl InjectionReport {
    /// Total number of injected corruptions across all classes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.nan_rows
            + self.out_of_range_rows
            + self.truncated_rows
            + self.garbage_rows
            + self.dropped_rows
            + self.duplicated_rows
            + self.swapped_pairs
            + self.partial_tails
            + self.rotations
            + self.skewed_rows
            + self.burst_rows
    }
}

/// Location of a single injected bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// Byte offset of the flipped bit.
    pub offset: usize,
    /// Bit index within that byte (0 = least significant).
    pub bit: u8,
}

/// A seeded, deterministic corruption source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// An injector whose output is a pure function of `seed` and its
    /// inputs.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed }
    }

    /// Corrupt roughly `rate` of the data rows of a SMART CSV stream
    /// with faults of `class` (at least one row, if any row is eligible).
    ///
    /// The header line is never touched, no two corruptions land on the
    /// same row, and the returned [`InjectionReport`] counts exactly what
    /// was injected. `rate` is clamped to `[0, 1]`.
    #[must_use]
    pub fn corrupt_csv(
        &self,
        text: &str,
        class: FaultClass,
        rate: f64,
    ) -> (String, InjectionReport) {
        let mut rng =
            SplitMix64::new(self.seed ^ (class as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut report = InjectionReport::default();
        if lines.len() <= 1 {
            return (rejoin(&lines), report);
        }
        // Data rows are lines 1.. (0 is the header).
        let data = 1..lines.len();
        let n_rows = data.len();
        let quota = ((n_rows as f64 * rate.clamp(0.0, 1.0)) as usize).max(1);

        match class {
            FaultClass::NanValue => {
                for idx in pick(&mut rng, data, quota) {
                    if replace_feature(&mut lines[idx], &mut rng, "NaN") {
                        report.nan_rows += 1;
                    }
                }
            }
            FaultClass::OutOfRangeValue => {
                for idx in pick(&mut rng, data, quota) {
                    if replace_feature(&mut lines[idx], &mut rng, "9e12") {
                        report.out_of_range_rows += 1;
                    }
                }
            }
            FaultClass::TruncatedRow => {
                for idx in pick(&mut rng, data, quota) {
                    let line = &mut lines[idx];
                    line.truncate(line.len() / 2);
                    // A half-row must not still look like a full row.
                    if line.split(',').count() == ROW_FIELDS {
                        line.truncate(line.find(',').unwrap_or(1));
                    }
                    report.truncated_rows += 1;
                }
            }
            FaultClass::GarbageRow => {
                for idx in pick(&mut rng, data, quota) {
                    lines[idx] = format!("%%garbage#{:016x}%%", rng.next());
                    report.garbage_rows += 1;
                }
            }
            FaultClass::DroppedRow => {
                let mut victims = pick(&mut rng, data, quota);
                victims.sort_unstable_by(|a, b| b.cmp(a));
                for idx in victims {
                    lines.remove(idx);
                    report.dropped_rows += 1;
                }
            }
            FaultClass::DuplicatedTimestamp => {
                let mut victims = pick(&mut rng, data, quota);
                victims.sort_unstable_by(|a, b| b.cmp(a));
                for idx in victims {
                    let copy = lines[idx].clone();
                    lines.insert(idx + 1, copy);
                    report.duplicated_rows += 1;
                }
            }
            FaultClass::OutOfOrderTimestamp => {
                report.swapped_pairs = swap_adjacent(&mut lines, &mut rng, quota);
            }
            FaultClass::PartialTrailingLine => {
                // Always exactly one: there is only one trailing line.
                let last = lines.len() - 1;
                let line = &mut lines[last];
                line.truncate(line.len() / 2);
                // A half-row must not still look like a full row.
                if line.split(',').count() == ROW_FIELDS {
                    line.truncate(line.find(',').unwrap_or(1));
                }
                report.partial_tails = 1;
                // The defining trait: the writer has not finished the
                // line, so there is no newline after it.
                let mut out = rejoin(&lines);
                out.pop();
                return (out, report);
            }
            FaultClass::MidStreamRotation => {
                let header = lines[0].clone();
                let mut victims = pick(&mut rng, data, quota);
                victims.sort_unstable_by(|a, b| b.cmp(a));
                for idx in victims {
                    lines.insert(idx, header.clone());
                    report.rotations += 1;
                }
            }
            FaultClass::ShardSkewedIds => {
                // Assign each distinct drive the next id that hashes to
                // shard 0 of 4 (matching the serving router's SplitMix64
                // partition): every row stays valid, ids stay distinct,
                // but one shard receives the entire fleet. `rate` does
                // not apply — skew is all-or-nothing by nature.
                // BTreeMap so the remapping is a function of row content
                // alone — no hasher state can reorder the candidate walk.
                let mut remap: std::collections::BTreeMap<String, u64> =
                    std::collections::BTreeMap::new();
                let mut candidate = 0u64;
                for idx in data {
                    let line = &mut lines[idx];
                    let mut fields: Vec<&str> = line.split(',').collect();
                    if fields.len() != ROW_FIELDS {
                        continue;
                    }
                    let id = *remap.entry(fields[0].to_string()).or_insert_with(|| loop {
                        let c = candidate;
                        candidate += 1;
                        if SplitMix64::new(c).next().is_multiple_of(4) {
                            break c;
                        }
                    });
                    let id = id.to_string();
                    fields[0] = &id;
                    *line = fields.join(",");
                    report.skewed_rows += 1;
                }
            }
            FaultClass::HotFeedBurst => {
                // Re-append a copy of the trailing `quota` data rows; a
                // first-write-wins streaming reader must drop every one
                // of them as stale, counted, with no alarm impact.
                let start = lines.len() - quota.min(n_rows);
                let burst: Vec<String> = lines[start..].to_vec();
                report.burst_rows = burst.len();
                lines.extend(burst);
            }
            FaultClass::TrainerPanic
            | FaultClass::PoisonedBuffer
            | FaultClass::CrashDuringPromotion
            | FaultClass::RegressingCandidate => {
                // Lifecycle faults are process-level, not byte-level: the
                // stream passes through unchanged and nothing is counted.
                // The gauntlet maps these onto seeded lifecycle
                // injections (trainer panics, NaN buffer pushes, crash
                // cut points, inverted training labels) instead.
            }
        }
        (rejoin(&lines), report)
    }

    /// Flip one pseudo-random bit of `bytes` in place; `salt` varies the
    /// choice so one injector can produce many distinct flips.
    ///
    /// Returns `None` when `bytes` is empty.
    pub fn flip_bit(&self, bytes: &mut [u8], salt: u64) -> Option<BitFlip> {
        if bytes.is_empty() {
            return None;
        }
        let mut rng = SplitMix64::new(self.seed ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let offset = (rng.next() % bytes.len() as u64) as usize;
        let bit = (rng.next() % 8) as u8;
        bytes[offset] ^= 1 << bit;
        Some(BitFlip { offset, bit })
    }
}

/// One replayable corruption scenario: a seed, a fault class and a rate,
/// round-trippable through a single manifest line.
///
/// The manifest line — `seed=<n> class=<label> rate=<f>` — is the
/// committed artifact: because [`FaultInjector`] is a pure function of
/// `(seed, input, class, rate)`, regenerating from a parsed manifest is
/// byte-identical to the run that produced it, forever. Extra
/// whitespace-separated `key=value` tokens (checksums, notes) are
/// ignored by [`ScenarioReplay::parse`] so corpora can annotate lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioReplay {
    /// The injector seed.
    pub seed: u64,
    /// Which corruption to inject.
    pub class: FaultClass,
    /// Fraction of data rows to corrupt (clamped to `[0, 1]` on apply).
    pub rate: f64,
}

impl ScenarioReplay {
    /// Serialize to the one-line manifest form.
    #[must_use]
    pub fn manifest_line(&self) -> String {
        format!(
            "seed={} class={} rate={}",
            self.seed,
            self.class.label(),
            self.rate
        )
    }

    /// Parse a manifest line (`seed=… class=… rate=…`, any order,
    /// unknown tokens ignored). Returns `None` when any of the three
    /// required keys is missing or malformed.
    #[must_use]
    pub fn parse(line: &str) -> Option<ScenarioReplay> {
        let mut seed = None;
        let mut class = None;
        let mut rate = None;
        for token in line.split_whitespace() {
            let Some((key, value)) = token.split_once('=') else {
                continue;
            };
            match key {
                "seed" => seed = value.parse::<u64>().ok(),
                "class" => class = FaultClass::from_label(value),
                "rate" => rate = value.parse::<f64>().ok(),
                _ => {}
            }
        }
        Some(ScenarioReplay {
            seed: seed?,
            class: class?,
            rate: rate?,
        })
    }

    /// Run the scenario against `text`; identical to
    /// [`FaultInjector::corrupt_csv`] with this scenario's parameters.
    #[must_use]
    pub fn apply(&self, text: &str) -> (String, InjectionReport) {
        FaultInjector::new(self.seed).corrupt_csv(text, self.class, self.rate)
    }
}

/// Join lines back into newline-terminated text.
fn rejoin(lines: &[String]) -> String {
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Pick `quota` distinct indices from `range` via a seeded partial
/// Fisher–Yates shuffle. The result is unordered.
fn pick(rng: &mut SplitMix64, range: std::ops::Range<usize>, quota: usize) -> Vec<usize> {
    let mut indices: Vec<usize> = range.collect();
    let quota = quota.min(indices.len());
    for i in 0..quota {
        let j = i + (rng.next() % (indices.len() - i) as u64) as usize;
        indices.swap(i, j);
    }
    indices.truncate(quota);
    indices
}

/// Replace one feature field of a CSV row with `value`. Returns `false`
/// (and leaves the row alone) when the row does not have the expected
/// field count.
fn replace_feature(line: &mut String, rng: &mut SplitMix64, value: &str) -> bool {
    let mut fields: Vec<&str> = line.split(',').collect();
    if fields.len() != ROW_FIELDS {
        return false;
    }
    let slot = FIRST_FEATURE + (rng.next() % (ROW_FIELDS - FIRST_FEATURE) as u64) as usize;
    fields[slot] = value;
    *line = fields.join(",");
    true
}

/// Swap up to `quota` adjacent same-drive row pairs, keeping swaps at
/// least two rows apart so each produces exactly one timestamp descent.
/// Returns the number of pairs actually swapped.
fn swap_adjacent(lines: &mut [String], rng: &mut SplitMix64, quota: usize) -> usize {
    let drive_of = |line: &String| line.split(',').next().map(str::to_string);
    // Candidate positions i where rows i and i+1 share a drive.
    let mut candidates: Vec<usize> = (1..lines.len().saturating_sub(1))
        .filter(|&i| {
            let a = drive_of(&lines[i]);
            a.is_some() && a == drive_of(&lines[i + 1])
        })
        .collect();
    // Shuffle, then greedily accept non-adjacent positions.
    for i in (1..candidates.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        candidates.swap(i, j);
    }
    let mut accepted: Vec<usize> = Vec::new();
    for &i in &candidates {
        if accepted.len() >= quota {
            break;
        }
        if accepted.iter().all(|&a| a.abs_diff(i) > 2) {
            accepted.push(i);
        }
    }
    for &i in &accepted {
        lines.swap(i, i + 1);
    }
    accepted.len()
}

/// SplitMix64: tiny, seedable, dependency-free PRNG (public-domain
/// constants from Steele, Lea & Flood).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clean synthetic CSV: 3 drives × 20 hourly rows.
    fn clean_csv() -> String {
        let mut out = String::from("drive,failed,fail_hour,hour,a,b,c,d,e,f,g,h,i,j,k,l\n");
        for drive in 0..3 {
            for hour in 0..20 {
                out.push_str(&format!("{drive},0,,{hour}"));
                for f in 0..12 {
                    out.push_str(&format!(",{}", (drive + hour + f) % 7 + 1));
                }
                out.push('\n');
            }
        }
        out
    }

    #[test]
    fn corruption_is_deterministic() {
        let csv = clean_csv();
        for class in FaultClass::CSV_CORPUS {
            let (a, ra) = FaultInjector::new(7).corrupt_csv(&csv, class, 0.1);
            let (b, rb) = FaultInjector::new(7).corrupt_csv(&csv, class, 0.1);
            assert_eq!(a, b, "{class:?}");
            assert_eq!(ra, rb);
            let (c, _) = FaultInjector::new(8).corrupt_csv(&csv, class, 0.1);
            assert_ne!(a, c, "different seeds must differ for {class:?}");
        }
    }

    #[test]
    fn reports_count_exactly_what_changed() {
        let csv = clean_csv();
        let inj = FaultInjector::new(42);

        let (out, r) = inj.corrupt_csv(&csv, FaultClass::NanValue, 0.1);
        assert_eq!(r.nan_rows, 6, "10% of 60 rows");
        assert_eq!(out.matches("NaN").count(), 6);

        let (out, r) = inj.corrupt_csv(&csv, FaultClass::OutOfRangeValue, 0.1);
        assert_eq!(r.out_of_range_rows, 6);
        assert_eq!(out.matches("9e12").count(), 6);

        let (out, r) = inj.corrupt_csv(&csv, FaultClass::DroppedRow, 0.05);
        assert_eq!(r.dropped_rows, 3);
        assert_eq!(out.lines().count(), 1 + 60 - 3);

        let (out, r) = inj.corrupt_csv(&csv, FaultClass::DuplicatedTimestamp, 0.05);
        assert_eq!(r.duplicated_rows, 3);
        assert_eq!(out.lines().count(), 1 + 60 + 3);

        let (out, r) = inj.corrupt_csv(&csv, FaultClass::GarbageRow, 0.1);
        assert_eq!(r.garbage_rows, 6);
        assert_eq!(out.matches("%%garbage").count(), 6);
    }

    #[test]
    fn swaps_produce_exactly_one_descent_each() {
        let csv = clean_csv();
        let (out, r) =
            FaultInjector::new(3).corrupt_csv(&csv, FaultClass::OutOfOrderTimestamp, 0.1);
        assert!(r.swapped_pairs >= 1);
        // Count hour descents per drive in the corrupted stream.
        let mut descents = 0;
        let mut last: Option<(String, i64)> = None;
        for line in out.lines().skip(1) {
            let mut it = line.split(',');
            let drive = it.next().map(str::to_string).unwrap();
            let hour: i64 = it.nth(2).unwrap().parse().unwrap();
            if let Some((d, h)) = &last {
                if *d == drive && hour < *h {
                    descents += 1;
                }
            }
            last = Some((drive, hour));
        }
        assert_eq!(descents, r.swapped_pairs);
    }

    #[test]
    fn truncated_rows_no_longer_have_full_field_count() {
        let csv = clean_csv();
        let (out, r) = FaultInjector::new(9).corrupt_csv(&csv, FaultClass::TruncatedRow, 0.1);
        assert_eq!(r.truncated_rows, 6);
        let short = out
            .lines()
            .skip(1)
            .filter(|l| l.split(',').count() != 16)
            .count();
        assert_eq!(short, 6);
    }

    #[test]
    fn at_least_one_row_is_hit_even_at_tiny_rates() {
        let csv = clean_csv();
        let (_, r) = FaultInjector::new(1).corrupt_csv(&csv, FaultClass::NanValue, 1e-9);
        assert_eq!(r.nan_rows, 1);
    }

    #[test]
    fn header_is_never_touched() {
        let csv = clean_csv();
        let header = csv.lines().next().unwrap().to_string();
        for class in FaultClass::CSV_CORPUS {
            for seed in 0..10 {
                let (out, _) = FaultInjector::new(seed).corrupt_csv(&csv, class, 0.5);
                assert_eq!(out.lines().next().unwrap(), header, "{class:?}/{seed}");
            }
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let original: Vec<u8> = (0..255).collect();
        for salt in 0..50 {
            let mut bytes = original.clone();
            let flip = FaultInjector::new(5).flip_bit(&mut bytes, salt).unwrap();
            let diff: Vec<usize> = (0..bytes.len())
                .filter(|&i| bytes[i] != original[i])
                .collect();
            assert_eq!(diff, vec![flip.offset]);
            assert_eq!(bytes[flip.offset] ^ original[flip.offset], 1 << flip.bit);
        }
        assert!(FaultInjector::new(5).flip_bit(&mut [], 0).is_none());
    }

    #[test]
    fn partial_trailing_line_is_cut_and_unterminated() {
        let csv = clean_csv();
        for seed in 0..10 {
            let (out, r) =
                FaultInjector::new(seed).corrupt_csv(&csv, FaultClass::PartialTrailingLine, 0.5);
            assert_eq!(r.partial_tails, 1);
            assert_eq!(r.total(), 1);
            assert!(!out.ends_with('\n'), "no newline after an in-flight append");
            let tail = out.lines().last().unwrap();
            assert_ne!(
                tail.split(',').count(),
                16,
                "half a row must not look whole: {tail:?}"
            );
            // Everything before the tail is untouched.
            let n = out.lines().count();
            assert_eq!(n, csv.lines().count());
            assert!(csv.starts_with(&out[..out.rfind('\n').unwrap() + 1]));
        }
    }

    #[test]
    fn rotation_inserts_exact_header_copies_mid_stream() {
        let csv = clean_csv();
        let header = csv.lines().next().unwrap();
        let (out, r) =
            FaultInjector::new(21).corrupt_csv(&csv, FaultClass::MidStreamRotation, 0.05);
        assert_eq!(r.rotations, 3, "5% of 60 rows");
        assert_eq!(out.lines().filter(|&l| l == header).count(), 1 + 3);
        assert_eq!(out.lines().count(), 1 + 60 + 3);
        assert_eq!(out.lines().next().unwrap(), header);
        // Inserted headers are mid-stream, not stacked at the top.
        assert_ne!(out.lines().nth(1).unwrap(), header);
    }

    #[test]
    fn stream_corpus_is_deterministic() {
        let csv = clean_csv();
        for class in FaultClass::STREAM_CORPUS {
            let (a, ra) = FaultInjector::new(7).corrupt_csv(&csv, class, 0.1);
            let (b, rb) = FaultInjector::new(7).corrupt_csv(&csv, class, 0.1);
            assert_eq!(a, b, "{class:?}");
            assert_eq!(ra, rb);
            assert!(!class.label().is_empty());
        }
    }

    #[test]
    fn skewed_ids_all_land_on_one_shard_and_stay_distinct() {
        let csv = clean_csv();
        let (out, r) = FaultInjector::new(11).corrupt_csv(&csv, FaultClass::ShardSkewedIds, 1.0);
        assert_eq!(r.skewed_rows, 60, "every data row is remapped");
        let mut per_original: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, line) in out.lines().skip(1).enumerate() {
            let id: u64 = line.split(',').next().unwrap().parse().unwrap();
            assert_eq!(
                SplitMix64::new(id).next() % 4,
                0,
                "id {id} must hash to shard 0 of 4"
            );
            per_original.entry(id).or_default().push(i);
        }
        // 3 original drives → 3 distinct remapped ids, 20 rows each.
        assert_eq!(per_original.len(), 3);
        assert!(per_original.values().all(|rows| rows.len() == 20));
        // Only the drive column changed.
        for (a, b) in csv.lines().zip(out.lines()).skip(1) {
            assert_eq!(a.split_once(',').unwrap().1, b.split_once(',').unwrap().1);
        }
    }

    #[test]
    fn skewed_id_remap_is_byte_identical_across_runs() {
        // Regression for the BTreeMap migration: the id remapping walks
        // a candidate counter per *first occurrence*, so its output must
        // depend only on row order — never on hasher state.
        let csv = clean_csv();
        let (a, _) = FaultInjector::new(11).corrupt_csv(&csv, FaultClass::ShardSkewedIds, 1.0);
        let (b, _) = FaultInjector::new(11).corrupt_csv(&csv, FaultClass::ShardSkewedIds, 1.0);
        assert_eq!(a, b, "remapped csv must be byte-identical run to run");
    }

    #[test]
    fn hot_feed_burst_re_appends_the_tail_verbatim() {
        let csv = clean_csv();
        let (out, r) = FaultInjector::new(4).corrupt_csv(&csv, FaultClass::HotFeedBurst, 0.1);
        assert_eq!(r.burst_rows, 6, "10% of 60 rows");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1 + 60 + 6);
        let original: Vec<&str> = csv.lines().collect();
        assert_eq!(&lines[..61], &original[..], "prefix untouched");
        assert_eq!(&lines[61..], &original[55..], "burst copies the tail");
    }

    #[test]
    fn topology_corpus_is_deterministic() {
        let csv = clean_csv();
        for class in FaultClass::TOPOLOGY_CORPUS {
            let (a, ra) = FaultInjector::new(7).corrupt_csv(&csv, class, 0.1);
            let (b, rb) = FaultInjector::new(7).corrupt_csv(&csv, class, 0.1);
            assert_eq!(a, b, "{class:?}");
            assert_eq!(ra, rb);
            assert!(!class.label().is_empty());
        }
    }

    /// FNV-1a 64 over `bytes` — the corpus fingerprint.
    fn fnv64(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    #[test]
    fn scenario_replay_round_trips_through_its_manifest_line() {
        for class in FaultClass::ALL {
            let replay = ScenarioReplay {
                seed: 99,
                class,
                rate: 0.25,
            };
            let line = replay.manifest_line();
            assert_eq!(ScenarioReplay::parse(&line), Some(replay), "{line}");
        }
        // Unknown tokens are ignored; missing keys are refused.
        let with_extra = "rate=0.5 note=hello seed=3 class=garbage-row fnv=0xabc";
        let parsed = ScenarioReplay::parse(with_extra).unwrap();
        assert_eq!(parsed.seed, 3);
        assert_eq!(parsed.class, FaultClass::GarbageRow);
        assert_eq!(parsed.rate, 0.5);
        assert!(ScenarioReplay::parse("seed=3 rate=0.5").is_none());
        assert!(ScenarioReplay::parse("seed=x class=garbage-row rate=0.5").is_none());
    }

    #[test]
    fn committed_replay_corpus_regenerates_byte_identically() {
        let csv = clean_csv();
        let corpus = include_str!("../replay_corpus.txt");
        let mut checked = 0;
        for line in corpus.lines() {
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let replay = ScenarioReplay::parse(line)
                .unwrap_or_else(|| panic!("corpus line does not parse: {line}"));
            let committed = line
                .split_whitespace()
                .find_map(|t| t.strip_prefix("fnv=0x"))
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| panic!("corpus line has no fnv: {line}"));
            let (out, _) = replay.apply(&csv);
            let (again, _) = replay.apply(&csv);
            assert_eq!(out, again, "replay must be deterministic: {line}");
            assert_eq!(
                fnv64(out.as_bytes()),
                committed,
                "regenerated output drifted from the committed artifact; \
                 expected line: {} fnv={:#x}",
                replay.manifest_line(),
                fnv64(out.as_bytes())
            );
            checked += 1;
        }
        assert!(checked >= 6, "corpus must not silently shrink");
    }

    #[test]
    fn empty_and_header_only_inputs_are_left_alone() {
        let inj = FaultInjector::new(0);
        let (out, r) = inj.corrupt_csv("header\n", FaultClass::DroppedRow, 0.5);
        assert_eq!(out, "header\n");
        assert_eq!(r.total(), 0);
    }
}
