//! Min–max feature scaling.
//!
//! Neural networks need comparable input magnitudes; SMART features span
//! anything from 1–253 normalized values to unbounded raw counters. The
//! scaler maps each feature's training range to `[-1, 1]` and is stored
//! inside the trained model so detection applies the identical transform.

use hdd_json::{JsonCodec, JsonError, Value};

/// Per-feature min–max scaler to `[-1, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl JsonCodec for MinMaxScaler {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "mins".to_string(),
                Value::from_f64s(self.mins.iter().copied()),
            ),
            (
                "maxs".to_string(),
                Value::from_f64s(self.maxs.iter().copied()),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mins = value.f64_vec_field("mins")?;
        let maxs = value.f64_vec_field("maxs")?;
        if mins.is_empty() || mins.len() != maxs.len() {
            return Err(JsonError::new("scaler mins/maxs disagree"));
        }
        Ok(MinMaxScaler { mins, maxs })
    }
}

impl MinMaxScaler {
    /// Fit on training rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows disagree on length.
    #[must_use]
    pub fn fit<'a, I: IntoIterator<Item = &'a [f64]>>(rows: I) -> Self {
        let mut mins: Vec<f64> = Vec::new();
        let mut maxs: Vec<f64> = Vec::new();
        let mut any = false;
        for row in rows {
            if !any {
                mins = row.to_vec();
                maxs = row.to_vec();
                any = true;
                continue;
            }
            assert_eq!(row.len(), mins.len(), "inconsistent row length");
            for (i, &v) in row.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        assert!(any, "cannot fit a scaler on zero rows");
        MinMaxScaler { mins, maxs }
    }

    /// Number of features.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// `true` if fitted on zero-width data (never: `fit` panics instead).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// Scale one row into `out` (constant features map to `0.0`; values
    /// outside the training range extrapolate beyond `[-1, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn transform_into(&self, row: &[f64], out: &mut Vec<f64>) {
        assert_eq!(row.len(), self.mins.len(), "row length mismatch");
        out.clear();
        out.extend(row.iter().enumerate().map(|(i, &v)| {
            let span = self.maxs[i] - self.mins[i];
            if span <= 0.0 {
                0.0
            } else {
                2.0 * (v - self.mins[i]) / span - 1.0
            }
        }));
    }

    /// Scale one row, allocating.
    #[must_use]
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(row.len());
        self.transform_into(row, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_training_range_to_unit_interval() {
        let rows: Vec<Vec<f64>> = vec![vec![0.0, 10.0], vec![4.0, 20.0]];
        let s = MinMaxScaler::fit(rows.iter().map(Vec::as_slice));
        assert_eq!(s.transform(&[0.0, 10.0]), vec![-1.0, -1.0]);
        assert_eq!(s.transform(&[4.0, 20.0]), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[2.0, 15.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn constant_features_map_to_zero() {
        let rows: Vec<Vec<f64>> = vec![vec![5.0], vec![5.0]];
        let s = MinMaxScaler::fit(rows.iter().map(Vec::as_slice));
        assert_eq!(s.transform(&[5.0]), vec![0.0]);
        assert_eq!(s.transform(&[100.0]), vec![0.0]);
    }

    #[test]
    fn out_of_range_extrapolates() {
        let rows: Vec<Vec<f64>> = vec![vec![0.0], vec![10.0]];
        let s = MinMaxScaler::fit(rows.iter().map(Vec::as_slice));
        assert!(s.transform(&[20.0])[0] > 1.0);
        assert!(s.transform(&[-10.0])[0] < -1.0);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn rejects_empty() {
        let rows: Vec<Vec<f64>> = vec![];
        let _ = MinMaxScaler::fit(rows.iter().map(Vec::as_slice));
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn rejects_wrong_width() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0]];
        let s = MinMaxScaler::fit(rows.iter().map(Vec::as_slice));
        let _ = s.transform(&[1.0]);
    }

    #[test]
    fn len_matches() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0, 3.0]];
        let s = MinMaxScaler::fit(rows.iter().map(Vec::as_slice));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
