//! The multi-layer perceptron and its backpropagation trainer.

use crate::rng::TrainRng;
use crate::scale::MinMaxScaler;
use hdd_json::{JsonCodec, JsonError, Value};
use std::fmt;

/// Hidden/output unit activation.
///
/// The paper's baseline is a 2013-era network: logistic sigmoid units with
/// naive uniform weight initialization. That configuration learns large
/// clean datasets adequately but is slow and unstable on small noisy ones
/// — which is exactly the behaviour the paper reports for the BP ANN on
/// family "Q" (§V-B1). `Tanh` with Xavier initialization is provided as a
/// modern alternative for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Logistic sigmoid, naive `U(-0.5, 0.5)` init (the paper's baseline).
    #[default]
    Sigmoid,
    /// `tanh` with Xavier init (modern; ablation only).
    Tanh,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative of the activation, given the activated output.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }

    /// Map a `±1`-convention target to the activation's output range
    /// (with the classic 0.1/0.9 margin that keeps sigmoid units out of
    /// saturation).
    fn encode_target(self, target: f64) -> f64 {
        match self {
            Activation::Sigmoid => 0.5 + 0.4 * target.clamp(-1.0, 1.0),
            Activation::Tanh => 0.9 * target.clamp(-1.0, 1.0),
        }
    }

    /// Map a network output back to the `±1` convention (negative ⇒
    /// failing).
    fn decode_output(self, output: f64) -> f64 {
        match self {
            Activation::Sigmoid => (output - 0.5) * 2.0,
            Activation::Tanh => output,
        }
    }
}

/// Training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnConfig {
    /// Layer sizes, input first, output last (e.g. `[13, 13, 1]`).
    pub layers: Vec<usize>,
    /// SGD learning rate (0.1 in the paper).
    pub learning_rate: f64,
    /// Maximum training epochs (400 in the paper).
    pub max_epochs: usize,
    /// Stop early when the epoch's mean squared error falls below this.
    pub target_mse: f64,
    /// Weight-initialization and shuffling seed.
    pub seed: u64,
    /// Unit activation and initialization style.
    pub activation: Activation,
}

impl AnnConfig {
    /// A configuration with the paper's training hyper-parameters
    /// (`learning_rate = 0.1`, `max_epochs = 400`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layers are given, any layer is empty, or
    /// the output layer is not a single unit.
    #[must_use]
    pub fn new(layers: Vec<usize>) -> Self {
        assert!(layers.len() >= 2, "need at least input and output layers");
        assert!(layers.iter().all(|&n| n > 0), "layers must be non-empty");
        assert_eq!(
            layers[layers.len() - 1],
            1,
            "this baseline is a single-output regressor/classifier"
        );
        AnnConfig {
            layers,
            learning_rate: 0.1,
            max_epochs: 400,
            target_mse: 1e-4,
            seed: 0xA22,
            activation: Activation::default(),
        }
    }

    /// The paper's topology for a given input dimensionality: 13 features
    /// → 13-13-1, 12 → 12-20-1, 19 → 19-30-1, otherwise one hidden layer
    /// of `max(in, 10)` units.
    #[must_use]
    pub fn for_input_dim(dim: usize) -> Self {
        let hidden = match dim {
            13 => 13,
            12 => 20,
            19 => 30,
            d => d.max(10),
        };
        AnnConfig::new(vec![dim, hidden, 1])
    }
}

/// Why ANN training failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnError {
    /// No training rows were provided.
    NoSamples,
    /// Rows/targets disagree with the configuration or contain non-finite
    /// values.
    Invalid(String),
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::NoSamples => f.write_str("training set is empty"),
            AnnError::Invalid(reason) => write!(f, "invalid training data: {reason}"),
        }
    }
}

impl std::error::Error for AnnError {}

/// One dense layer: `out = tanh(W · in + b)`.
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    /// `weights[j]` are unit `j`'s input weights.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut TrainRng, activation: Activation) -> Self {
        let bound = match activation {
            // 2013-era naive init.
            Activation::Sigmoid => 0.5,
            // Xavier init.
            Activation::Tanh => (6.0 / (inputs + outputs) as f64).sqrt(),
        };
        Layer {
            weights: (0..outputs)
                .map(|_| (0..inputs).map(|_| rng.range(-bound, bound)).collect())
                .collect(),
            biases: vec![0.0; outputs],
        }
    }

    fn forward(&self, input: &[f64], out: &mut Vec<f64>, activation: Activation) {
        out.clear();
        for (w_row, b) in self.weights.iter().zip(&self.biases) {
            let sum: f64 = w_row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>() + b;
            out.push(activation.apply(sum));
        }
    }
}

/// A trained backpropagation network with its input scaler.
#[derive(Debug, Clone, PartialEq)]
pub struct BpAnn {
    layers: Vec<Layer>,
    scaler: MinMaxScaler,
    activation: Activation,
    trained_epochs: usize,
    final_mse: f64,
}

impl BpAnn {
    /// Train a network on `(inputs, targets)`; targets are `±1` for the
    /// paper's good/failed encoding but any values in `(-1, 1)` work.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError`] if the data is empty, dimensions disagree with
    /// `config.layers[0]`, or any value is non-finite.
    pub fn train(
        config: &AnnConfig,
        inputs: &[Vec<f64>],
        targets: &[f64],
    ) -> Result<BpAnn, AnnError> {
        if inputs.is_empty() {
            return Err(AnnError::NoSamples);
        }
        if inputs.len() != targets.len() {
            return Err(AnnError::Invalid(format!(
                "{} inputs but {} targets",
                inputs.len(),
                targets.len()
            )));
        }
        let dim = config.layers[0];
        for (i, row) in inputs.iter().enumerate() {
            if row.len() != dim {
                return Err(AnnError::Invalid(format!(
                    "sample {i} has {} features, expected {dim}",
                    row.len()
                )));
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(AnnError::Invalid(format!("sample {i} is not finite")));
            }
        }
        if targets.iter().any(|t| !t.is_finite()) {
            return Err(AnnError::Invalid("non-finite target".to_string()));
        }

        let scaler = MinMaxScaler::fit(inputs.iter().map(Vec::as_slice));
        let scaled: Vec<Vec<f64>> = inputs.iter().map(|r| scaler.transform(r)).collect();

        let activation = config.activation;
        let encoded: Vec<f64> = targets
            .iter()
            .map(|&t| activation.encode_target(t))
            .collect();
        let mut rng = TrainRng::seed_from_u64(config.seed);
        let mut layers: Vec<Layer> = config
            .layers
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng, activation))
            .collect();

        let mut order: Vec<usize> = (0..scaled.len()).collect();
        let mut activations: Vec<Vec<f64>> = vec![Vec::new(); layers.len() + 1];
        let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); layers.len()];
        let mut trained_epochs = 0;
        let mut final_mse = f64::INFINITY;

        for epoch in 0..config.max_epochs {
            rng.shuffle(&mut order);
            let mut sse = 0.0;
            for &i in &order {
                // Forward pass.
                activations[0].clear();
                activations[0].extend_from_slice(&scaled[i]);
                for (l, layer) in layers.iter().enumerate() {
                    let (input, output) = split_two(&mut activations, l);
                    layer.forward(input, output, activation);
                }
                let y = activations[layers.len()][0];
                let err = y - encoded[i];
                sse += err * err;

                // Backward pass: delta = dE/d(preactivation).
                for l in (0..layers.len()).rev() {
                    let n_units = layers[l].biases.len();
                    let mut layer_deltas = std::mem::take(&mut deltas[l]);
                    layer_deltas.clear();
                    for j in 0..n_units {
                        let out = activations[l + 1][j];
                        let dact = activation.derivative_from_output(out);
                        let upstream = if l == layers.len() - 1 {
                            err
                        } else {
                            layers[l + 1]
                                .weights
                                .iter()
                                .zip(&deltas[l + 1])
                                .map(|(w_row, d)| w_row[j] * d)
                                .sum()
                        };
                        layer_deltas.push(upstream * dact);
                    }
                    deltas[l] = layer_deltas;
                }
                // Weight update.
                for (l, layer) in layers.iter_mut().enumerate() {
                    for (j, d) in deltas[l].iter().enumerate() {
                        let step = config.learning_rate * d;
                        for (w, x) in layer.weights[j].iter_mut().zip(&activations[l]) {
                            *w -= step * x;
                        }
                        layer.biases[j] -= step;
                    }
                }
            }
            trained_epochs = epoch + 1;
            final_mse = sse / scaled.len() as f64;
            if final_mse < config.target_mse {
                break;
            }
        }

        Ok(BpAnn {
            layers,
            scaler,
            activation,
            trained_epochs,
            final_mse,
        })
    }

    /// Network output in `(-1, 1)`; positive means "good" under the
    /// paper's encoding.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut current = self.scaler.transform(features);
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward(&current, &mut next, self.activation);
            std::mem::swap(&mut current, &mut next);
        }
        self.activation.decode_output(current[0])
    }

    /// `true` when the network classifies the sample as failed
    /// (output below `threshold`, conventionally `0.0`).
    #[must_use]
    pub fn is_failed(&self, features: &[f64], threshold: f64) -> bool {
        self.predict(features) < threshold
    }

    /// Epochs actually trained (may stop early on `target_mse`).
    #[must_use]
    pub fn trained_epochs(&self) -> usize {
        self.trained_epochs
    }

    /// Final epoch's training MSE.
    #[must_use]
    pub fn final_mse(&self) -> f64 {
        self.final_mse
    }

    /// Dimensionality of the feature vectors the network scores.
    #[must_use]
    pub fn n_inputs(&self) -> usize {
        self.scaler.len()
    }
}

impl JsonCodec for Layer {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "weights".to_string(),
                Value::Arr(
                    self.weights
                        .iter()
                        .map(|row| Value::from_f64s(row.iter().copied()))
                        .collect(),
                ),
            ),
            (
                "biases".to_string(),
                Value::from_f64s(self.biases.iter().copied()),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let weights = value
            .field("weights")?
            .as_arr()
            .ok_or_else(|| JsonError::expected("array", "weights"))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| JsonError::expected("array of arrays", "weights"))?
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| JsonError::expected("number", "weights"))
                    })
                    .collect::<Result<Vec<f64>, JsonError>>()
            })
            .collect::<Result<Vec<Vec<f64>>, JsonError>>()?;
        let biases = value.f64_vec_field("biases")?;
        if weights.is_empty() || weights.len() != biases.len() {
            return Err(JsonError::new("layer weights/biases disagree"));
        }
        let inputs = weights[0].len();
        if inputs == 0 || weights.iter().any(|row| row.len() != inputs) {
            return Err(JsonError::new("layer weight rows disagree on length"));
        }
        Ok(Layer { weights, biases })
    }
}

impl JsonCodec for BpAnn {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            (
                "activation".to_string(),
                Value::Str(
                    match self.activation {
                        Activation::Sigmoid => "sigmoid",
                        Activation::Tanh => "tanh",
                    }
                    .to_string(),
                ),
            ),
            (
                "trained_epochs".to_string(),
                Value::Num(self.trained_epochs as f64),
            ),
            ("scaler".to_string(), self.scaler.to_json()),
            (
                "layers".to_string(),
                Value::Arr(self.layers.iter().map(JsonCodec::to_json).collect()),
            ),
        ];
        // An untrained network (max_epochs = 0) has an infinite MSE, which
        // JSON cannot carry; omit the field and restore the sentinel on load.
        if self.final_mse.is_finite() {
            fields.push(("final_mse".to_string(), Value::Num(self.final_mse)));
        }
        Value::Obj(fields)
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let activation = match value.str_field("activation")? {
            "sigmoid" => Activation::Sigmoid,
            "tanh" => Activation::Tanh,
            other => {
                return Err(JsonError::new(format!("unknown activation `{other}`")));
            }
        };
        let scaler = MinMaxScaler::from_json(value.field("scaler")?)?;
        let layers = value
            .field("layers")?
            .as_arr()
            .ok_or_else(|| JsonError::expected("array", "layers"))?
            .iter()
            .map(Layer::from_json)
            .collect::<Result<Vec<Layer>, JsonError>>()?;
        if layers.is_empty() {
            return Err(JsonError::new("network has no layers"));
        }
        // Layer widths must chain: scaler → hidden layers → single output.
        let mut width = scaler.len();
        for (i, layer) in layers.iter().enumerate() {
            if layer.weights[0].len() != width {
                return Err(JsonError::new(format!("layer {i} input width mismatch")));
            }
            width = layer.biases.len();
        }
        if width != 1 {
            return Err(JsonError::new("output layer must have one unit"));
        }
        Ok(BpAnn {
            layers,
            scaler,
            activation,
            trained_epochs: value.usize_field("trained_epochs")?,
            final_mse: match value.get("final_mse") {
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| JsonError::expected("number", "final_mse"))?,
                None => f64::INFINITY,
            },
        })
    }
}

/// Borrow `v[l]` immutably and `v[l+1]` mutably.
fn split_two(v: &mut [Vec<f64>], l: usize) -> (&[f64], &mut Vec<f64>) {
    let (a, b) = v.split_at_mut(l + 1);
    (&a[l], &mut b[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_problem(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![f64::from(i as u32 % 20), f64::from(i as u32 % 7)])
            .collect();
        let targets: Vec<f64> = inputs
            .iter()
            .map(|r| if r[0] < 10.0 { 1.0 } else { -1.0 })
            .collect();
        (inputs, targets)
    }

    #[test]
    fn learns_linear_separation() {
        let (inputs, targets) = linear_problem(200);
        let mut config = AnnConfig::new(vec![2, 6, 1]);
        config.max_epochs = 200;
        let ann = BpAnn::train(&config, &inputs, &targets).unwrap();
        assert!(ann.predict(&[2.0, 3.0]) > 0.5);
        assert!(ann.predict(&[18.0, 3.0]) < -0.5);
        assert!(!ann.is_failed(&[2.0, 3.0], 0.0));
        assert!(ann.is_failed(&[18.0, 3.0], 0.0));
    }

    #[test]
    fn early_stops_on_target_mse() {
        let (inputs, targets) = linear_problem(100);
        let mut config = AnnConfig::new(vec![2, 6, 1]);
        config.max_epochs = 10_000;
        config.target_mse = 0.5; // trivially reached
        let ann = BpAnn::train(&config, &inputs, &targets).unwrap();
        assert!(ann.trained_epochs() < 100, "{}", ann.trained_epochs());
        assert!(ann.final_mse() < 0.5);
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let (inputs, targets) = linear_problem(50);
        let config = AnnConfig::new(vec![2, 4, 1]);
        let a = BpAnn::train(&config, &inputs, &targets).unwrap();
        let b = BpAnn::train(&config, &inputs, &targets).unwrap();
        assert_eq!(a, b);
        let mut other = config.clone();
        other.seed ^= 1;
        let c = BpAnn::train(&other, &inputs, &targets).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        let config = AnnConfig::new(vec![2, 4, 1]);
        assert_eq!(
            BpAnn::train(&config, &[], &[]).unwrap_err(),
            AnnError::NoSamples
        );
        let err = BpAnn::train(&config, &[vec![1.0, 2.0]], &[1.0, -1.0]).unwrap_err();
        assert!(matches!(err, AnnError::Invalid(_)), "{err}");
        let err = BpAnn::train(&config, &[vec![1.0]], &[1.0]).unwrap_err();
        assert!(err.to_string().contains("features"), "{err}");
    }

    #[test]
    fn rejects_non_finite() {
        let config = AnnConfig::new(vec![1, 2, 1]);
        let err = BpAnn::train(&config, &[vec![f64::NAN]], &[1.0]).unwrap_err();
        assert!(matches!(err, AnnError::Invalid(_)));
        let err = BpAnn::train(&config, &[vec![1.0]], &[f64::INFINITY]).unwrap_err();
        assert!(matches!(err, AnnError::Invalid(_)));
    }

    #[test]
    fn paper_topologies() {
        assert_eq!(AnnConfig::for_input_dim(13).layers, vec![13, 13, 1]);
        assert_eq!(AnnConfig::for_input_dim(12).layers, vec![12, 20, 1]);
        assert_eq!(AnnConfig::for_input_dim(19).layers, vec![19, 30, 1]);
        assert_eq!(AnnConfig::for_input_dim(5).layers, vec![5, 10, 1]);
    }

    #[test]
    #[should_panic(expected = "single-output")]
    fn config_rejects_multi_output() {
        let _ = AnnConfig::new(vec![3, 4, 2]);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn config_rejects_single_layer() {
        let _ = AnnConfig::new(vec![3]);
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let (inputs, targets) = linear_problem(80);
        let mut config = AnnConfig::new(vec![2, 5, 1]);
        config.max_epochs = 50;
        let ann = BpAnn::train(&config, &inputs, &targets).unwrap();
        let text = hdd_json::to_string(&ann.to_json());
        let back = BpAnn::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ann);
        for i in 0..30 {
            let q = [f64::from(i), f64::from(i % 5)];
            assert_eq!(back.predict(&q).to_bits(), ann.predict(&q).to_bits());
        }
        assert_eq!(back.n_inputs(), 2);
    }

    #[test]
    fn json_decode_rejects_inconsistent_layers() {
        let (inputs, targets) = linear_problem(40);
        let config = AnnConfig::new(vec![2, 3, 1]);
        let ann = BpAnn::train(&config, &inputs, &targets).unwrap();
        let text = hdd_json::to_string(&ann.to_json());
        // Prepend a bogus 3-input layer: widths no longer chain.
        let broken = text.replacen(
            "\"layers\":[",
            "\"layers\":[{\"weights\":[[1,2,3]],\"biases\":[0]},",
            1,
        );
        let doc = hdd_json::parse(&broken).unwrap();
        assert!(BpAnn::from_json(&doc).is_err());
        // Unknown activation name.
        let bad = text.replace("sigmoid", "relu");
        let doc = hdd_json::parse(&bad).unwrap();
        assert!(BpAnn::from_json(&doc).is_err());
    }

    #[test]
    fn output_is_bounded() {
        let (inputs, targets) = linear_problem(50);
        let config = AnnConfig::new(vec![2, 4, 1]);
        let ann = BpAnn::train(&config, &inputs, &targets).unwrap();
        for i in 0..50 {
            let y = ann.predict(&[f64::from(i), 1.0]);
            assert!((-1.0..=1.0).contains(&y));
        }
    }
}
