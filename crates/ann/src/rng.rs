//! Seeded sequential PRNG for weight initialization and epoch shuffling.
//!
//! Training only needs a reproducible stream, not cryptographic quality:
//! a SplitMix64 sequence is plenty and keeps the crate dependency-free.

/// A sequential SplitMix64 generator.
#[derive(Debug, Clone)]
pub(crate) struct TrainRng {
    state: u64,
}

impl TrainRng {
    pub(crate) fn seed_from_u64(seed: u64) -> Self {
        TrainRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub(crate) fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Unbiased index in `[0, n)` via rejection sampling.
    fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        let n = n as u64;
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub(crate) fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.index(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = TrainRng::seed_from_u64(42);
        let mut b = TrainRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = TrainRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.range(-0.5, 0.5);
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TrainRng::seed_from_u64(3);
        let mut items: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(items, sorted, "a 100-element shuffle should move something");
    }
}
