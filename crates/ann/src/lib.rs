//! Backpropagation artificial neural network — the paper's baseline.
//!
//! The DSN'14 paper compares its CART models against the state of the art:
//! the plain BP ANN drive-failure predictor of the authors' earlier MSST'13
//! work. This crate implements that baseline from scratch: a dense
//! feed-forward network with one hidden layer (topologies 19-30-1, 13-13-1
//! and 12-20-1 in the paper's Table III), `tanh` activations, min–max
//! input scaling, and plain stochastic-gradient backpropagation with
//! learning rate 0.1 for up to 400 epochs.
//!
//! # Example
//!
//! ```
//! use hdd_ann::{AnnConfig, BpAnn};
//!
//! // XOR-ish: the network must learn a non-linear boundary.
//! let inputs: Vec<Vec<f64>> = vec![
//!     vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0],
//! ];
//! let targets = vec![-1.0, 1.0, 1.0, -1.0];
//! let mut config = AnnConfig::new(vec![2, 8, 1]);
//! config.max_epochs = 3000;
//! config.learning_rate = 0.3;
//! let ann = BpAnn::train(&config, &inputs, &targets)?;
//! assert!(ann.predict(&[0.0, 1.0]) > 0.0);
//! assert!(ann.predict(&[1.0, 1.0]) < 0.0);
//! # Ok::<(), hdd_ann::AnnError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod mlp;
mod rng;
pub mod scale;

pub use mlp::{Activation, AnnConfig, AnnError, BpAnn};
pub use scale::MinMaxScaler;
