//! The in-drive SMART threshold algorithm.
//!
//! Firmware compares each normalized attribute against a vendor threshold
//! and trips when any crosses. "To avoid heavy false alarm cost, they set
//! the thresholds conservatively to keep the FAR to a minimum at the
//! expense of failure detection rate" (§II) — detecting only 3–10% of
//! failures. We reproduce that behaviour by placing each threshold a
//! safety margin below the *entire* good training population's minimum.

use hdd_eval::Predictor;
use hdd_json::{JsonCodec, JsonError, Value};

/// Per-feature static thresholds: a sample trips when any feature falls
/// below its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdModel {
    thresholds: Vec<f64>,
}

impl JsonCodec for ThresholdModel {
    fn to_json(&self) -> Value {
        Value::Obj(vec![(
            "thresholds".to_string(),
            Value::from_f64s(self.thresholds.iter().copied()),
        )])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let thresholds = value.f64_vec_field("thresholds")?;
        if thresholds.is_empty() {
            return Err(JsonError::new("threshold model has no features"));
        }
        Ok(ThresholdModel { thresholds })
    }
}

impl ThresholdModel {
    /// Fit vendor-style thresholds from good-drive samples only: each
    /// feature's threshold is the observed minimum minus `margin` times
    /// the observed spread (vendors never see the failed population when
    /// they set these).
    ///
    /// # Panics
    ///
    /// Panics if `good` is empty, rows disagree on length, or `margin` is
    /// negative.
    #[must_use]
    pub fn fit(good: &[Vec<f64>], margin: f64) -> Self {
        assert!(!good.is_empty(), "need good samples");
        assert!(margin >= 0.0, "margin must be non-negative");
        let dim = good[0].len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in good {
            assert_eq!(row.len(), dim, "inconsistent row length");
            for (i, &v) in row.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        let thresholds = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| lo - margin * (hi - lo).max(1.0))
            .collect();
        ThresholdModel { thresholds }
    }

    /// The fitted thresholds.
    #[must_use]
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// `true` when any feature is below its threshold.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than the fitted dimensionality.
    #[must_use]
    pub fn trips(&self, features: &[f64]) -> bool {
        self.thresholds
            .iter()
            .enumerate()
            .any(|(i, &t)| features[i] < t)
    }
}

impl Predictor for ThresholdModel {
    fn n_features(&self) -> usize {
        self.thresholds.len()
    }

    fn score(&self, features: &[f64]) -> f64 {
        if self.trips(features) {
            -1.0
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> Vec<Vec<f64>> {
        (0..50)
            .map(|i| vec![100.0 + f64::from(i % 10), 50.0 + f64::from(i % 5)])
            .collect()
    }

    #[test]
    fn never_trips_on_training_range() {
        let model = ThresholdModel::fit(&good(), 0.5);
        for row in good() {
            assert!(!model.trips(&row));
        }
    }

    #[test]
    fn trips_on_deep_excursions_only() {
        let model = ThresholdModel::fit(&good(), 0.5);
        // Mild dip below the observed min: still inside the margin.
        assert!(!model.trips(&[98.0, 50.0]));
        // Deep excursion: trips.
        assert!(model.trips(&[40.0, 50.0]));
        assert!(model.trips(&[105.0, 10.0]));
    }

    #[test]
    fn zero_margin_trips_just_below_min() {
        let model = ThresholdModel::fit(&good(), 0.0);
        assert!(model.trips(&[99.9, 50.0]));
    }

    #[test]
    fn scorer_convention() {
        let model = ThresholdModel::fit(&good(), 0.5);
        assert_eq!(model.score(&[100.0, 52.0]), 1.0);
        assert_eq!(model.score(&[0.0, 0.0]), -1.0);
    }

    #[test]
    #[should_panic(expected = "need good samples")]
    fn rejects_empty() {
        let _ = ThresholdModel::fit(&[], 0.5);
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let model = ThresholdModel::fit(&good(), 0.5);
        let text = hdd_json::to_string(&model.to_json());
        let back = ThresholdModel::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, model);
        assert_eq!(back.n_features(), 2);
        for q in [[100.0, 52.0], [0.0, 0.0], [99.0, 49.0]] {
            assert_eq!(back.score(&q).to_bits(), model.score(&q).to_bits());
        }
        assert!(
            ThresholdModel::from_json(&hdd_json::parse(r#"{"thresholds":[]}"#).unwrap()).is_err()
        );
    }
}
