//! Wang et al.'s Mahalanobis-distance anomaly detector.
//!
//! A baseline Mahalanobis space is built from *good-drive* data only
//! (mean vector and covariance matrix); a sample is anomalous when its
//! distance from the baseline exceeds a threshold. §II reports ~67%
//! detection at zero FAR for the mRMR/FMMEA-filtered variant.

use hdd_eval::Predictor;
use hdd_json::{JsonCodec, JsonError, Value};

/// Mahalanobis-distance anomaly detector with a fitted baseline space.
#[derive(Debug, Clone, PartialEq)]
pub struct Mahalanobis {
    mean: Vec<f64>,
    /// Inverse covariance (precision) matrix, row-major.
    precision: Vec<f64>,
    dim: usize,
    threshold: f64,
}

impl JsonCodec for Mahalanobis {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "mean".to_string(),
                Value::from_f64s(self.mean.iter().copied()),
            ),
            (
                "precision".to_string(),
                Value::from_f64s(self.precision.iter().copied()),
            ),
            ("threshold".to_string(), Value::Num(self.threshold)),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mean = value.f64_vec_field("mean")?;
        let precision = value.f64_vec_field("precision")?;
        let threshold = value.f64_field("threshold")?;
        let dim = mean.len();
        if dim == 0 {
            return Err(JsonError::new("mahalanobis space has no features"));
        }
        if precision.len() != dim * dim {
            return Err(JsonError::new(format!(
                "precision matrix has {} entries, expected {}",
                precision.len(),
                dim * dim
            )));
        }
        if threshold.is_nan() || threshold <= 0.0 {
            return Err(JsonError::new("threshold must be positive"));
        }
        Ok(Mahalanobis {
            mean,
            precision,
            dim,
            threshold,
        })
    }
}

impl Mahalanobis {
    /// Fit the baseline space from good samples and set the anomaly
    /// `threshold` (in distance units; a χ²-style rule of thumb is
    /// `sqrt(dim) + a few`).
    ///
    /// # Panics
    ///
    /// Panics if `good` has fewer than `dim + 2` rows, rows disagree on
    /// length, or `threshold` is not positive.
    #[must_use]
    pub fn fit(good: &[Vec<f64>], threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(!good.is_empty(), "need good samples");
        let dim = good[0].len();
        assert!(
            good.len() >= dim + 2,
            "need more samples than dimensions to estimate covariance"
        );
        let n = good.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in good {
            assert_eq!(row.len(), dim, "inconsistent row length");
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        // Covariance with a ridge on the diagonal for invertibility.
        let mut cov = vec![0.0; dim * dim];
        for row in good {
            for i in 0..dim {
                let di = row[i] - mean[i];
                for j in 0..dim {
                    cov[i * dim + j] += di * (row[j] - mean[j]);
                }
            }
        }
        for v in &mut cov {
            *v /= n;
        }
        for i in 0..dim {
            cov[i * dim + i] += 1e-6 + 1e-4 * cov[i * dim + i];
        }
        let precision = invert(&cov, dim);
        Mahalanobis {
            mean,
            precision,
            dim,
            threshold,
        }
    }

    /// The Mahalanobis distance of a sample from the baseline space.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than the fitted dimensionality.
    #[must_use]
    pub fn distance(&self, features: &[f64]) -> f64 {
        let d: Vec<f64> = (0..self.dim).map(|i| features[i] - self.mean[i]).collect();
        let mut q = 0.0;
        for i in 0..self.dim {
            let row = &self.precision[i * self.dim..(i + 1) * self.dim];
            let acc: f64 = row.iter().zip(&d).map(|(p, dj)| p * dj).sum();
            q += d[i] * acc;
        }
        q.max(0.0).sqrt()
    }

    /// `true` when the sample's distance exceeds the threshold.
    #[must_use]
    pub fn is_anomalous(&self, features: &[f64]) -> bool {
        self.distance(features) > self.threshold
    }

    /// The anomaly threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Predictor for Mahalanobis {
    fn n_features(&self) -> usize {
        self.dim
    }

    fn score(&self, features: &[f64]) -> f64 {
        // Positive while inside the baseline space, negative beyond it.
        ((self.threshold - self.distance(features)) / self.threshold).clamp(-1.0, 1.0)
    }
}

/// Dense matrix inverse by Gauss–Jordan with partial pivoting.
///
/// # Panics
///
/// Panics if the matrix is numerically singular (the ridge in
/// [`Mahalanobis::fit`] prevents this for covariance matrices).
fn invert(matrix: &[f64], dim: usize) -> Vec<f64> {
    let mut a = matrix.to_vec();
    let mut inv = vec![0.0; dim * dim];
    for i in 0..dim {
        inv[i * dim + i] = 1.0;
    }
    for col in 0..dim {
        // Partial pivot.
        // `col..dim` is non-empty inside the loop; `col` is a safe
        // stand-in if it ever were not.
        let pivot_row = (col..dim)
            .max_by(|&r1, &r2| a[r1 * dim + col].abs().total_cmp(&a[r2 * dim + col].abs()))
            .unwrap_or(col);
        assert!(
            a[pivot_row * dim + col].abs() > 1e-12,
            "singular covariance matrix"
        );
        if pivot_row != col {
            for j in 0..dim {
                a.swap(col * dim + j, pivot_row * dim + j);
                inv.swap(col * dim + j, pivot_row * dim + j);
            }
        }
        let pivot = a[col * dim + col];
        for j in 0..dim {
            a[col * dim + j] /= pivot;
            inv[col * dim + j] /= pivot;
        }
        for row in 0..dim {
            if row == col {
                continue;
            }
            let factor = a[row * dim + col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..dim {
                a[row * dim + j] -= factor * a[col * dim + j];
                inv[row * dim + j] -= factor * inv[col * dim + j];
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Vec<Vec<f64>> {
        // Correlated 2-D cloud around (10, 20).
        (0..200)
            .map(|i| {
                let t = f64::from(i % 20) - 10.0;
                let s = f64::from((i * 7) % 11) - 5.0;
                vec![10.0 + t + 0.5 * s, 20.0 + 0.8 * t]
            })
            .collect()
    }

    #[test]
    fn center_has_zero_distance() {
        let m = Mahalanobis::fit(&baseline(), 3.0);
        assert!(m.distance(&[10.0, 20.0]) < 0.6);
        assert!(!m.is_anomalous(&[10.0, 20.0]));
    }

    #[test]
    fn far_points_are_anomalous() {
        let m = Mahalanobis::fit(&baseline(), 3.0);
        assert!(m.is_anomalous(&[100.0, 20.0]));
        assert!(m.is_anomalous(&[10.0, -80.0]));
    }

    #[test]
    fn distance_accounts_for_correlation() {
        let m = Mahalanobis::fit(&baseline(), 3.0);
        // Along the correlation axis (t direction): x and y move together;
        // against it, the same euclidean step is more surprising.
        let along = m.distance(&[16.0, 24.8]); // t = +6 direction
        let against = m.distance(&[16.0, 15.2]); // same |dx|, opposite dy
        assert!(against > along, "against {against} vs along {along}");
    }

    #[test]
    fn scorer_sign_matches_threshold() {
        let m = Mahalanobis::fit(&baseline(), 3.0);
        assert!(m.score(&[10.0, 20.0]) > 0.0);
        assert!(m.score(&[100.0, 100.0]) < 0.0);
    }

    #[test]
    fn invert_recovers_identity() {
        let a = vec![4.0, 1.0, 0.0, 2.0, 5.0, 1.0, 0.0, 1.0, 3.0];
        let inv = invert(&a, 3);
        // a * inv ≈ I
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += a[i * 3 + k] * inv[k * 3 + j];
                }
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((acc - expected).abs() < 1e-9, "({i},{j}) = {acc}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "more samples than dimensions")]
    fn rejects_underdetermined_fit() {
        let rows = vec![vec![1.0, 2.0, 3.0]; 3];
        let _ = Mahalanobis::fit(&rows, 3.0);
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let m = Mahalanobis::fit(&baseline(), 3.0);
        let text = hdd_json::to_string(&m.to_json());
        let back = Mahalanobis::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.n_features(), 2);
        for q in [[10.0, 20.0], [100.0, 20.0], [16.0, 15.2]] {
            assert_eq!(back.score(&q).to_bits(), m.score(&q).to_bits(), "{q:?}");
        }

        // A precision matrix that is not dim x dim is rejected.
        let broken = text.replacen("\"precision\":[", "\"precision\":[0,", 1);
        assert!(Mahalanobis::from_json(&hdd_json::parse(&broken).unwrap()).is_err());
        // Non-positive thresholds are rejected.
        let broken = text.replacen("\"threshold\":3", "\"threshold\":0", 1);
        assert!(Mahalanobis::from_json(&hdd_json::parse(&broken).unwrap()).is_err());
    }
}
