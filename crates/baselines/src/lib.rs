//! Related-work baselines (§II of the paper).
//!
//! The paper's introduction and related-work section trace a progression
//! of SMART-based failure predictors; this crate implements the
//! representative ones so the progression can be measured on the same
//! dataset and protocol as the CT model:
//!
//! * [`ThresholdModel`] — the in-drive SMART threshold algorithm
//!   (manufacturers set thresholds so conservatively that they detect only
//!   3–10% of failures at ~0.1% FAR);
//! * [`QuantileDetector`] — Hughes et al.'s non-parametric test, adapted
//!   to the per-sample scoring interface: a sample votes *failed* when any
//!   monitored attribute falls below the good population's α-quantile
//!   (the OR-ed single-variate variant); the voting window supplies the
//!   multi-sample aggregation of the original rank-sum formulation;
//! * [`NaiveBayes`] — Hamerly & Elkan's supervised Gaussian naive Bayes
//!   classifier;
//! * [`Mahalanobis`] — Wang et al.'s anomaly detector: distance from a
//!   baseline Mahalanobis space built on good-drive data only.
//!
//! All four implement [`hdd_eval::Predictor`], so they plug directly into
//! the voting detector and the `Experiment` evaluation harness, and
//! [`hdd_json::JsonCodec`], so they persist through the same JSON
//! machinery as the compiled tree models.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod bayes;
pub mod mahalanobis;
pub mod quantile;
pub mod threshold;

pub use bayes::NaiveBayes;
pub use mahalanobis::Mahalanobis;
pub use quantile::QuantileDetector;
pub use threshold::ThresholdModel;
