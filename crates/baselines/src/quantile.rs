//! Hughes et al.'s non-parametric test, adapted to per-sample scoring.
//!
//! The original method runs a Wilcoxon rank-sum test of a drive's recent
//! samples against a stored reference set of good-drive values, OR-ed over
//! attributes. Under the per-sample scoring interface the equivalent
//! construction is: a sample votes *failed* when any monitored attribute
//! falls below the reference distribution's α-quantile; the voting window
//! then demands that a majority of recent samples agree — which is exactly
//! what the rank-sum statistic of the window against the reference would
//! conclude at the matching significance level.

use hdd_eval::Predictor;
use hdd_json::{JsonCodec, JsonError, Value};

/// OR-ed single-variate quantile test against a good-population reference.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileDetector {
    cutoffs: Vec<f64>,
}

impl JsonCodec for QuantileDetector {
    fn to_json(&self) -> Value {
        Value::Obj(vec![(
            "cutoffs".to_string(),
            Value::from_f64s(self.cutoffs.iter().copied()),
        )])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let cutoffs = value.f64_vec_field("cutoffs")?;
        if cutoffs.is_empty() {
            return Err(JsonError::new("quantile detector has no features"));
        }
        Ok(QuantileDetector { cutoffs })
    }
}

impl QuantileDetector {
    /// Fit from good-drive reference samples: each feature's cutoff is the
    /// empirical `alpha`-quantile of its reference values.
    ///
    /// # Panics
    ///
    /// Panics if `good` is empty, rows disagree on length, or `alpha` is
    /// outside `(0, 0.5]`.
    #[must_use]
    pub fn fit(good: &[Vec<f64>], alpha: f64) -> Self {
        assert!(!good.is_empty(), "need reference samples");
        assert!(alpha > 0.0 && alpha <= 0.5, "alpha must be in (0, 0.5]");
        let dim = good[0].len();
        let mut cutoffs = Vec::with_capacity(dim);
        let mut column = Vec::with_capacity(good.len());
        for feature in 0..dim {
            column.clear();
            for row in good {
                assert_eq!(row.len(), dim, "inconsistent row length");
                column.push(row[feature]);
            }
            column.sort_by(f64::total_cmp);
            let rank = ((good.len() as f64 - 1.0) * alpha).floor() as usize;
            cutoffs.push(column[rank]);
        }
        QuantileDetector { cutoffs }
    }

    /// The per-feature cutoffs.
    #[must_use]
    pub fn cutoffs(&self) -> &[f64] {
        &self.cutoffs
    }

    /// `true` when any feature is below its cutoff.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than the fitted dimensionality.
    #[must_use]
    pub fn is_anomalous(&self, features: &[f64]) -> bool {
        self.cutoffs
            .iter()
            .enumerate()
            .any(|(i, &c)| features[i] < c)
    }
}

impl Predictor for QuantileDetector {
    fn n_features(&self) -> usize {
        self.cutoffs.len()
    }

    fn score(&self, features: &[f64]) -> f64 {
        if self.is_anomalous(features) {
            -1.0
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> Vec<Vec<f64>> {
        (0..100).map(|i| vec![f64::from(i)]).collect()
    }

    #[test]
    fn cutoff_is_the_alpha_quantile() {
        let det = QuantileDetector::fit(&reference(), 0.05);
        // 5th percentile of 0..99.
        assert!((det.cutoffs()[0] - 4.0).abs() < 1.01);
        assert!(det.is_anomalous(&[1.0]));
        assert!(!det.is_anomalous(&[50.0]));
    }

    #[test]
    fn or_semantics_across_features() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![f64::from(i), 1000.0 + f64::from(i)])
            .collect();
        let det = QuantileDetector::fit(&rows, 0.1);
        assert!(det.is_anomalous(&[0.0, 1500.0]), "first feature low");
        assert!(det.is_anomalous(&[50.0, 1000.5]), "second feature low");
        assert!(!det.is_anomalous(&[50.0, 1500.0]));
    }

    #[test]
    fn tighter_alpha_flags_less() {
        let tight = QuantileDetector::fit(&reference(), 0.01);
        let loose = QuantileDetector::fit(&reference(), 0.3);
        assert!(tight.cutoffs()[0] < loose.cutoffs()[0]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = QuantileDetector::fit(&reference(), 0.9);
    }

    #[test]
    fn scorer_convention() {
        let det = QuantileDetector::fit(&reference(), 0.05);
        assert_eq!(det.score(&[90.0]), 1.0);
        assert_eq!(det.score(&[0.0]), -1.0);
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let det = QuantileDetector::fit(&reference(), 0.05);
        let text = hdd_json::to_string(&det.to_json());
        let back = QuantileDetector::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, det);
        assert_eq!(back.n_features(), 1);
        for q in [[90.0], [0.0], [4.5]] {
            assert_eq!(back.score(&q).to_bits(), det.score(&q).to_bits());
        }
        assert!(
            QuantileDetector::from_json(&hdd_json::parse(r#"{"cutoffs":[]}"#).unwrap()).is_err()
        );
    }
}
