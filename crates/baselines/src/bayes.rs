//! Hamerly & Elkan's supervised naive Bayes classifier.
//!
//! Gaussian class-conditional densities per feature, independent given the
//! class; the paper's §II reports ~55% detection at ~1% FAR for this
//! method on the Quantum dataset.

use hdd_cart::{Class, ClassSample, TrainError};
use hdd_eval::Predictor;
use hdd_json::{JsonCodec, JsonError, Value};

/// Per-class Gaussian naive Bayes.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayes {
    log_prior_good: f64,
    log_prior_failed: f64,
    good: Vec<(f64, f64)>,   // (mean, variance) per feature
    failed: Vec<(f64, f64)>, // (mean, variance) per feature
}

fn moments_to_json(moments: &[(f64, f64)]) -> (Value, Value) {
    (
        Value::from_f64s(moments.iter().map(|&(m, _)| m)),
        Value::from_f64s(moments.iter().map(|&(_, v)| v)),
    )
}

fn moments_from_json(
    value: &Value,
    means_key: &str,
    vars_key: &str,
) -> Result<Vec<(f64, f64)>, JsonError> {
    let means = value.f64_vec_field(means_key)?;
    let vars = value.f64_vec_field(vars_key)?;
    if means.is_empty() || means.len() != vars.len() {
        return Err(JsonError::new(format!(
            "`{means_key}`/`{vars_key}` lengths disagree"
        )));
    }
    if vars.iter().any(|&v| v <= 0.0) {
        return Err(JsonError::new(format!("`{vars_key}` must be positive")));
    }
    Ok(means.into_iter().zip(vars).collect())
}

impl JsonCodec for NaiveBayes {
    fn to_json(&self) -> Value {
        let (good_means, good_vars) = moments_to_json(&self.good);
        let (failed_means, failed_vars) = moments_to_json(&self.failed);
        Value::Obj(vec![
            (
                "log_prior_good".to_string(),
                Value::Num(self.log_prior_good),
            ),
            (
                "log_prior_failed".to_string(),
                Value::Num(self.log_prior_failed),
            ),
            ("good_means".to_string(), good_means),
            ("good_vars".to_string(), good_vars),
            ("failed_means".to_string(), failed_means),
            ("failed_vars".to_string(), failed_vars),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let good = moments_from_json(value, "good_means", "good_vars")?;
        let failed = moments_from_json(value, "failed_means", "failed_vars")?;
        if good.len() != failed.len() {
            return Err(JsonError::new("class moment lengths disagree"));
        }
        Ok(NaiveBayes {
            log_prior_good: value.f64_field("log_prior_good")?,
            log_prior_failed: value.f64_field("log_prior_failed")?,
            good,
            failed,
        })
    }
}

fn moments(rows: &[&[f64]], dim: usize) -> Vec<(f64, f64)> {
    let n = rows.len() as f64;
    let mut out = Vec::with_capacity(dim);
    for feature in 0..dim {
        let mean = rows.iter().map(|r| r[feature]).sum::<f64>() / n;
        let var = rows
            .iter()
            .map(|r| (r[feature] - mean).powi(2))
            .sum::<f64>()
            / n;
        // Variance floor keeps constant features from producing infinite
        // log-densities.
        out.push((mean, var.max(1e-6)));
    }
    out
}

fn log_density(x: f64, (mean, var): (f64, f64)) -> f64 {
    -0.5 * ((x - mean).powi(2) / var + var.ln() + std::f64::consts::TAU.ln())
}

impl NaiveBayes {
    /// Train from labelled samples.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] on empty/degenerate input.
    pub fn train(samples: &[ClassSample]) -> Result<NaiveBayes, TrainError> {
        if samples.is_empty() {
            return Err(TrainError::NoSamples);
        }
        let dim = samples[0].features.len();
        let good: Vec<&[f64]> = samples
            .iter()
            .filter(|s| s.class == Class::Good)
            .map(|s| s.features.as_slice())
            .collect();
        let failed: Vec<&[f64]> = samples
            .iter()
            .filter(|s| s.class == Class::Failed)
            .map(|s| s.features.as_slice())
            .collect();
        if good.is_empty() || failed.is_empty() {
            return Err(TrainError::SingleClass);
        }
        let n = samples.len() as f64;
        Ok(NaiveBayes {
            log_prior_good: (good.len() as f64 / n).ln(),
            log_prior_failed: (failed.len() as f64 / n).ln(),
            good: moments(&good, dim),
            failed: moments(&failed, dim),
        })
    }

    /// Log-odds `log P(good | x) − log P(failed | x)` (up to the shared
    /// evidence term): positive means good.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than the training dimensionality.
    #[must_use]
    pub fn log_odds_good(&self, features: &[f64]) -> f64 {
        let mut good = self.log_prior_good;
        let mut failed = self.log_prior_failed;
        for (i, &x) in features.iter().enumerate().take(self.good.len()) {
            good += log_density(x, self.good[i]);
            failed += log_density(x, self.failed[i]);
        }
        good - failed
    }

    /// Maximum-a-posteriori class.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> Class {
        if self.log_odds_good(features) < 0.0 {
            Class::Failed
        } else {
            Class::Good
        }
    }
}

impl Predictor for NaiveBayes {
    fn n_features(&self) -> usize {
        self.good.len()
    }

    fn score(&self, features: &[f64]) -> f64 {
        // Squash the log-odds into (-1, 1) for the voting detector.
        (self.log_odds_good(features) / 4.0).tanh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussianish(n: usize) -> Vec<ClassSample> {
        (0..n)
            .flat_map(|i| {
                let jitter = f64::from((i * 13 % 7) as u32) - 3.0;
                [
                    ClassSample::new(vec![100.0 + jitter, 50.0 + jitter / 2.0], Class::Good),
                    ClassSample::new(vec![60.0 + jitter, 20.0 + jitter / 2.0], Class::Failed),
                ]
            })
            .collect()
    }

    #[test]
    fn separates_shifted_gaussians() {
        let nb = NaiveBayes::train(&gaussianish(60)).unwrap();
        assert_eq!(nb.predict(&[100.0, 50.0]), Class::Good);
        assert_eq!(nb.predict(&[60.0, 20.0]), Class::Failed);
    }

    #[test]
    fn log_odds_sign_matches_prediction() {
        let nb = NaiveBayes::train(&gaussianish(40)).unwrap();
        for q in [[100.0, 50.0], [60.0, 20.0], [80.0, 35.0]] {
            assert_eq!(nb.predict(&q) == Class::Failed, nb.log_odds_good(&q) < 0.0);
        }
    }

    #[test]
    fn scorer_is_bounded() {
        let nb = NaiveBayes::train(&gaussianish(40)).unwrap();
        for q in [[0.0, 0.0], [1000.0, -50.0], [100.0, 50.0]] {
            let s = nb.score(&q);
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn priors_matter_for_ambiguous_points() {
        // 9:1 good:failed at the same location: the midpoint leans good.
        let mut samples = Vec::new();
        for i in 0..90 {
            samples.push(ClassSample::new(vec![f64::from(i % 10)], Class::Good));
        }
        for i in 0..10 {
            samples.push(ClassSample::new(vec![f64::from(i)], Class::Failed));
        }
        let nb = NaiveBayes::train(&samples).unwrap();
        assert_eq!(nb.predict(&[5.0]), Class::Good);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(NaiveBayes::train(&[]).unwrap_err(), TrainError::NoSamples);
        let one_class = vec![ClassSample::new(vec![1.0], Class::Good); 5];
        assert_eq!(
            NaiveBayes::train(&one_class).unwrap_err(),
            TrainError::SingleClass
        );
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let nb = NaiveBayes::train(&gaussianish(60)).unwrap();
        let text = hdd_json::to_string(&nb.to_json());
        let back = NaiveBayes::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, nb);
        assert_eq!(back.n_features(), 2);
        for q in [[100.0, 50.0], [60.0, 20.0], [80.0, 35.0], [0.0, -7.5]] {
            assert_eq!(back.score(&q).to_bits(), nb.score(&q).to_bits(), "{q:?}");
        }

        // Mismatched moment lengths are rejected.
        let broken = text.replacen("\"good_means\":[", "\"good_means\":[0,", 1);
        assert!(NaiveBayes::from_json(&hdd_json::parse(&broken).unwrap()).is_err());
        // Non-positive variances are rejected.
        let broken = text
            .replacen("\"good_vars\":[", "\"good_vars\":[0,", 1)
            .replacen("\"good_means\":[", "\"good_means\":[0,", 1);
        assert!(NaiveBayes::from_json(&hdd_json::parse(&broken).unwrap()).is_err());
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let mut samples = gaussianish(20);
        for s in &mut samples {
            s.features.push(42.0); // constant third feature
        }
        let nb = NaiveBayes::train(&samples).unwrap();
        assert!(nb.log_odds_good(&[100.0, 50.0, 42.0]).is_finite());
    }
}
