//! Generic tree storage shared by the classification and regression models.
//!
//! A [`Tree`] is an arena of nodes; leaves carry a payload `L` (class
//! distribution or mean target). Trees are white boxes: they can print
//! their decision rules (the paper's Figure 1) and attribute impurity
//! decrease to features.

use std::fmt;

/// Index of a node within its tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node's id.
    pub const ROOT: NodeId = NodeId(0);

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// An internal node's split: `feature < threshold` goes left.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitNode {
    /// Feature index tested.
    pub feature: usize,
    /// Threshold; strictly-less goes left.
    pub threshold: f64,
    /// Left child (condition true).
    pub left: NodeId,
    /// Right child (condition false).
    pub right: NodeId,
    /// Missing-value routing: a NaN feature value cannot be compared
    /// against the threshold, so it follows the *majority direction* —
    /// the child that received more training weight (ties go left).
    /// Recorded at training time; both the arena walker and the compiled
    /// [`crate::CompactTree`] honor it identically.
    pub nan_left: bool,
}

/// One node of a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Node<L> {
    /// Leaf payload / node prediction (internal nodes keep theirs for
    /// rule printing, exactly like the paper's Figure 1 annotates every
    /// node with its class distribution).
    pub prediction: L,
    /// Total training weight that reached this node.
    pub weight: f64,
    /// Share of the root's weight (the percentages in Figure 1).
    pub fraction: f64,
    /// Scaled gain of this node's split (`fraction ×` local impurity
    /// decrease); `0` for leaves. This is the quantity compared against
    /// the complexity parameter during pruning.
    pub gain: f64,
    /// The split, or `None` for leaves.
    pub split: Option<SplitNode>,
}

/// An immutable binary decision tree with leaf payload `L`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree<L> {
    nodes: Vec<Node<L>>,
    n_features: usize,
}

impl<L> Tree<L> {
    /// Assemble a tree from an arena whose first node is the root.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or any child id is out of bounds.
    #[must_use]
    pub(crate) fn from_nodes(nodes: Vec<Node<L>>, n_features: usize) -> Self {
        assert!(!nodes.is_empty(), "tree must have a root");
        for node in &nodes {
            if let Some(s) = &node.split {
                assert!(
                    s.left.index() < nodes.len() && s.right.index() < nodes.len(),
                    "child id out of bounds"
                );
            }
        }
        Tree { nodes, n_features }
    }

    /// Dimensionality of the feature vectors this tree splits on.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of nodes (internal + leaves).
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.split.is_none()).count()
    }

    /// Maximum depth (a lone root has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        fn walk<L>(tree: &Tree<L>, id: NodeId) -> usize {
            match &tree.node(id).split {
                None => 1,
                Some(s) => 1 + walk(tree, s.left).max(walk(tree, s.right)),
            }
        }
        walk(self, NodeId::ROOT)
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node<L> {
        &self.nodes[id.index()]
    }

    /// Walk from the root to the leaf covering `features`.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than [`Tree::n_features`].
    #[must_use]
    pub fn leaf_for(&self, features: &[f64]) -> &Node<L> {
        assert!(
            features.len() >= self.n_features,
            "feature vector too short: {} < {}",
            features.len(),
            self.n_features
        );
        let mut id = NodeId::ROOT;
        loop {
            match &self.node(id).split {
                None => return self.node(id),
                Some(s) => {
                    let v = features[s.feature];
                    id = if v.is_nan() {
                        // Missing-value policy: route to the majority
                        // direction recorded at training time.
                        if s.nan_left {
                            s.left
                        } else {
                            s.right
                        }
                    } else if v < s.threshold {
                        s.left
                    } else {
                        s.right
                    };
                }
            }
        }
    }

    /// Per-feature importance: the sum of scaled split gains attributed to
    /// each feature, normalized to sum to 1 (all zeros for a stump).
    #[must_use]
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for node in &self.nodes {
            if let Some(s) = &node.split {
                imp[s.feature] += node.gain;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Iterate over all nodes (arena order; the root is first).
    pub fn nodes(&self) -> impl Iterator<Item = &Node<L>> {
        self.nodes.iter()
    }
}

impl<L: fmt::Display> Tree<L> {
    /// Render the decision rules, one line per node, in the style of the
    /// paper's Figure 1:
    ///
    /// ```text
    /// ├─ POH < 90.0 → failed [3.0% of weight]
    /// ```
    ///
    /// `feature_names` supplies the column names (falls back to `f<i>`).
    #[must_use]
    pub fn rules(&self, feature_names: &[String]) -> String {
        let mut out = String::new();
        self.render(NodeId::ROOT, "", "", feature_names, &mut out);
        out
    }

    fn render(
        &self,
        id: NodeId,
        prefix: &str,
        condition: &str,
        names: &[String],
        out: &mut String,
    ) {
        use fmt::Write;
        let node = self.node(id);
        let what = if condition.is_empty() {
            "root".to_string()
        } else {
            condition.to_string()
        };
        // Writing to a String cannot fail; ignore the Infallible error.
        let _ = writeln!(
            out,
            "{prefix}{what} → {} [{:.1}% of weight]",
            node.prediction,
            node.fraction * 100.0
        );
        if let Some(s) = &node.split {
            let name = names
                .get(s.feature)
                .cloned()
                .unwrap_or_else(|| format!("f{}", s.feature));
            let child_prefix = format!("{prefix}  ");
            self.render(
                s.left,
                &child_prefix,
                &format!("{name} < {:.4}", s.threshold),
                names,
                out,
            );
            self.render(
                s.right,
                &child_prefix,
                &format!("{name} ≥ {:.4}", s.threshold),
                names,
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built stump: x0 < 5 -> "L" else "R".
    fn stump() -> Tree<&'static str> {
        Tree::from_nodes(
            vec![
                Node {
                    prediction: "root",
                    weight: 10.0,
                    fraction: 1.0,
                    gain: 0.5,
                    split: Some(SplitNode {
                        feature: 0,
                        threshold: 5.0,
                        left: NodeId(1),
                        right: NodeId(2),
                        nan_left: true,
                    }),
                },
                Node {
                    prediction: "L",
                    weight: 6.0,
                    fraction: 0.6,
                    gain: 0.0,
                    split: None,
                },
                Node {
                    prediction: "R",
                    weight: 4.0,
                    fraction: 0.4,
                    gain: 0.0,
                    split: None,
                },
            ],
            1,
        )
    }

    #[test]
    fn traversal_follows_threshold() {
        let t = stump();
        assert_eq!(t.leaf_for(&[4.9]).prediction, "L");
        assert_eq!(t.leaf_for(&[5.0]).prediction, "R");
        assert_eq!(t.leaf_for(&[100.0]).prediction, "R");
    }

    #[test]
    fn nan_routes_to_majority_direction() {
        let t = stump(); // nan_left: true (left child is heavier)
        assert_eq!(t.leaf_for(&[f64::NAN]).prediction, "L");

        let mut nodes: Vec<Node<&'static str>> = t.nodes().cloned().collect();
        if let Some(s) = &mut nodes[0].split {
            s.nan_left = false;
        }
        let flipped = Tree::from_nodes(nodes, 1);
        assert_eq!(flipped.leaf_for(&[f64::NAN]).prediction, "R");
    }

    #[test]
    fn counts_and_depth() {
        let t = stump();
        assert_eq!(t.n_nodes(), 3);
        assert_eq!(t.n_leaves(), 2);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.n_features(), 1);
    }

    #[test]
    fn importance_attributes_gain() {
        let t = stump();
        assert_eq!(t.feature_importance(), vec![1.0]);
    }

    #[test]
    fn rules_mention_feature_names() {
        let t = stump();
        let rules = t.rules(&["POH".to_string()]);
        assert!(rules.contains("POH < 5.0000"), "{rules}");
        assert!(rules.contains("root"), "{rules}");
        assert!(rules.contains("60.0% of weight"), "{rules}");
    }

    #[test]
    fn rules_fall_back_to_index_names() {
        let t = stump();
        let rules = t.rules(&[]);
        assert!(rules.contains("f0 <"), "{rules}");
    }

    #[test]
    #[should_panic(expected = "feature vector too short")]
    fn leaf_for_rejects_short_vector() {
        let _ = stump().leaf_for(&[]);
    }

    #[test]
    #[should_panic(expected = "child id out of bounds")]
    fn from_nodes_validates_children() {
        let _ = Tree::from_nodes(
            vec![Node {
                prediction: "x",
                weight: 1.0,
                fraction: 1.0,
                gain: 0.0,
                split: Some(SplitNode {
                    feature: 0,
                    threshold: 0.0,
                    left: NodeId(7),
                    right: NodeId(8),
                    nan_left: true,
                }),
            }],
            1,
        );
    }

    #[test]
    fn clone_preserves_structure() {
        let t = stump();
        let back = t.clone();
        assert_eq!(back.n_nodes(), 3);
        assert_eq!(back.leaf_for(&[1.0]).prediction, "L");
        assert_eq!(back, t);
    }
}
