//! Health degrees and the regression-tree health model (§III-B, §V-C).
//!
//! Binary classifiers treat all warnings alike; the paper's health-degree
//! model instead maps every sample to a real value in `[-1, +1]` — `+1`
//! absolutely healthy, `-1` failed — so a storage system can process
//! warnings *in order of urgency*. Targets for failed-drive training
//! samples come from a *deterioration window*: all samples `w` hours
//! before failure sit at the good/failed borderline (degree 0) and decay
//! linearly to `-1` at the failure event.

use crate::regressor::RegressionTree;

/// The health degree of a failed-drive sample `hours_before_failure` hours
/// before the failure event, with a *global* deterioration window of
/// `window_hours` (eq. 5): `h(i) = -1 + i/w`.
///
/// ```
/// use hdd_cart::global_health_degree;
///
/// assert_eq!(global_health_degree(0, 168), -1.0);   // at the failure event
/// assert_eq!(global_health_degree(84, 168), -0.5);  // halfway through
/// assert_eq!(global_health_degree(168, 168), 0.0);  // the borderline
/// ```
///
/// Samples older than the window are clamped to `0.0` (the borderline);
/// the paper only trains on samples inside the window.
///
/// # Panics
///
/// Panics if `window_hours` is zero.
#[must_use]
pub fn global_health_degree(hours_before_failure: u32, window_hours: u32) -> f64 {
    assert!(window_hours > 0, "deterioration window must be positive");
    (-1.0 + f64::from(hours_before_failure) / f64::from(window_hours)).min(0.0)
}

/// The health degree under a *personalized* deterioration window (eq. 6):
/// identical formula, but `window_hours` is the drive's own window `w_d` —
/// in the paper, the time-in-advance at which a classification-tree model
/// first detects that drive. Personalized windows distinguish individual
/// deterioration speeds and yield better prediction performance (§V-C).
///
/// # Panics
///
/// Panics if `window_hours` is zero (drives the CT model misses fall back
/// to a global 24-hour window in the paper's procedure; callers implement
/// that fallback).
#[must_use]
pub fn personalized_health_degree(hours_before_failure: u32, window_hours: u32) -> f64 {
    global_health_degree(hours_before_failure, window_hours)
}

/// Choose `picks` indices evenly spaced over `0..available` (the paper
/// trains the RT on 12 samples chosen evenly within each drive's window).
///
/// Returns all indices when `available <= picks`.
#[must_use]
pub fn evenly_spaced_indices(available: usize, picks: usize) -> Vec<usize> {
    if available == 0 || picks == 0 {
        return Vec::new();
    }
    if available <= picks {
        return (0..available).collect();
    }
    (0..picks)
        .map(|k| k * (available - 1) / (picks - 1).max(1))
        .collect()
}

/// A regression tree plus a detection threshold: drives whose predicted
/// health degree falls below the threshold are flagged, and flagged drives
/// can be ranked by urgency.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthModel {
    tree: RegressionTree,
    threshold: f64,
}

impl HealthModel {
    /// Wrap a trained regression tree with a detection `threshold`
    /// (the paper sweeps thresholds in `[-0.94, 0.0]` for Figure 10).
    #[must_use]
    pub fn new(tree: RegressionTree, threshold: f64) -> Self {
        HealthModel { tree, threshold }
    }

    /// Predicted health degree of a sample (clamped to `[-1, +1]`).
    #[must_use]
    pub fn health(&self, features: &[f64]) -> f64 {
        self.tree.predict(features).clamp(-1.0, 1.0)
    }

    /// `true` when the sample's health degree is below the threshold.
    #[must_use]
    pub fn is_warning(&self, features: &[f64]) -> bool {
        self.health(features) < self.threshold
    }

    /// The detection threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Replace the threshold (this is the paper's "easy way to tune the
    /// detection rate and the false alarm rate finely", §VII).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// The underlying regression tree.
    #[must_use]
    pub fn tree(&self) -> &RegressionTree {
        &self.tree
    }

    /// Filter and sort warnings by urgency: items whose health degree is
    /// below the threshold, most critical (lowest health) first.
    ///
    /// Takes `(item, health)` pairs — e.g. produced by
    /// [`HealthModel::health`] on each drive's latest sample — and returns
    /// the processing order for the warnings (§III-B: "deal with drives
    /// closer to failure more priority than those more healthy").
    #[must_use]
    pub fn rank_warnings<T>(&self, warnings: Vec<(T, f64)>) -> Vec<(T, f64)> {
        let mut out: Vec<(T, f64)> = warnings
            .into_iter()
            .filter(|(_, h)| *h < self.threshold)
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressor::RegressionTreeBuilder;
    use crate::sample::RegSample;

    #[test]
    fn global_degree_endpoints() {
        assert_eq!(global_health_degree(0, 100), -1.0);
        assert_eq!(global_health_degree(100, 100), 0.0);
        assert_eq!(global_health_degree(50, 100), -0.5);
    }

    #[test]
    fn global_degree_clamps_old_samples() {
        assert_eq!(global_health_degree(500, 100), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = global_health_degree(5, 0);
    }

    #[test]
    fn personalized_matches_global_formula() {
        assert_eq!(
            personalized_health_degree(30, 60),
            global_health_degree(30, 60)
        );
    }

    #[test]
    fn evenly_spaced_covers_range() {
        let idx = evenly_spaced_indices(100, 12);
        assert_eq!(idx.len(), 12);
        assert_eq!(idx[0], 0);
        assert_eq!(*idx.last().unwrap(), 99);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn evenly_spaced_degenerate_cases() {
        assert_eq!(evenly_spaced_indices(5, 12), vec![0, 1, 2, 3, 4]);
        assert!(evenly_spaced_indices(0, 12).is_empty());
        assert!(evenly_spaced_indices(10, 0).is_empty());
        assert_eq!(evenly_spaced_indices(10, 1), vec![0]);
    }

    fn toy_model(threshold: f64) -> HealthModel {
        // x < 10 -> health -1, else +1.
        let samples: Vec<RegSample> = (0..100)
            .map(|i| {
                let x = f64::from(i % 20);
                RegSample::new(vec![x], if x < 10.0 { -1.0 } else { 1.0 })
            })
            .collect();
        let tree = RegressionTreeBuilder::new().build(&samples).unwrap();
        HealthModel::new(tree, threshold)
    }

    #[test]
    fn warning_threshold() {
        let model = toy_model(-0.2);
        assert!(model.is_warning(&[3.0]));
        assert!(!model.is_warning(&[15.0]));
        assert_eq!(model.threshold(), -0.2);
    }

    #[test]
    fn set_threshold_changes_operating_point() {
        let mut model = toy_model(-2.0);
        assert!(!model.is_warning(&[3.0]), "threshold below every health");
        model.set_threshold(0.5);
        assert!(model.is_warning(&[3.0]));
    }

    #[test]
    fn health_is_clamped() {
        let model = toy_model(0.0);
        let h = model.health(&[3.0]);
        assert!((-1.0..=1.0).contains(&h));
    }

    #[test]
    fn rank_warnings_orders_by_urgency() {
        let model = toy_model(0.5);
        let ranked = model.rank_warnings(vec![(1u32, 0.9), (2, -0.8), (3, -0.2), (4, 0.4)]);
        let ids: Vec<u32> = ranked.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![2, 3, 4], "most urgent first; healthy excluded");
    }
}
