//! The Regression Tree model (Algorithm 2 of the paper).

use crate::sample::{validate_features, RegSample, TrainError};
use crate::split::{FeatureMatrix, SplitWorkspace};
use crate::tree::{Node, NodeId, SplitNode, Tree};
use hdd_par::ThreadPool;
use std::fmt;

/// Leaf payload of a regression tree: the weighted mean target at the node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegLeaf {
    /// Weighted mean of the target variable.
    pub mean: f64,
}

impl fmt::Display for RegLeaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.3}", self.mean)
    }
}

/// Configures and trains [`RegressionTree`]s.
///
/// Split conditions and the pruning parameter default to the same values
/// as the classification tree, as in §V-C of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTreeBuilder {
    min_split: usize,
    min_bucket: usize,
    complexity: f64,
    max_depth: Option<usize>,
    threads: Option<usize>,
}

impl Default for RegressionTreeBuilder {
    fn default() -> Self {
        RegressionTreeBuilder {
            min_split: 20,
            min_bucket: 7,
            complexity: 0.001,
            max_depth: None,
            threads: None,
        }
    }
}

impl RegressionTreeBuilder {
    /// A builder with the paper's default parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `Minsplit`: minimum samples at a node before it may be split.
    pub fn min_split(&mut self, n: usize) -> &mut Self {
        self.min_split = n.max(2);
        self
    }

    /// `Minbucket`: minimum samples at any leaf.
    pub fn min_bucket(&mut self, n: usize) -> &mut Self {
        self.min_bucket = n.max(1);
        self
    }

    /// Complexity parameter: subtrees whose relative sum-of-squares
    /// reduction falls below `cp` are pruned (Algorithm 2, lines 19–23).
    pub fn complexity(&mut self, cp: f64) -> &mut Self {
        self.complexity = cp.max(0.0);
        self
    }

    /// Optional hard depth cap (ablation aid; not in the paper).
    pub fn max_depth(&mut self, depth: Option<usize>) -> &mut Self {
        self.max_depth = depth;
        self
    }

    /// Worker threads for the split search (`None` — the default — uses
    /// the process-wide resolution). Trained trees are bit-identical for
    /// every setting.
    ///
    /// # Panics
    ///
    /// Panics if `n` is `Some(0)`.
    pub fn threads(&mut self, n: Option<usize>) -> &mut Self {
        assert!(n != Some(0), "thread count must be at least 1");
        self.threads = n;
        self
    }

    /// Train a tree on `samples` with unit weights.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if `samples` is empty or malformed.
    pub fn build(&self, samples: &[RegSample]) -> Result<RegressionTree, TrainError> {
        let weights = vec![1.0; samples.len()];
        self.build_weighted(samples, &weights)
    }

    /// Train with explicit per-sample weights.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if `samples` is empty or malformed.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != samples.len()` or any weight is not a
    /// positive finite number.
    pub fn build_weighted(
        &self,
        samples: &[RegSample],
        weights: &[f64],
    ) -> Result<RegressionTree, TrainError> {
        assert_eq!(weights.len(), samples.len(), "one weight per sample");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        let n_features = validate_features(samples.iter().map(|s| s.features.as_slice()))?;
        if let Some(bad) = samples.iter().position(|s| !s.target.is_finite()) {
            return Err(TrainError::InvalidFeatures {
                sample: bad,
                reason: "target is not finite".to_string(),
            });
        }
        let targets: Vec<f64> = samples.iter().map(|s| s.target).collect();
        let matrix = FeatureMatrix::from_rows(samples.iter().map(|s| s.features.as_slice()));
        let pool = self
            .threads
            .map_or_else(ThreadPool::global, ThreadPool::new);
        let mut workspace = SplitWorkspace::new();
        workspace.reset_sorted(&matrix, pool);
        let tree = grow(
            &targets,
            weights,
            self.min_split,
            self.min_bucket,
            self.max_depth,
            n_features,
            self.complexity,
            pool,
            &mut workspace,
        );
        let tree = crate::prune::prune(&tree, self.complexity);
        Ok(RegressionTree { tree })
    }
}

/// A trained regression tree predicting a real-valued target (the health
/// degree in the paper's usage).
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    tree: Tree<RegLeaf>,
}

impl RegressionTree {
    /// Predict the target value for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than the training dimensionality.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.tree.leaf_for(features).prediction.mean
    }

    /// The underlying tree.
    #[must_use]
    pub fn tree(&self) -> &Tree<RegLeaf> {
        &self.tree
    }

    /// Decision rules as text.
    #[must_use]
    pub fn rules(&self, feature_names: &[String]) -> String {
        self.tree.rules(feature_names)
    }

    /// Normalized per-feature importance.
    #[must_use]
    pub fn feature_importance(&self) -> Vec<f64> {
        self.tree.feature_importance()
    }
}

/// Grow a full regression tree (stack-based, like Algorithm 2). Split
/// search strategy and parallelism as in the classification grower: the
/// descent runs on the [`SplitWorkspace`]'s presorted stripes, which are
/// bit-identical to the legacy sort-per-node search at any thread count.
#[allow(clippy::too_many_arguments)]
fn grow(
    targets: &[f64],
    weights: &[f64],
    min_split: usize,
    min_bucket: usize,
    max_depth: Option<usize>,
    n_features: usize,
    complexity: f64,
    pool: ThreadPool,
    ws: &mut SplitWorkspace,
) -> Tree<RegLeaf> {
    let n_rows = ws.n_rows();
    let root_weight: f64 = weights.iter().sum();

    let node_stats = |idx: &[u32]| {
        let mut sw = 0.0;
        let mut swy = 0.0;
        let mut swy2 = 0.0;
        for &i in idx {
            let (w, y) = (weights[i as usize], targets[i as usize]);
            sw += w;
            swy += w * y;
            swy2 += w * y * y;
        }
        let mean = if sw > 0.0 { swy / sw } else { 0.0 };
        let sq = (swy2 - swy * swy / sw.max(f64::MIN_POSITIVE)).max(0.0);
        (mean, sq, sw)
    };

    let (root_mean, root_sq, _) = node_stats(ws.members(0, n_rows));
    let mut nodes = vec![Node {
        prediction: RegLeaf { mean: root_mean },
        weight: root_weight,
        fraction: 1.0,
        gain: 0.0,
        split: None,
    }];
    let mut stack = vec![(NodeId::ROOT, 0usize, n_rows, 1usize)];

    while let Some((id, start, end, depth)) = stack.pop() {
        if end - start < min_split || max_depth.is_some_and(|d| depth >= d) {
            continue;
        }
        let split = ws.best_regression_split(start, end, targets, weights, min_bucket, pool);
        let Some(split) = split else {
            continue;
        };
        // Pre-prune: `prune` collapses any split whose relative gain falls
        // below the complexity parameter based on that gain alone, so a
        // below-`cp` split's subtree can never survive — decline it now
        // and grow the post-prune tree directly (bit-identical output).
        let scaled = if root_sq > 0.0 {
            split.gain / root_sq
        } else {
            0.0
        };
        if scaled < complexity {
            continue;
        }
        let mid = ws.partition(start, end, split.feature, split.threshold);
        debug_assert!(mid > start && mid < end);

        let left_id = NodeId(nodes.len() as u32);
        let right_id = NodeId(nodes.len() as u32 + 1);
        let mut child_weights = [0.0f64; 2];
        for (slot, range) in [ws.members(start, mid), ws.members(mid, end)]
            .into_iter()
            .enumerate()
        {
            let (mean, _, sw) = node_stats(range);
            child_weights[slot] = sw;
            nodes.push(Node {
                prediction: RegLeaf { mean },
                weight: sw,
                fraction: sw / root_weight,
                gain: 0.0,
                split: None,
            });
        }
        let node = &mut nodes[id.0 as usize];
        node.split = Some(SplitNode {
            feature: split.feature,
            threshold: split.threshold,
            left: left_id,
            right: right_id,
            // Missing-value policy: NaN follows the heavier child.
            nan_left: child_weights[0] >= child_weights[1],
        });
        // Relative sum-of-squares reduction, comparable against CP.
        node.gain = if root_sq > 0.0 {
            split.gain / root_sq
        } else {
            0.0
        };
        stack.push((left_id, start, mid, depth + 1));
        stack.push((right_id, mid, end, depth + 1));
    }

    Tree::from_nodes(nodes, n_features)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_function(n: usize) -> Vec<RegSample> {
        (0..n)
            .map(|i| {
                let x = (i % 40) as f64;
                let y = if x < 20.0 { -1.0 } else { 1.0 };
                RegSample::new(vec![x, (i % 3) as f64], y)
            })
            .collect()
    }

    #[test]
    fn fits_a_step_function() {
        let tree = RegressionTreeBuilder::new()
            .build(&step_function(200))
            .unwrap();
        assert!((tree.predict(&[5.0, 0.0]) - (-1.0)).abs() < 1e-9);
        assert!((tree.predict(&[30.0, 0.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fits_a_ramp_piecewise() {
        let samples: Vec<RegSample> = (0..400)
            .map(|i| {
                let x = f64::from(i) / 400.0;
                RegSample::new(vec![x], x)
            })
            .collect();
        let mut b = RegressionTreeBuilder::new();
        b.complexity(1e-6);
        let tree = b.build(&samples).unwrap();
        // Tree approximates the ramp: monotone-ish, small error.
        let mse: f64 = (0..100)
            .map(|i| {
                let x = f64::from(i) / 100.0;
                (tree.predict(&[x]) - x).powi(2)
            })
            .sum::<f64>()
            / 100.0;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn constant_targets_give_stump() {
        let samples: Vec<RegSample> = (0..50)
            .map(|i| RegSample::new(vec![f64::from(i)], 7.0))
            .collect();
        let tree = RegressionTreeBuilder::new().build(&samples).unwrap();
        assert_eq!(tree.tree().n_nodes(), 1);
        assert_eq!(tree.predict(&[99.0]), 7.0);
    }

    #[test]
    fn weights_shift_leaf_means() {
        let samples = vec![
            RegSample::new(vec![0.0], 0.0),
            RegSample::new(vec![0.1], 10.0),
        ];
        let mut b = RegressionTreeBuilder::new();
        b.min_split(100); // force a stump: prediction is the weighted mean
        let heavy_first = b.build_weighted(&samples, &[9.0, 1.0]).unwrap();
        assert!((heavy_first.predict(&[0.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_targets() {
        let samples = vec![RegSample::new(vec![1.0], f64::INFINITY)];
        assert!(matches!(
            RegressionTreeBuilder::new().build(&samples).unwrap_err(),
            TrainError::InvalidFeatures { .. }
        ));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            RegressionTreeBuilder::new().build(&[]).unwrap_err(),
            TrainError::NoSamples
        );
    }

    #[test]
    #[should_panic(expected = "one weight per sample")]
    fn weight_length_mismatch_panics() {
        let samples = step_function(10);
        let _ = RegressionTreeBuilder::new().build_weighted(&samples, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn negative_weights_panic() {
        let samples = step_function(10);
        let weights = vec![-1.0; samples.len()];
        let _ = RegressionTreeBuilder::new().build_weighted(&samples, &weights);
    }

    #[test]
    fn pruning_shrinks_tree() {
        let samples = step_function(400);
        let mut loose = RegressionTreeBuilder::new();
        loose.complexity(0.0).min_split(2).min_bucket(1);
        let mut tight = RegressionTreeBuilder::new();
        tight.complexity(0.5).min_split(2).min_bucket(1);
        let big = loose.build(&samples).unwrap();
        let small = tight.build(&samples).unwrap();
        assert!(small.tree().n_nodes() <= big.tree().n_nodes());
    }

    #[test]
    fn deterministic() {
        let samples = step_function(100);
        let a = RegressionTreeBuilder::new().build(&samples).unwrap();
        let b = RegressionTreeBuilder::new().build(&samples).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn compiles_to_matching_flat_tree() {
        let tree = RegressionTreeBuilder::new()
            .build(&step_function(100))
            .unwrap();
        let compiled = tree.compile();
        for q in [[5.0, 0.0], [30.0, 0.0], [17.5, 2.0]] {
            assert_eq!(compiled.score(&q).to_bits(), tree.predict(&q).to_bits());
        }
    }
}
