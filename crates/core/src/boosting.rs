//! AdaBoost over shallow classification trees.
//!
//! The authors' earlier work (reference \[11\], MSST'13) evaluated AdaBoost and found
//! it "does not provide significant performance improvement and is much
//! more computationally expensive" (§V of the paper) — which is why the
//! paper sticks to a single tree. This module implements discrete
//! AdaBoost so that claim can be reproduced (see the `exp_related_work`
//! experiment binary).

use crate::classifier::{ClassificationTree, ClassificationTreeBuilder};
use crate::compact::{CompactForest, CompactTree};
use crate::sample::{Class, ClassSample, TrainError};
use crate::split::{FeatureMatrix, SplitWorkspace};
use hdd_par::ThreadPool;

/// Configures and trains [`AdaBoost`] ensembles.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoostBuilder {
    rounds: usize,
    weak_depth: usize,
    threads: Option<usize>,
}

impl Default for AdaBoostBuilder {
    fn default() -> Self {
        AdaBoostBuilder {
            rounds: 30,
            weak_depth: 2,
            threads: None,
        }
    }
}

impl AdaBoostBuilder {
    /// Defaults: 30 boosting rounds of depth-2 trees.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum boosting rounds (training may stop early when a weak
    /// learner is perfect or no better than chance).
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn rounds(&mut self, rounds: usize) -> &mut Self {
        assert!(rounds >= 1, "need at least one round");
        self.rounds = rounds;
        self
    }

    /// Depth cap of the weak learners (decision stumps at depth 1).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn weak_depth(&mut self, depth: usize) -> &mut Self {
        assert!(depth >= 1, "weak learners need at least one level");
        self.weak_depth = depth;
        self
    }

    /// Worker threads (`None` — the default — uses the process-wide
    /// resolution). Boosting rounds are inherently sequential (each
    /// re-weights from the last), so the pool accelerates the inside of
    /// a round: the weak learner's split search and the per-sample
    /// prediction pass. The trained ensemble is bit-identical for every
    /// setting.
    ///
    /// # Panics
    ///
    /// Panics if `n` is `Some(0)`.
    pub fn threads(&mut self, n: Option<usize>) -> &mut Self {
        assert!(n != Some(0), "thread count must be at least 1");
        self.threads = n;
        self
    }

    /// Train an ensemble (discrete AdaBoost).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] on degenerate inputs.
    pub fn build(&self, samples: &[ClassSample]) -> Result<AdaBoost, TrainError> {
        crate::sample::validate_features(samples.iter().map(|s| s.features.as_slice()))?;
        let n = samples.len();
        let n_failed = samples.iter().filter(|s| s.class == Class::Failed).count();
        if n_failed == 0 || n_failed == n {
            return Err(TrainError::SingleClass);
        }

        let pool = self
            .threads
            .map_or_else(ThreadPool::global, ThreadPool::new);
        let mut weak_builder = ClassificationTreeBuilder::new();
        weak_builder
            .max_depth(Some(self.weak_depth + 1)) // depth counts the root
            .min_split(2)
            .min_bucket(1)
            .complexity(0.0)
            .failed_weight_fraction(None)
            .false_alarm_loss(1.0)
            .threads(Some(pool.n_threads()));

        // The feature matrix is constant across rounds: sort its stripes
        // once and memcpy the pristine copy back before each round instead
        // of re-sorting every column per weak learner.
        let classes: Vec<Class> = samples.iter().map(|s| s.class).collect();
        let matrix = FeatureMatrix::from_rows(samples.iter().map(|s| s.features.as_slice()));
        let mut pristine = SplitWorkspace::new();
        pristine.reset_sorted(&matrix, pool);
        let mut workspace = SplitWorkspace::new();

        let mut weights = vec![1.0 / n as f64; n];
        let mut members = Vec::new();
        for _ in 0..self.rounds {
            workspace.load_from(&pristine);
            let tree =
                weak_builder.build_weighted_prepared(&classes, &weights, &mut workspace, pool)?;
            // Weighted training error.
            let predictions: Vec<Class> = pool.parallel_map(samples, |s| tree.predict(&s.features));
            let err: f64 = weights
                .iter()
                .zip(samples.iter().zip(&predictions))
                .filter(|(_, (s, p))| s.class != **p)
                .map(|(w, _)| *w)
                .sum();
            if err >= 0.5 {
                break; // no better than chance: stop
            }
            let err = err.max(1e-12);
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            members.push(BoostMember { alpha, tree });
            if err <= 1e-12 {
                break; // perfect learner: further rounds are redundant
            }
            // Re-weight: mistakes up, hits down; then renormalize.
            let mut total = 0.0;
            for (w, (s, p)) in weights.iter_mut().zip(samples.iter().zip(&predictions)) {
                let agree = if s.class == *p { 1.0 } else { -1.0 };
                *w *= (-alpha * agree).exp();
                total += *w;
            }
            for w in &mut weights {
                *w /= total;
            }
        }
        if members.is_empty() {
            // Even the first weak learner was at chance; fall back to it.
            workspace.load_from(&pristine);
            let tree =
                weak_builder.build_weighted_prepared(&classes, &weights, &mut workspace, pool)?;
            members.push(BoostMember { alpha: 1.0, tree });
        }
        Ok(AdaBoost { members })
    }
}

#[derive(Debug, Clone, PartialEq)]
struct BoostMember {
    alpha: f64,
    tree: ClassificationTree,
}

/// A trained AdaBoost ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoost {
    members: Vec<BoostMember>,
}

impl AdaBoost {
    /// Number of boosting rounds actually used.
    #[must_use]
    pub fn n_rounds(&self) -> usize {
        self.members.len()
    }

    /// The weighted vote in `[-1, 1]`: positive means *good*, matching
    /// the paper's target convention.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than the training dimensionality.
    #[must_use]
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        let total: f64 = self.members.iter().map(|m| m.alpha).sum();
        let vote: f64 = self
            .members
            .iter()
            .map(|m| m.alpha * m.tree.predict(features).target())
            .sum();
        vote / total
    }

    /// Sign of the weighted vote.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> Class {
        if self.decision_value(features) < 0.0 {
            Class::Failed
        } else {
            Class::Good
        }
    }

    /// Compile to the flat serving form. Each weak learner votes its leaf
    /// class target with weight `αᵢ`; the member order and the `Σ α`
    /// divisor match [`decision_value`](AdaBoost::decision_value), so the
    /// compiled score is bit-identical to it.
    #[must_use]
    pub fn compile(&self) -> CompactForest {
        let n_features = self.members[0].tree.tree().n_features();
        let trees: Vec<CompactTree> = self
            .members
            .iter()
            .map(|m| CompactTree::from_arena(m.tree.tree(), None, |leaf| leaf.class.target()))
            .collect();
        let weights: Vec<f64> = self.members.iter().map(|m| m.alpha).collect();
        CompactForest::new(trees, weights, false, n_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diagonal boundary no single axis-aligned stump can express.
    fn diagonal(n: usize) -> Vec<ClassSample> {
        (0..n)
            .map(|i| {
                let x = (i % 17) as f64;
                let y = ((i * 7) % 19) as f64;
                let class = if x + y < 16.0 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x, y], class)
            })
            .collect()
    }

    #[test]
    fn boosting_beats_a_single_stump_on_diagonal_data() {
        let samples = diagonal(300);
        let mut stump_builder = ClassificationTreeBuilder::new();
        stump_builder
            .max_depth(Some(2))
            .failed_weight_fraction(None)
            .false_alarm_loss(1.0)
            .complexity(0.0)
            .min_split(2)
            .min_bucket(1);
        let stump = stump_builder.build(&samples).unwrap();
        let ensemble = AdaBoostBuilder::new()
            .rounds(40)
            .weak_depth(1)
            .build(&samples)
            .unwrap();

        let accuracy = |f: &dyn Fn(&[f64]) -> Class| {
            samples.iter().filter(|s| f(&s.features) == s.class).count() as f64
                / samples.len() as f64
        };
        let stump_acc = accuracy(&|x| stump.predict(x));
        let boost_acc = accuracy(&|x| ensemble.predict(x));
        assert!(
            boost_acc > stump_acc + 0.02,
            "boosting {boost_acc} vs stump {stump_acc}"
        );
        assert!(ensemble.n_rounds() > 1);
    }

    #[test]
    fn perfect_weak_learner_stops_early() {
        // Linearly separable on one feature: the first depth-2 tree is
        // perfect and boosting stops after one round.
        let samples: Vec<ClassSample> = (0..100)
            .map(|i| {
                let x = f64::from(i % 50);
                let class = if x < 25.0 { Class::Failed } else { Class::Good };
                ClassSample::new(vec![x], class)
            })
            .collect();
        let ensemble = AdaBoostBuilder::new().rounds(30).build(&samples).unwrap();
        assert_eq!(ensemble.n_rounds(), 1);
        assert_eq!(ensemble.predict(&[3.0]), Class::Failed);
        assert_eq!(ensemble.predict(&[40.0]), Class::Good);
    }

    #[test]
    fn decision_value_is_bounded() {
        let samples = diagonal(120);
        let ensemble = AdaBoostBuilder::new().rounds(10).build(&samples).unwrap();
        for s in &samples {
            let v = ensemble.decision_value(&s.features);
            assert!((-1.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn rejects_single_class() {
        let samples = vec![ClassSample::new(vec![1.0], Class::Good); 10];
        assert_eq!(
            AdaBoostBuilder::new().build(&samples).unwrap_err(),
            TrainError::SingleClass
        );
    }

    #[test]
    fn deterministic() {
        let samples = diagonal(150);
        let a = AdaBoostBuilder::new().build(&samples).unwrap();
        let b = AdaBoostBuilder::new().build(&samples).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let samples = diagonal(150);
        let mut serial = AdaBoostBuilder::new();
        serial.threads(Some(1));
        let mut parallel = AdaBoostBuilder::new();
        parallel.threads(Some(4));
        assert_eq!(
            serial.build(&samples).unwrap(),
            parallel.build(&samples).unwrap(),
            "ensemble must not depend on thread count"
        );
    }

    #[test]
    fn compiled_ensemble_matches_decision_value_exactly() {
        let samples = diagonal(150);
        let ensemble = AdaBoostBuilder::new().rounds(12).build(&samples).unwrap();
        let compiled = ensemble.compile();
        assert_eq!(compiled.n_trees(), ensemble.n_rounds());
        for s in &samples {
            let compiled_score = compiled.score(&s.features);
            let reference = ensemble.decision_value(&s.features);
            assert_eq!(compiled_score.to_bits(), reference.to_bits());
        }
    }
}
