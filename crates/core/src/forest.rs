//! Random forest — the paper's stated future work (§VII: "we will try
//! other statistical and machine learning methods, such as random forest,
//! to boost the prediction performance").
//!
//! A bagged ensemble of classification trees. Unlike Breiman's original
//! formulation (which re-draws a feature subset at every *node*), each
//! tree here draws one deterministic feature subset — a Fisher–Yates
//! prefix of `ceil(feature_fraction · n_features)` features, seeded per
//! tree — and keeps it for its whole depth. Each tree also trains on a
//! bootstrap resample of the training set, re-drawn until both classes
//! are present. Prediction is by majority vote, and the fraction of
//! trees voting *failed* is a usable failure score. The per-tree
//! fixed-subset rule trades a little decorrelation for reproducibility:
//! the whole ensemble is a pure function of `(samples, seed)`.
//!
//! Trees are independent given their seeds, so training fans out across
//! the [`hdd_par::ThreadPool`] — members are merged in tree order, and
//! each member trains with a serial split search when the outer pool is
//! parallel, keeping the forest bit-identical at any thread count.

use crate::classifier::{ClassificationTree, ClassificationTreeBuilder};
use crate::compact::{CompactForest, CompactTree};
use crate::sample::{Class, ClassSample, TrainError};
use crate::split::{FeatureMatrix, PresortedColumns, SplitWorkspace};
use hdd_par::ThreadPool;

/// Minimum number of training rows a forest worker task should cover.
///
/// The fork-join layer deals trees to workers in contiguous chunks; with
/// small forests `ceil(n_trees / n_threads)` collapses to a few trees per
/// task and spawn overhead dominates. Flooring the chunk so each task
/// covers at least this many rows of training work
/// (`min_chunk = ceil(FOREST_MIN_TASK_ROWS / n_samples)` trees) keeps the
/// per-task compute comfortably above the fork-join cost. Chunking only
/// changes how trees are dealt, never their content: each tree is a pure
/// function of `(samples, seed, tree index)`.
pub const FOREST_MIN_TASK_ROWS: usize = 16_384;

/// Configures and trains [`RandomForest`]s.
///
/// ```
/// use hdd_cart::{Class, ClassSample, RandomForestBuilder};
///
/// let samples: Vec<ClassSample> = (0..60)
///     .map(|i| {
///         let x = f64::from(i % 30);
///         let class = if x < 15.0 { Class::Failed } else { Class::Good };
///         ClassSample::new(vec![x, x * 0.5], class)
///     })
///     .collect();
/// let forest = RandomForestBuilder::new().build(&samples)?;
/// assert_eq!(forest.predict(&[5.0, 2.5]), Class::Failed);
/// # Ok::<(), hdd_cart::TrainError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestBuilder {
    n_trees: usize,
    feature_fraction: f64,
    base: ClassificationTreeBuilder,
    seed: u64,
    threads: Option<usize>,
}

impl Default for RandomForestBuilder {
    fn default() -> Self {
        RandomForestBuilder {
            n_trees: 25,
            feature_fraction: 0.6,
            base: ClassificationTreeBuilder::new(),
            seed: 0xF0_4E57,
            threads: None,
        }
    }
}

impl RandomForestBuilder {
    /// A builder with sensible defaults (25 trees, 60% of features each).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of trees in the ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn n_trees(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "a forest needs at least one tree");
        self.n_trees = n;
        self
    }

    /// Fraction of features each tree sees.
    ///
    /// # Panics
    ///
    /// Panics if outside `(0, 1]`.
    pub fn feature_fraction(&mut self, fraction: f64) -> &mut Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "feature fraction must be in (0, 1]"
        );
        self.feature_fraction = fraction;
        self
    }

    /// Hyper-parameters of the member trees.
    pub fn tree_builder(&mut self, base: ClassificationTreeBuilder) -> &mut Self {
        self.base = base;
        self
    }

    /// Bootstrap/feature-sampling seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Worker threads for per-tree training (`None` — the default — uses
    /// the process-wide resolution). The trained forest is bit-identical
    /// for every setting.
    ///
    /// # Panics
    ///
    /// Panics if `n` is `Some(0)`.
    pub fn threads(&mut self, n: Option<usize>) -> &mut Self {
        assert!(n != Some(0), "thread count must be at least 1");
        self.threads = n;
        self
    }

    /// Train a forest.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] on degenerate inputs (empty set, one class,
    /// malformed features).
    pub fn build(&self, samples: &[ClassSample]) -> Result<RandomForest, TrainError> {
        crate::sample::validate_features(samples.iter().map(|s| s.features.as_slice()))?;
        let n_features = samples[0].features.len();
        if !samples.iter().any(|s| s.class == Class::Failed)
            || !samples.iter().any(|s| s.class == Class::Good)
        {
            return Err(TrainError::SingleClass);
        }
        let per_tree =
            ((n_features as f64 * self.feature_fraction).ceil() as usize).clamp(1, n_features);

        let pool = self
            .threads
            .map_or_else(ThreadPool::global, ThreadPool::new);
        // Each tree is a pure function of its seed, so the pool can fan out
        // across trees; the inner split search goes serial when the outer
        // pool is parallel to avoid oversubscribing the machine.
        let inner_pool = if pool.is_parallel() {
            ThreadPool::serial()
        } else {
            self.base.pool()
        };

        let n = samples.len();
        let classes: Vec<Class> = samples.iter().map(|s| s.class).collect();
        let matrix = FeatureMatrix::from_rows(samples.iter().map(|s| s.features.as_slice()));
        // The expensive part of starting a tree is sorting every feature
        // column. Sort the *root* matrix once, share it read-only across
        // all tree tasks, and derive each tree's bootstrap stripes from it
        // in O(n) per feature instead of O(n log n).
        let root = PresortedColumns::with_pool(&matrix, pool);

        let tree_ids: Vec<usize> = (0..self.n_trees).collect();
        let chunk_pool = pool.with_min_chunk(FOREST_MIN_TASK_ROWS.div_ceil(n));
        let chunks = chunk_pool.parallel_for_chunks(&tree_ids, |ids| {
            // Per-worker scratch, reused across the chunk's trees: the
            // steady state allocates nothing per tree but the grown nodes.
            let mut workspace = SplitWorkspace::new();
            let mut features: Vec<usize> = Vec::with_capacity(n_features);
            let mut picks: Vec<u32> = vec![0; n];
            let mut counts: Vec<u32> = vec![0; n];
            let mut offsets: Vec<u32> = vec![0; n];
            let mut slots: Vec<u32> = vec![0; n];
            let mut proj_classes: Vec<Class> = Vec::with_capacity(n);

            let mut members = Vec::with_capacity(ids.len());
            for &t in ids {
                let tree_seed = splitmix(self.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                // Random feature subset (deterministic Fisher–Yates prefix).
                features.clear();
                features.extend(0..n_features);
                for i in 0..per_tree.min(n_features - 1) {
                    let j = i + (splitmix(tree_seed ^ i as u64) as usize) % (n_features - i);
                    features.swap(i, j);
                }
                let mut chosen = features[..per_tree].to_vec();
                chosen.sort_unstable();

                // Bootstrap resample; keep re-drawing until both classes
                // are present (almost always the first draw).
                let mut salt = 0u64;
                loop {
                    let mut n_failed = 0usize;
                    for (i, pick) in picks.iter_mut().enumerate() {
                        let draw = (splitmix(tree_seed ^ salt ^ ((i as u64) << 20)) as usize) % n;
                        *pick = draw as u32;
                        if classes[draw] == Class::Failed {
                            n_failed += 1;
                        }
                    }
                    if n_failed > 0 && n_failed < n {
                        break;
                    }
                    salt += 1;
                }
                proj_classes.clear();
                proj_classes.extend(picks.iter().map(|&p| classes[p as usize]));

                // Group bootstrap rows by source row (a counting sort):
                // after the fill, source row `s` owns
                // `slots[offsets[s]-counts[s]..offsets[s]]`, its bootstrap
                // row ids in ascending order.
                counts.fill(0);
                for &p in &picks {
                    counts[p as usize] += 1;
                }
                let mut acc = 0u32;
                for (offset, &count) in offsets.iter_mut().zip(&counts) {
                    *offset = acc;
                    acc += count;
                }
                for (i, &p) in picks.iter().enumerate() {
                    slots[offsets[p as usize] as usize] = i as u32;
                    offsets[p as usize] += 1;
                }

                // Derive the bootstrap's sorted stripes from the shared
                // root order: walk each chosen column in root-sorted order
                // and expand every source row into its bootstrap
                // duplicates. The result is value-sorted, so the split
                // search behaves exactly as if the stripe had been sorted
                // from scratch.
                let (orders, fvalues) = workspace.begin_fill(n, per_tree);
                for (local, &global) in chosen.iter().enumerate() {
                    let ids_stripe = &mut orders[local * n..(local + 1) * n];
                    let vals_stripe = &mut fvalues[local * n..(local + 1) * n];
                    let mut out = 0usize;
                    for &src in root.feature_order(global) {
                        let count = counts[src as usize] as usize;
                        if count == 0 {
                            continue;
                        }
                        let end = offsets[src as usize] as usize;
                        let value = matrix.value(src as usize, global);
                        for &boot_row in &slots[end - count..end] {
                            ids_stripe[out] = boot_row;
                            vals_stripe[out] = value;
                            out += 1;
                        }
                    }
                    debug_assert_eq!(out, n, "stripe must cover every bootstrap row");
                }

                let tree = match self
                    .base
                    .build_prepared(&proj_classes, &mut workspace, inner_pool)
                {
                    Ok(tree) => tree,
                    Err(e) => return Err(e),
                };
                members.push(Member {
                    features: chosen,
                    tree,
                });
            }
            Ok(members)
        });
        let mut trees = Vec::with_capacity(self.n_trees);
        for chunk in chunks {
            trees.extend(chunk?);
        }
        Ok(RandomForest { trees, n_features })
    }
}

/// One tree plus the feature subset it was trained on.
#[derive(Debug, Clone, PartialEq)]
struct Member {
    features: Vec<usize>,
    tree: ClassificationTree,
}

/// A trained bagged ensemble of classification trees.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<Member>,
    n_features: usize,
}

impl RandomForest {
    /// Number of member trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Dimensionality of the (full) feature vectors the forest votes on.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Compile to the flat serving form. Each member votes its leaf class
    /// target with weight 1, with member-local feature indices remapped to
    /// the global feature space, so the compiled score is
    /// `(n_good − n_failed) / n` — the same sign as
    /// [`predict`](RandomForest::predict) (strict-majority failed vote).
    #[must_use]
    pub fn compile(&self) -> CompactForest {
        let trees: Vec<CompactTree> = self
            .trees
            .iter()
            .map(|member| {
                CompactTree::from_arena(member.tree.tree(), Some(&member.features), |leaf| {
                    leaf.class.target()
                })
            })
            .collect();
        let weights = vec![1.0; trees.len()];
        CompactForest::new(trees, weights, false, self.n_features)
    }

    /// The fraction of trees voting *failed* for this sample, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than the training dimensionality.
    #[must_use]
    pub fn failed_vote_fraction(&self, features: &[f64]) -> f64 {
        let mut buf = Vec::new();
        let failed = self
            .trees
            .iter()
            .filter(|member| {
                buf.clear();
                buf.extend(member.features.iter().map(|&f| features[f]));
                member.tree.predict(&buf) == Class::Failed
            })
            .count();
        failed as f64 / self.trees.len() as f64
    }

    /// Majority-vote class.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> Class {
        if self.failed_vote_fraction(features) > 0.5 {
            Class::Failed
        } else {
            Class::Good
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> Vec<ClassSample> {
        (0..n)
            .flat_map(|i| {
                let x = (i % 23) as f64;
                [
                    ClassSample::new(vec![x, 0.0, x * 2.0], Class::Good),
                    ClassSample::new(vec![x + 60.0, 1.0, x], Class::Failed),
                ]
            })
            .collect()
    }

    #[test]
    fn learns_separable_problem() {
        let forest = RandomForestBuilder::new().build(&separable(60)).unwrap();
        assert_eq!(forest.n_trees(), 25);
        assert_eq!(forest.predict(&[5.0, 0.0, 10.0]), Class::Good);
        assert_eq!(forest.predict(&[70.0, 1.0, 10.0]), Class::Failed);
    }

    #[test]
    fn vote_fraction_is_bounded_and_consistent() {
        let forest = RandomForestBuilder::new().build(&separable(40)).unwrap();
        for q in [[5.0, 0.0, 10.0], [70.0, 1.0, 10.0], [30.0, 0.5, 30.0]] {
            let f = forest.failed_vote_fraction(&q);
            assert!((0.0..=1.0).contains(&f));
            assert_eq!(forest.predict(&q) == Class::Failed, f > 0.5);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let samples = separable(40);
        let a = RandomForestBuilder::new().build(&samples).unwrap();
        let b = RandomForestBuilder::new().build(&samples).unwrap();
        assert_eq!(a, b);
        let mut other = RandomForestBuilder::new();
        other.seed(1234);
        let c = other.build(&samples).unwrap();
        assert_ne!(a, c, "different seed, different forest");
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let samples = separable(40);
        let mut serial = RandomForestBuilder::new();
        serial.threads(Some(1));
        let mut parallel = RandomForestBuilder::new();
        parallel.threads(Some(4));
        assert_eq!(
            serial.build(&samples).unwrap(),
            parallel.build(&samples).unwrap(),
            "forest must not depend on thread count"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_threads() {
        let _ = RandomForestBuilder::new().threads(Some(0));
    }

    #[test]
    fn respects_tree_count_and_feature_fraction() {
        let mut builder = RandomForestBuilder::new();
        builder.n_trees(7).feature_fraction(0.34);
        let forest = builder.build(&separable(40)).unwrap();
        assert_eq!(forest.n_trees(), 7);
        // ceil(3 * 0.34) = 2 features per tree.
        assert!(forest.trees.iter().all(|m| m.features.len() == 2));
    }

    #[test]
    fn rejects_single_class() {
        let samples = vec![ClassSample::new(vec![1.0], Class::Good); 20];
        assert_eq!(
            RandomForestBuilder::new().build(&samples).unwrap_err(),
            TrainError::SingleClass
        );
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn rejects_zero_trees() {
        let _ = RandomForestBuilder::new().n_trees(0);
    }

    #[test]
    fn compiled_forest_matches_vote_fraction() {
        let forest = RandomForestBuilder::new().build(&separable(30)).unwrap();
        assert_eq!(forest.n_features(), 3);
        let compiled = forest.compile();
        assert_eq!(compiled.n_trees(), forest.n_trees());
        for q in [
            [5.0, 0.0, 1.0],
            [70.0, 1.0, 10.0],
            [30.0, 0.5, 30.0],
            [0.0, 0.0, 0.0],
        ] {
            let score = compiled.score(&q);
            let vote = forest.failed_vote_fraction(&q);
            assert!((score - (1.0 - 2.0 * vote)).abs() < 1e-12, "{q:?}");
            assert_eq!(score < 0.0, forest.predict(&q) == Class::Failed, "{q:?}");
        }
    }
}
