//! Complexity-parameter pruning (Algorithm 1, lines 18–22).
//!
//! After a tree is fully grown, every subtree whose root split achieved a
//! scaled gain below the complexity parameter is pruned back to a leaf.
//! Pruning rebuilds the arena so dead nodes do not linger.

use crate::classifier::ClassLeaf;
use crate::tree::{Node, NodeId, SplitNode, Tree};

/// Prune `tree`: collapse every subtree whose split gain is below `cp`.
#[must_use]
pub(crate) fn prune<L: Clone>(tree: &Tree<L>, cp: f64) -> Tree<L> {
    let mut nodes = Vec::with_capacity(tree.n_nodes());
    copy_pruned(tree, NodeId::ROOT, cp, &mut nodes);
    Tree::from_nodes(nodes, tree.n_features())
}

fn copy_pruned<L: Clone>(tree: &Tree<L>, id: NodeId, cp: f64, out: &mut Vec<Node<L>>) -> NodeId {
    let node = tree.node(id);
    let new_id = NodeId(out.len() as u32);
    out.push(Node {
        prediction: node.prediction.clone(),
        weight: node.weight,
        fraction: node.fraction,
        gain: 0.0,
        split: None,
    });
    if let Some(split) = &node.split {
        if node.gain >= cp {
            let left = copy_pruned(tree, split.left, cp, out);
            let right = copy_pruned(tree, split.right, cp, out);
            let copied = &mut out[new_id.0 as usize];
            copied.gain = node.gain;
            copied.split = Some(SplitNode {
                feature: split.feature,
                threshold: split.threshold,
                left,
                right,
                nan_left: split.nan_left,
            });
        }
    }
    new_id
}

/// Weakest-link cost-complexity pruning (Breiman et al., ch. 3) for
/// classification trees — the alternative to the paper's gain-threshold
/// rule, provided for ablations.
///
/// Each internal node `t` has a link strength
/// `g(t) = (R(t) − R(T_t)) / (|leaves(T_t)| − 1)` where `R` is the
/// weighted misclassification cost; nodes with `g(t) <= alpha` are
/// collapsed, weakest first, until none remain.
#[must_use]
pub fn cost_complexity_prune(tree: &Tree<ClassLeaf>, alpha: f64) -> Tree<ClassLeaf> {
    // Work on a mutable copy of the node arena via rebuild-per-collapse;
    // trees here are small (thousands of nodes at most).
    let mut current = prune(tree, 0.0); // clean copy
    loop {
        let Some((weakest, g)) = weakest_link(&current) else {
            return current;
        };
        if g > alpha {
            return current;
        }
        current = collapse(&current, weakest);
    }
}

/// Weighted misclassification cost of predicting this node's majority.
fn node_risk(leaf: &ClassLeaf) -> f64 {
    leaf.w_good.min(leaf.w_failed)
}

/// The internal node with the smallest link strength, if any.
fn weakest_link(tree: &Tree<ClassLeaf>) -> Option<(NodeId, f64)> {
    fn subtree(tree: &Tree<ClassLeaf>, id: NodeId) -> (f64, usize) {
        let node = tree.node(id);
        match &node.split {
            None => (node_risk(&node.prediction), 1),
            Some(s) => {
                let (rl, nl) = subtree(tree, s.left);
                let (rr, nr) = subtree(tree, s.right);
                (rl + rr, nl + nr)
            }
        }
    }
    let mut best: Option<(NodeId, f64)> = None;
    for i in 0..tree.n_nodes() {
        let id = NodeId(i as u32);
        let node = tree.node(id);
        if node.split.is_none() {
            continue;
        }
        let (r_sub, n_leaves) = subtree(tree, id);
        let g = (node_risk(&node.prediction) - r_sub) / (n_leaves as f64 - 1.0).max(1.0);
        if best.as_ref().is_none_or(|(_, bg)| g < *bg) {
            best = Some((id, g));
        }
    }
    best
}

/// Rebuild the tree with `target`'s subtree collapsed to a leaf.
fn collapse(tree: &Tree<ClassLeaf>, target: NodeId) -> Tree<ClassLeaf> {
    fn copy(
        tree: &Tree<ClassLeaf>,
        id: NodeId,
        target: NodeId,
        out: &mut Vec<Node<ClassLeaf>>,
    ) -> NodeId {
        let node = tree.node(id);
        let new_id = NodeId(out.len() as u32);
        out.push(Node {
            prediction: node.prediction,
            weight: node.weight,
            fraction: node.fraction,
            gain: 0.0,
            split: None,
        });
        if id != target {
            if let Some(split) = &node.split {
                let left = copy(tree, split.left, target, out);
                let right = copy(tree, split.right, target, out);
                let copied = &mut out[new_id.0 as usize];
                copied.gain = node.gain;
                copied.split = Some(SplitNode {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                    nan_left: split.nan_left,
                });
            }
        }
        new_id
    }
    let mut nodes = Vec::with_capacity(tree.n_nodes());
    copy(tree, NodeId::ROOT, target, &mut nodes);
    Tree::from_nodes(nodes, tree.n_features())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root(gain .5) -> [leafL, inner(gain .01) -> [leafRL, leafRR]]
    fn sample_tree() -> Tree<u8> {
        let leaf = |p: u8, w: f64| Node {
            prediction: p,
            weight: w,
            fraction: w / 10.0,
            gain: 0.0,
            split: None,
        };
        let mut root = leaf(0, 10.0);
        root.gain = 0.5;
        root.split = Some(SplitNode {
            feature: 0,
            threshold: 1.0,
            left: NodeId(1),
            right: NodeId(2),
            nan_left: true,
        });
        let mut inner = leaf(2, 4.0);
        inner.gain = 0.01;
        inner.split = Some(SplitNode {
            feature: 1,
            threshold: 5.0,
            left: NodeId(3),
            right: NodeId(4),
            nan_left: false,
        });
        Tree::from_nodes(
            vec![root, leaf(1, 6.0), inner, leaf(3, 2.0), leaf(4, 2.0)],
            2,
        )
    }

    #[test]
    fn zero_cp_keeps_everything() {
        let t = prune(&sample_tree(), 0.0);
        assert_eq!(t.n_nodes(), 5);
        assert_eq!(t.n_leaves(), 3);
    }

    #[test]
    fn mid_cp_prunes_weak_subtree() {
        let t = prune(&sample_tree(), 0.1);
        assert_eq!(t.n_nodes(), 3, "inner split collapses");
        // The collapsed node keeps its prediction.
        assert_eq!(t.leaf_for(&[5.0, 0.0]).prediction, 2);
    }

    #[test]
    fn huge_cp_prunes_to_root() {
        let t = prune(&sample_tree(), 1.0);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.leaf_for(&[0.0, 0.0]).prediction, 0);
    }

    mod cost_complexity {
        use super::super::*;
        use crate::classifier::ClassificationTreeBuilder;
        use crate::sample::{Class, ClassSample};

        fn noisy_tree() -> crate::classifier::ClassificationTree {
            // Separable core plus label noise: the full tree overfits.
            let samples: Vec<ClassSample> = (0..400)
                .map(|i| {
                    let x = (i % 40) as f64;
                    let noise = i % 17 == 0;
                    let class = if (x < 20.0) ^ noise {
                        Class::Failed
                    } else {
                        Class::Good
                    };
                    ClassSample::new(vec![x, (i % 7) as f64], class)
                })
                .collect();
            let mut b = ClassificationTreeBuilder::new();
            b.complexity(0.0)
                .min_split(2)
                .min_bucket(1)
                .failed_weight_fraction(None)
                .false_alarm_loss(1.0);
            b.build(&samples).unwrap()
        }

        #[test]
        fn zero_alpha_collapses_only_useless_splits() {
            let full = noisy_tree();
            let pruned = cost_complexity_prune(full.tree(), 0.0);
            assert!(pruned.n_leaves() <= full.tree().n_leaves());
            assert!(pruned.n_leaves() >= 2, "the core split must survive");
        }

        #[test]
        fn larger_alpha_prunes_more() {
            let full = noisy_tree();
            let mild = cost_complexity_prune(full.tree(), 1e-4);
            let harsh = cost_complexity_prune(full.tree(), 1.0);
            assert!(harsh.n_leaves() <= mild.n_leaves());
            assert_eq!(harsh.n_leaves(), 1, "huge alpha prunes to the root");
        }

        #[test]
        fn pruning_preserves_core_predictions() {
            let full = noisy_tree();
            let pruned = cost_complexity_prune(full.tree(), 1e-3);
            // The main boundary at x = 20 must survive mild pruning.
            assert_eq!(pruned.leaf_for(&[5.0, 0.0]).prediction.class, Class::Failed);
            assert_eq!(pruned.leaf_for(&[35.0, 0.0]).prediction.class, Class::Good);
        }
    }

    #[test]
    fn pruned_tree_has_no_dead_nodes() {
        let t = prune(&sample_tree(), 0.1);
        // Every non-root node must be referenced by exactly one split.
        let mut referenced = vec![false; t.n_nodes()];
        referenced[0] = true;
        for node in t.nodes() {
            if let Some(s) = &node.split {
                referenced[s.left.0 as usize] = true;
                referenced[s.right.0 as usize] = true;
            }
        }
        assert!(referenced.iter().all(|&r| r));
    }
}
