//! Training samples and validation.

use std::fmt;

/// Binary drive condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Healthy drive (target value `+1` in the paper).
    Good,
    /// Failing/failed drive (target value `-1`).
    Failed,
}

impl Class {
    /// The paper's numeric target encoding: `+1` good, `-1` failed.
    #[must_use]
    pub fn target(self) -> f64 {
        match self {
            Class::Good => 1.0,
            Class::Failed => -1.0,
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Class::Good => "good",
            Class::Failed => "failed",
        })
    }
}

/// A labelled classification sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSample {
    /// Feature vector.
    pub features: Vec<f64>,
    /// Ground-truth class.
    pub class: Class,
}

impl ClassSample {
    /// Create a sample.
    #[must_use]
    pub fn new(features: Vec<f64>, class: Class) -> Self {
        ClassSample { features, class }
    }
}

/// A regression sample: feature vector plus a real-valued target (a health
/// degree in `[-1, +1]` in the paper's usage).
#[derive(Debug, Clone, PartialEq)]
pub struct RegSample {
    /// Feature vector.
    pub features: Vec<f64>,
    /// Target value.
    pub target: f64,
}

impl RegSample {
    /// Create a sample.
    #[must_use]
    pub fn new(features: Vec<f64>, target: f64) -> Self {
        RegSample { features, target }
    }
}

/// Why training could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The training set was empty.
    NoSamples,
    /// Samples disagree on dimensionality, or a feature value is NaN.
    InvalidFeatures {
        /// Index of the offending sample.
        sample: usize,
        /// Explanation.
        reason: String,
    },
    /// Classification training requires both classes to be present.
    SingleClass,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NoSamples => f.write_str("training set is empty"),
            TrainError::InvalidFeatures { sample, reason } => {
                write!(f, "invalid features in sample {sample}: {reason}")
            }
            TrainError::SingleClass => f.write_str("training set contains only one class"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Validate a feature matrix: consistent dimensionality, finite values.
///
/// Returns the dimensionality.
pub(crate) fn validate_features<'a, I>(rows: I) -> Result<usize, TrainError>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut dim = None;
    for (i, row) in rows.into_iter().enumerate() {
        match dim {
            None => {
                if row.is_empty() {
                    return Err(TrainError::InvalidFeatures {
                        sample: i,
                        reason: "empty feature vector".to_string(),
                    });
                }
                dim = Some(row.len());
            }
            Some(d) if d != row.len() => {
                return Err(TrainError::InvalidFeatures {
                    sample: i,
                    reason: format!("expected {d} features, got {}", row.len()),
                });
            }
            _ => {}
        }
        if let Some(j) = row.iter().position(|v| !v.is_finite()) {
            return Err(TrainError::InvalidFeatures {
                sample: i,
                reason: format!("feature {j} is not finite"),
            });
        }
    }
    dim.ok_or(TrainError::NoSamples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_targets() {
        assert_eq!(Class::Good.target(), 1.0);
        assert_eq!(Class::Failed.target(), -1.0);
        assert_eq!(Class::Good.to_string(), "good");
    }

    #[test]
    fn validate_accepts_consistent_rows() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let dim = validate_features(rows.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(dim, 2);
    }

    #[test]
    fn validate_rejects_dimension_mismatch() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0]];
        let err = validate_features(rows.iter().map(Vec::as_slice)).unwrap_err();
        assert!(matches!(err, TrainError::InvalidFeatures { sample: 1, .. }));
    }

    #[test]
    fn validate_rejects_nan() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, f64::NAN]];
        let err = validate_features(rows.iter().map(Vec::as_slice)).unwrap_err();
        assert!(err.to_string().contains("not finite"), "{err}");
    }

    #[test]
    fn validate_rejects_empty_set_and_empty_rows() {
        let rows: Vec<Vec<f64>> = vec![];
        assert_eq!(
            validate_features(rows.iter().map(Vec::as_slice)).unwrap_err(),
            TrainError::NoSamples
        );
        let rows: Vec<Vec<f64>> = vec![vec![]];
        assert!(validate_features(rows.iter().map(Vec::as_slice)).is_err());
    }

    #[test]
    fn errors_display() {
        assert_eq!(TrainError::NoSamples.to_string(), "training set is empty");
        assert!(TrainError::SingleClass.to_string().contains("one class"));
    }
}
