//! Compiled flat trees for batch inference and persistence.
//!
//! Training produces pointer-chasing arenas ([`crate::tree::Tree`]) that
//! are convenient to grow, prune and print but slow to score in bulk and
//! awkward to serialize (leaf payloads are model-specific structs). This
//! module lowers every trained tree model onto one common runtime form:
//!
//! * [`CompactTree`] — a flat vector of 32-byte nodes (`u16` feature
//!   index, `f64` threshold, `u32` child links, one `f64` leaf payload).
//!   No generics, no pointers, two nodes per cache line; serialized as
//!   struct-of-arrays JSON.
//! * [`CompactForest`] — a weighted ensemble of compact trees with a
//!   single scalar score: `Σ wᵢ·treeᵢ(x) / Σ wᵢ`, optionally clamped to
//!   `[-1, 1]`. One tree with weight 1 degenerates to that tree's payload,
//!   so a lone classification or regression tree is just a forest of one.
//!
//! Every model family lowers onto this pair via a `compile()` method
//! (`ClassificationTree`, `RegressionTree`, `RandomForest`, `AdaBoost`,
//! `HealthModel`), preserving each family's score convention exactly:
//! positive means *good*, negative means *failing*, and thresholds and
//! summation orders match the training-time predictors bit for bit (for
//! ensembles whose score is already an ordered weighted sum) or in sign
//! (the random forest's majority vote).

use crate::split::FeatureMatrix;
use crate::tree::Tree;
use hdd_json::{JsonCodec, JsonError, Value};

/// Child-link sentinel marking a leaf node.
const LEAF: u32 = u32::MAX;

/// One flat tree node: 32 bytes, so two nodes share a cache line and a
/// traversal step touches exactly one node plus one feature value.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    threshold: f64,
    payload: f64,
    left: u32,
    right: u32,
    feature: u16,
    /// Missing-value routing: NaN goes to the majority-weight child
    /// recorded at training time (see [`crate::tree::SplitNode`]).
    nan_left: bool,
}

/// A flat decision tree over 32-byte nodes.
///
/// Node 0 is the root; children always have larger indices than their
/// parent (growth and pruning both emit pre-order arenas), so traversal
/// is guaranteed to terminate. A node is a leaf when its left link is
/// [`LEAF`]; leaves carry a single `f64` payload — the class target
/// (`±1`) for classification trees, the mean target for regression
/// trees. The JSON form stays struct-of-arrays (one array per field).
#[derive(Debug, Clone, PartialEq)]
pub struct CompactTree {
    nodes: Vec<Node>,
}

impl CompactTree {
    /// Lower an arena tree, mapping each leaf payload to `f64` and
    /// optionally remapping feature indices (`remap[local] = global`, for
    /// forest members trained on feature subsets).
    pub(crate) fn from_arena<L>(
        tree: &Tree<L>,
        remap: Option<&[usize]>,
        payload: impl Fn(&L) -> f64,
    ) -> CompactTree {
        let mut nodes = Vec::with_capacity(tree.n_nodes());
        for node in tree.nodes() {
            let payload = payload(&node.prediction);
            nodes.push(match &node.split {
                Some(s) => {
                    let global = remap.map_or(s.feature, |map| map[s.feature]);
                    assert!(global <= u16::MAX as usize, "feature index exceeds u16");
                    Node {
                        threshold: s.threshold,
                        payload,
                        left: s.left.0,
                        right: s.right.0,
                        feature: global as u16,
                        nan_left: s.nan_left,
                    }
                }
                None => Node {
                    threshold: 0.0,
                    payload,
                    left: LEAF,
                    right: LEAF,
                    feature: 0,
                    nan_left: false,
                },
            });
        }
        CompactTree { nodes }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Payload of the leaf covering `features`.
    #[must_use]
    pub fn score(&self, features: &[f64]) -> f64 {
        let mut node = &self.nodes[0];
        loop {
            if node.left == LEAF {
                return node.payload;
            }
            let v = features[node.feature as usize];
            // NaN comparisons are false, so `v < threshold` would silently
            // send every missing value right; route NaN explicitly to the
            // majority direction instead, exactly like the arena walker.
            let next = if v.is_nan() {
                if node.nan_left {
                    node.left
                } else {
                    node.right
                }
            } else if v < node.threshold {
                node.left
            } else {
                node.right
            };
            node = &self.nodes[next as usize];
        }
    }

    /// Accumulate `w · leaf(row)` into `out[r]` for every row of `x`.
    ///
    /// Split decisions and the accumulated value are identical to scoring
    /// each row alone.
    fn accumulate_batch(&self, x: &FeatureMatrix, w: f64, out: &mut [f64]) {
        for (row, slot) in x.rows().zip(out.iter_mut()) {
            *slot += w * self.score(row);
        }
    }

    /// Structural validation for decoded trees: forward-only child links,
    /// in-range features, finite numbers.
    fn validate(&self, n_features: usize) -> Result<(), JsonError> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(JsonError::new("tree has no nodes"));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.payload.is_finite() || !node.threshold.is_finite() {
                return Err(JsonError::new(format!("non-finite value at node {i}")));
            }
            let (l, r) = (node.left, node.right);
            if (l == LEAF) != (r == LEAF) {
                return Err(JsonError::new(format!("half-leaf node {i}")));
            }
            if l == LEAF {
                continue;
            }
            if (l as usize) <= i || (r as usize) <= i || l as usize >= n || r as usize >= n {
                return Err(JsonError::new(format!("bad child links at node {i}")));
            }
            if node.feature as usize >= n_features {
                return Err(JsonError::new(format!("feature out of range at node {i}")));
            }
        }
        Ok(())
    }
}

impl JsonCodec for CompactTree {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "feature".to_string(),
                Value::from_usizes(self.nodes.iter().map(|n| n.feature as usize)),
            ),
            (
                "threshold".to_string(),
                Value::from_f64s(self.nodes.iter().map(|n| n.threshold)),
            ),
            (
                "left".to_string(),
                Value::from_usizes(self.nodes.iter().map(|n| n.left as usize)),
            ),
            (
                "right".to_string(),
                Value::from_usizes(self.nodes.iter().map(|n| n.right as usize)),
            ),
            (
                "payload".to_string(),
                Value::from_f64s(self.nodes.iter().map(|n| n.payload)),
            ),
            (
                "nan".to_string(),
                Value::from_usizes(self.nodes.iter().map(|n| usize::from(n.nan_left))),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let link = |key: &str| -> Result<Vec<u32>, JsonError> {
            value
                .usize_vec_field(key)?
                .into_iter()
                .map(|v| u32::try_from(v).map_err(|_| JsonError::expected("u32 child link", key)))
                .collect()
        };
        let feature = value
            .usize_vec_field("feature")?
            .into_iter()
            .map(|v| u16::try_from(v).map_err(|_| JsonError::expected("u16 feature", "feature")))
            .collect::<Result<Vec<u16>, JsonError>>()?;
        let threshold = value.f64_vec_field("threshold")?;
        let left = link("left")?;
        let right = link("right")?;
        let payload = value.f64_vec_field("payload")?;
        let nan_left = value
            .usize_vec_field("nan")?
            .into_iter()
            .map(|v| match v {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(JsonError::expected("0 or 1", "nan")),
            })
            .collect::<Result<Vec<bool>, JsonError>>()?;
        let n = payload.len();
        if [
            feature.len(),
            threshold.len(),
            left.len(),
            right.len(),
            nan_left.len(),
        ]
        .iter()
        .any(|&len| len != n)
        {
            return Err(JsonError::new("tree arrays disagree on length"));
        }
        let nodes = (0..n)
            .map(|i| Node {
                threshold: threshold[i],
                payload: payload[i],
                left: left[i],
                right: right[i],
                feature: feature[i],
                nan_left: nan_left[i],
            })
            .collect();
        Ok(CompactTree { nodes })
    }
}

/// A compiled weighted tree ensemble scoring `Σ wᵢ·treeᵢ(x) / Σ wᵢ`.
///
/// This is the serving form of every tree model in the workspace:
/// positive scores mean *good*, negative mean *failing*, matching the
/// paper's target convention throughout.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactForest {
    trees: Vec<CompactTree>,
    weights: Vec<f64>,
    /// Precomputed `Σ weights` (same summation order as the weights vec).
    total: f64,
    /// Clamp the final score to `[-1, 1]` (health models do).
    clamp: bool,
    n_features: usize,
}

impl CompactForest {
    /// Assemble a forest from compiled trees and per-tree weights.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty, lengths disagree, or the weight total
    /// is not a positive finite number.
    pub(crate) fn new(
        trees: Vec<CompactTree>,
        weights: Vec<f64>,
        clamp: bool,
        n_features: usize,
    ) -> Self {
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        assert_eq!(trees.len(), weights.len(), "one weight per tree");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weight total must be positive and finite"
        );
        CompactForest {
            trees,
            weights,
            total,
            clamp,
            n_features,
        }
    }

    /// Dimensionality of the feature vectors this forest scores.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of member trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Whether the final score is clamped to `[-1, 1]`.
    #[must_use]
    pub fn is_clamped(&self) -> bool {
        self.clamp
    }

    /// Score one sample: the normalized weighted vote, positive = good.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than [`CompactForest::n_features`].
    #[must_use]
    pub fn score(&self, features: &[f64]) -> f64 {
        assert!(
            features.len() >= self.n_features,
            "feature vector too short: {} < {}",
            features.len(),
            self.n_features
        );
        let mut acc = 0.0;
        for (tree, w) in self.trees.iter().zip(&self.weights) {
            acc += w * tree.score(features);
        }
        self.finish(acc)
    }

    /// `true` when the score is negative (the failing side).
    #[must_use]
    pub fn is_failed(&self, features: &[f64]) -> bool {
        self.score(features) < 0.0
    }

    /// Score every row of `x` into `out`.
    ///
    /// Trees run in the outer loop so each tree's arrays stay hot in
    /// cache across the whole batch; per-row results are identical to
    /// [`CompactForest::score`] (same accumulation order).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width or `out` the wrong length.
    pub fn predict_batch(&self, x: &FeatureMatrix, out: &mut [f64]) {
        assert_eq!(
            x.n_features(),
            self.n_features,
            "feature matrix width mismatch"
        );
        assert_eq!(out.len(), x.n_rows(), "one output slot per row");
        out.fill(0.0);
        for (tree, &w) in self.trees.iter().zip(&self.weights) {
            tree.accumulate_batch(x, w, out);
        }
        for slot in out.iter_mut() {
            *slot = self.finish(*slot);
        }
    }

    fn finish(&self, acc: f64) -> f64 {
        let score = acc / self.total;
        if self.clamp {
            score.clamp(-1.0, 1.0)
        } else {
            score
        }
    }
}

impl JsonCodec for CompactForest {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("n_features".to_string(), Value::Num(self.n_features as f64)),
            ("clamp".to_string(), Value::Bool(self.clamp)),
            (
                "weights".to_string(),
                Value::from_f64s(self.weights.iter().copied()),
            ),
            (
                "trees".to_string(),
                Value::Arr(self.trees.iter().map(JsonCodec::to_json).collect()),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let n_features = value.usize_field("n_features")?;
        if n_features == 0 || n_features > u16::MAX as usize + 1 {
            return Err(JsonError::expected("1..=65536", "n_features"));
        }
        let clamp = value
            .field("clamp")?
            .as_bool()
            .ok_or_else(|| JsonError::expected("boolean", "clamp"))?;
        let weights = value.f64_vec_field("weights")?;
        let trees = value
            .field("trees")?
            .as_arr()
            .ok_or_else(|| JsonError::expected("array", "trees"))?
            .iter()
            .map(CompactTree::from_json)
            .collect::<Result<Vec<CompactTree>, JsonError>>()?;
        if trees.is_empty() || trees.len() != weights.len() {
            return Err(JsonError::new("trees and weights disagree"));
        }
        for tree in &trees {
            tree.validate(n_features)?;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(JsonError::new("weight total must be positive and finite"));
        }
        Ok(CompactForest {
            trees,
            weights,
            total,
            clamp,
            n_features,
        })
    }
}

impl crate::classifier::ClassificationTree {
    /// Compile to the flat serving form. The single tree votes its leaf
    /// class target (`+1` good, `-1` failed), so the compiled score is
    /// exactly [`Class::target`](crate::Class::target) of
    /// [`predict`](crate::classifier::ClassificationTree::predict).
    #[must_use]
    pub fn compile(&self) -> CompactForest {
        let tree = CompactTree::from_arena(self.tree(), None, |leaf| leaf.class.target());
        CompactForest::new(vec![tree], vec![1.0], false, self.tree().n_features())
    }
}

impl crate::regressor::RegressionTree {
    /// Compile to the flat serving form; the compiled score is exactly
    /// [`predict`](crate::regressor::RegressionTree::predict) (the leaf
    /// mean), unclamped.
    #[must_use]
    pub fn compile(&self) -> CompactForest {
        let tree = CompactTree::from_arena(self.tree(), None, |leaf| leaf.mean);
        CompactForest::new(vec![tree], vec![1.0], false, self.tree().n_features())
    }
}

impl crate::health::HealthModel {
    /// Compile to the flat serving form; the compiled score is exactly
    /// [`health`](crate::health::HealthModel::health) (the leaf mean
    /// clamped to `[-1, 1]`). The detection threshold is not baked in —
    /// detectors carry it (the paper tunes it after training).
    #[must_use]
    pub fn compile(&self) -> CompactForest {
        let arena = self.tree().tree();
        let tree = CompactTree::from_arena(arena, None, |leaf| leaf.mean);
        CompactForest::new(vec![tree], vec![1.0], true, arena.n_features())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassificationTreeBuilder;
    use crate::health::HealthModel;
    use crate::regressor::RegressionTreeBuilder;
    use crate::sample::{Class, ClassSample, RegSample};

    fn grid(n_features: usize) -> Vec<Vec<f64>> {
        (0..200)
            .map(|i| {
                (0..n_features)
                    .map(|f| ((i * (f + 3) + f * 11) % 97) as f64 - 20.0)
                    .collect()
            })
            .collect()
    }

    fn class_samples(n: usize) -> Vec<ClassSample> {
        (0..n)
            .map(|i| {
                let x = (i % 31) as f64;
                let y = ((i * 5) % 13) as f64;
                let class = if x + 2.0 * y < 25.0 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x, y], class)
            })
            .collect()
    }

    #[test]
    fn classification_tree_parity() {
        let tree = ClassificationTreeBuilder::new()
            .build(&class_samples(300))
            .unwrap();
        let compiled = tree.compile();
        assert_eq!(compiled.n_features(), 2);
        for q in grid(2) {
            assert_eq!(compiled.score(&q), tree.predict(&q).target(), "{q:?}");
        }
    }

    #[test]
    fn regression_tree_parity() {
        let samples: Vec<RegSample> = (0..300)
            .map(|i| {
                let x = (i % 50) as f64;
                RegSample::new(vec![x, (i % 7) as f64], (x / 10.0).floor() - 2.0)
            })
            .collect();
        let tree = RegressionTreeBuilder::new().build(&samples).unwrap();
        let compiled = tree.compile();
        for q in grid(2) {
            assert_eq!(compiled.score(&q).to_bits(), tree.predict(&q).to_bits());
        }
    }

    #[test]
    fn health_model_parity_is_clamped() {
        let samples: Vec<RegSample> = (0..200)
            .map(|i| {
                let x = (i % 40) as f64;
                RegSample::new(vec![x], if x < 20.0 { -3.0 } else { 3.0 })
            })
            .collect();
        let model = HealthModel::new(RegressionTreeBuilder::new().build(&samples).unwrap(), -0.2);
        let compiled = model.compile();
        assert!(compiled.is_clamped());
        for q in grid(1) {
            let s = compiled.score(&q);
            assert!((-1.0..=1.0).contains(&s));
            assert_eq!(s.to_bits(), model.health(&q).to_bits());
        }
    }

    #[test]
    fn nan_routing_matches_arena_walker_bit_for_bit() {
        let tree = ClassificationTreeBuilder::new()
            .build(&class_samples(300))
            .unwrap();
        let compiled = tree.compile();
        // Poke NaN into each coordinate in turn, and both at once: the
        // compiled walker and the arena walker must agree exactly.
        for q in grid(2) {
            for mask in 1..4usize {
                let mut probe = q.clone();
                if mask & 1 != 0 {
                    probe[0] = f64::NAN;
                }
                if mask & 2 != 0 {
                    probe[1] = f64::NAN;
                }
                assert_eq!(
                    compiled.score(&probe).to_bits(),
                    tree.predict(&probe).target().to_bits(),
                    "{probe:?}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_per_sample_exactly() {
        let tree = ClassificationTreeBuilder::new()
            .build(&class_samples(300))
            .unwrap();
        let compiled = tree.compile();
        let rows = grid(2);
        let matrix = FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice));
        let mut out = vec![0.0; rows.len()];
        compiled.predict_batch(&matrix, &mut out);
        for (row, batch) in rows.iter().zip(&out) {
            assert_eq!(batch.to_bits(), compiled.score(row).to_bits());
        }
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let tree = ClassificationTreeBuilder::new()
            .build(&class_samples(300))
            .unwrap();
        let compiled = tree.compile();
        let text = hdd_json::to_string(&compiled.to_json());
        let back = CompactForest::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, compiled);
        for q in grid(2) {
            assert_eq!(back.score(&q).to_bits(), compiled.score(&q).to_bits());
        }
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        let tree = ClassificationTreeBuilder::new()
            .build(&class_samples(200))
            .unwrap();
        let good = tree.compile().to_json();

        let mutate = |key: &str, v: Value| {
            let mut doc = good.clone();
            if let Value::Obj(pairs) = &mut doc {
                for (k, slot) in pairs.iter_mut() {
                    if k == key {
                        *slot = v.clone();
                    }
                }
            }
            doc
        };
        // Wrong-length weights.
        let doc = mutate("weights", Value::from_f64s([1.0, 2.0]));
        assert!(CompactForest::from_json(&doc).is_err());
        // Zero features.
        let doc = mutate("n_features", Value::Num(0.0));
        assert!(CompactForest::from_json(&doc).is_err());
        // Backward child link (node pointing at itself).
        let text = hdd_json::to_string(&good);
        let cyclic = text.replacen("\"left\":[", "\"left\":[0,", 1);
        let parsed = hdd_json::parse(&cyclic).unwrap();
        assert!(CompactForest::from_json(&parsed).is_err());
        // Empty forest.
        let doc = mutate("trees", Value::Arr(Vec::new()));
        assert!(CompactForest::from_json(&doc).is_err());
    }

    #[test]
    fn compiled_stump_has_flat_layout() {
        let samples: Vec<ClassSample> = (0..100)
            .map(|i| {
                let x = (i % 20) as f64;
                ClassSample::new(vec![x], if x < 10.0 { Class::Failed } else { Class::Good })
            })
            .collect();
        let tree = ClassificationTreeBuilder::new().build(&samples).unwrap();
        let compiled = tree.compile();
        assert_eq!(compiled.n_trees(), 1);
        assert!(compiled.trees[0].n_nodes() >= 3);
        assert_eq!(compiled.score(&[3.0]), -1.0);
        assert_eq!(compiled.score(&[15.0]), 1.0);
    }
}
