//! Compiled flat trees for batch inference and persistence.
//!
//! Training produces pointer-chasing arenas ([`crate::tree::Tree`]) that
//! are convenient to grow, prune and print but slow to score in bulk and
//! awkward to serialize (leaf payloads are model-specific structs). This
//! module lowers every trained tree model onto one common runtime form:
//!
//! * [`CompactTree`] — a flat vector of 32-byte nodes (`u16` feature
//!   index, `f64` threshold, `u32` child links, one `f64` leaf payload).
//!   No generics, no pointers, two nodes per cache line; serialized as
//!   struct-of-arrays JSON.
//! * [`CompactForest`] — a weighted ensemble of compact trees with a
//!   single scalar score: `Σ wᵢ·treeᵢ(x) / Σ wᵢ`, optionally clamped to
//!   `[-1, 1]`. One tree with weight 1 degenerates to that tree's payload,
//!   so a lone classification or regression tree is just a forest of one.
//!
//! Every model family lowers onto this pair via a `compile()` method
//! (`ClassificationTree`, `RegressionTree`, `RandomForest`, `AdaBoost`,
//! `HealthModel`), preserving each family's score convention exactly:
//! positive means *good*, negative means *failing*, and thresholds and
//! summation orders match the training-time predictors bit for bit (for
//! ensembles whose score is already an ordered weighted sum) or in sign
//! (the random forest's majority vote).

use crate::split::FeatureMatrix;
use crate::tree::Tree;
use hdd_json::{JsonCodec, JsonError, Value};

/// Child-link sentinel marking a leaf node.
const LEAF: u32 = u32::MAX;

/// Samples a batched traversal keeps in flight per tree. Eight cursors
/// overlap enough node/feature loads to hide memory latency without
/// spilling the lane state out of registers.
const BATCH_LANES: usize = 8;

/// Rows per cache block in the forest batch path. Ensembles walk every
/// tree over one block before moving to the next, so each block's
/// feature rows are read from memory once and stay L1-resident across
/// all member trees (256 rows × 13 features × 8 bytes ≈ 26 KiB) instead
/// of the whole matrix streaming through cache once per tree.
const ROW_BLOCK: usize = 256;

/// One flat tree node: 32 bytes, so two nodes share a cache line and a
/// traversal step touches exactly one node plus one feature value.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    threshold: f64,
    payload: f64,
    left: u32,
    right: u32,
    feature: u16,
    /// Missing-value routing: NaN goes to the majority-weight child
    /// recorded at training time (see [`crate::tree::SplitNode`]).
    nan_left: bool,
}

const _: () = assert!(std::mem::size_of::<Node>() == 32, "Node must stay 32 bytes");

/// A flat decision tree over 32-byte nodes.
///
/// Node 0 is the root; children always have larger indices than their
/// parent (growth and pruning both emit pre-order arenas), so traversal
/// is guaranteed to terminate. A node is a leaf when its left link is
/// [`LEAF`]; leaves carry a single `f64` payload — the class target
/// (`±1`) for classification trees, the mean target for regression
/// trees. The JSON form stays struct-of-arrays (one array per field).
#[derive(Debug, Clone, PartialEq)]
pub struct CompactTree {
    nodes: Vec<Node>,
}

impl CompactTree {
    /// Lower an arena tree, mapping each leaf payload to `f64` and
    /// optionally remapping feature indices (`remap[local] = global`, for
    /// forest members trained on feature subsets).
    pub(crate) fn from_arena<L>(
        tree: &Tree<L>,
        remap: Option<&[usize]>,
        payload: impl Fn(&L) -> f64,
    ) -> CompactTree {
        let mut nodes = Vec::with_capacity(tree.n_nodes());
        for node in tree.nodes() {
            let payload = payload(&node.prediction);
            nodes.push(match &node.split {
                Some(s) => {
                    let global = remap.map_or(s.feature, |map| map[s.feature]);
                    assert!(global <= u16::MAX as usize, "feature index exceeds u16");
                    Node {
                        threshold: s.threshold,
                        payload,
                        left: s.left.0,
                        right: s.right.0,
                        // audit:allow(R4) reason="exact: the assert above proves global <= u16::MAX"
                        feature: global as u16,
                        nan_left: s.nan_left,
                    }
                }
                None => Node {
                    threshold: 0.0,
                    payload,
                    left: LEAF,
                    right: LEAF,
                    feature: 0,
                    nan_left: false,
                },
            });
        }
        CompactTree { nodes }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Payload of the leaf covering `features`.
    #[must_use]
    pub fn score(&self, features: &[f64]) -> f64 {
        let mut node = &self.nodes[0];
        loop {
            if node.left == LEAF {
                return node.payload;
            }
            let v = features[node.feature as usize];
            // NaN comparisons are false, so `v < threshold` would silently
            // send every missing value right; route NaN explicitly to the
            // majority direction instead, exactly like the arena walker.
            let next = if v.is_nan() {
                if node.nan_left {
                    node.left
                } else {
                    node.right
                }
            } else if v < node.threshold {
                node.left
            } else {
                node.right
            };
            node = &self.nodes[next as usize];
        }
    }

    /// Longest root-to-leaf path in edges; the lockstep walk runs exactly
    /// this many passes. Walked explicitly (not assumed from node order)
    /// so decoded trees with unusual layouts still get a correct depth.
    fn max_depth(&self) -> u32 {
        let mut max = 0u32;
        let mut stack = vec![(0u32, 0u32)];
        while let Some((i, d)) = stack.pop() {
            let node = &self.nodes[i as usize];
            if node.left == LEAF {
                max = max.max(d);
            } else {
                stack.push((node.left, d + 1));
                stack.push((node.right, d + 1));
            }
        }
        max
    }

    /// Accumulate `w · leaf(row)` into `out[r]` for rows `start..end`.
    ///
    /// Rows are traversed [`BATCH_LANES`] at a time in a struct-of-lanes
    /// walk capped at `depth` (= [`CompactTree::max_depth`]) passes: every
    /// pass advances each cursor one level with selects only
    /// (`left`/`right` picked arithmetically, leaves self-loop), so the
    /// only branch is one well-predicted all-lanes-done check per level
    /// and the loads of eight independent root-to-leaf chains overlap
    /// instead of serializing on one pointer chase. Split decisions and
    /// the accumulated value are bit-identical to scoring each row alone.
    fn accumulate_range(
        &self,
        x: &FeatureMatrix,
        start: usize,
        end: usize,
        depth: u32,
        w: f64,
        out: &mut [f64],
    ) {
        let root = &self.nodes[0];
        if root.left == LEAF {
            // Single-node tree: every row lands on the root payload.
            let add = w * root.payload;
            for slot in &mut out[start..end] {
                *slot += add;
            }
            return;
        }
        let mut base = start;
        while base + BATCH_LANES <= end {
            // One slice per lane: feature loads below are plain slice
            // indexing, no per-access row-offset arithmetic.
            let rows: [&[f64]; BATCH_LANES] = std::array::from_fn(|lane| x.row(base + lane));
            let mut cursors = [0u32; BATCH_LANES];
            for _ in 0..depth {
                let mut live = false;
                for (lane, cursor) in cursors.iter_mut().enumerate() {
                    let node = &self.nodes[*cursor as usize];
                    let leaf = node.left == LEAF;
                    let v = rows[lane][node.feature as usize];
                    let go_left = if v.is_nan() {
                        node.nan_left
                    } else {
                        v < node.threshold
                    };
                    let step = if go_left { node.left } else { node.right };
                    *cursor = if leaf { *cursor } else { step };
                    live |= !leaf;
                }
                if !live {
                    break;
                }
            }
            for (lane, &cursor) in cursors.iter().enumerate() {
                out[base + lane] += w * self.nodes[cursor as usize].payload;
            }
            base += BATCH_LANES;
        }
        // Ragged tail: fewer than BATCH_LANES rows left, walk them alone.
        for (slot, row) in out[base..end].iter_mut().zip(base..) {
            *slot += w * self.score(x.row(row));
        }
    }

    /// Structural validation for decoded trees: forward-only child links,
    /// in-range features, finite numbers.
    fn validate(&self, n_features: usize) -> Result<(), JsonError> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(JsonError::new("tree has no nodes"));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.payload.is_finite() || !node.threshold.is_finite() {
                return Err(JsonError::new(format!("non-finite value at node {i}")));
            }
            let (l, r) = (node.left, node.right);
            if (l == LEAF) != (r == LEAF) {
                return Err(JsonError::new(format!("half-leaf node {i}")));
            }
            if l == LEAF {
                continue;
            }
            // audit:allow(R4) reason="u32 -> usize widens on every supported target; this line *is* the bounds validation"
            if (l as usize) <= i || (r as usize) <= i || l as usize >= n || r as usize >= n {
                return Err(JsonError::new(format!("bad child links at node {i}")));
            }
            // audit:allow(R4) reason="u16 -> usize widens on every supported target; this line *is* the bounds validation"
            if node.feature as usize >= n_features {
                return Err(JsonError::new(format!("feature out of range at node {i}")));
            }
        }
        Ok(())
    }
}

impl JsonCodec for CompactTree {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "feature".to_string(),
                // audit:allow(R4) reason="u16 -> usize serialization widening; exact by construction"
                Value::from_usizes(self.nodes.iter().map(|n| n.feature as usize)),
            ),
            (
                "threshold".to_string(),
                Value::from_f64s(self.nodes.iter().map(|n| n.threshold)),
            ),
            (
                "left".to_string(),
                // audit:allow(R4) reason="u32 -> usize serialization widening; exact on every supported target"
                Value::from_usizes(self.nodes.iter().map(|n| n.left as usize)),
            ),
            (
                "right".to_string(),
                // audit:allow(R4) reason="u32 -> usize serialization widening; exact on every supported target"
                Value::from_usizes(self.nodes.iter().map(|n| n.right as usize)),
            ),
            (
                "payload".to_string(),
                Value::from_f64s(self.nodes.iter().map(|n| n.payload)),
            ),
            (
                "nan".to_string(),
                Value::from_usizes(self.nodes.iter().map(|n| usize::from(n.nan_left))),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let link = |key: &str| -> Result<Vec<u32>, JsonError> {
            value
                .usize_vec_field(key)?
                .into_iter()
                .map(|v| u32::try_from(v).map_err(|_| JsonError::expected("u32 child link", key)))
                .collect()
        };
        let feature = value
            .usize_vec_field("feature")?
            .into_iter()
            .map(|v| u16::try_from(v).map_err(|_| JsonError::expected("u16 feature", "feature")))
            .collect::<Result<Vec<u16>, JsonError>>()?;
        let threshold = value.f64_vec_field("threshold")?;
        let left = link("left")?;
        let right = link("right")?;
        let payload = value.f64_vec_field("payload")?;
        let nan_left = value
            .usize_vec_field("nan")?
            .into_iter()
            .map(|v| match v {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(JsonError::expected("0 or 1", "nan")),
            })
            .collect::<Result<Vec<bool>, JsonError>>()?;
        let n = payload.len();
        if [
            feature.len(),
            threshold.len(),
            left.len(),
            right.len(),
            nan_left.len(),
        ]
        .iter()
        .any(|&len| len != n)
        {
            return Err(JsonError::new("tree arrays disagree on length"));
        }
        let nodes = (0..n)
            .map(|i| Node {
                threshold: threshold[i],
                payload: payload[i],
                left: left[i],
                right: right[i],
                feature: feature[i],
                nan_left: nan_left[i],
            })
            .collect();
        Ok(CompactTree { nodes })
    }
}

/// A compiled weighted tree ensemble scoring `Σ wᵢ·treeᵢ(x) / Σ wᵢ`.
///
/// This is the serving form of every tree model in the workspace:
/// positive scores mean *good*, negative mean *failing*, matching the
/// paper's target convention throughout.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactForest {
    trees: Vec<CompactTree>,
    weights: Vec<f64>,
    /// Precomputed `Σ weights` (same summation order as the weights vec).
    total: f64,
    /// Clamp the final score to `[-1, 1]` (health models do).
    clamp: bool,
    n_features: usize,
}

impl CompactForest {
    /// Assemble a forest from compiled trees and per-tree weights.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty, lengths disagree, or the weight total
    /// is not a positive finite number.
    pub(crate) fn new(
        trees: Vec<CompactTree>,
        weights: Vec<f64>,
        clamp: bool,
        n_features: usize,
    ) -> Self {
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        assert_eq!(trees.len(), weights.len(), "one weight per tree");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weight total must be positive and finite"
        );
        CompactForest {
            trees,
            weights,
            total,
            clamp,
            n_features,
        }
    }

    /// Dimensionality of the feature vectors this forest scores.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of member trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Whether the final score is clamped to `[-1, 1]`.
    #[must_use]
    pub fn is_clamped(&self) -> bool {
        self.clamp
    }

    /// Score one sample: the normalized weighted vote, positive = good.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than [`CompactForest::n_features`].
    #[must_use]
    pub fn score(&self, features: &[f64]) -> f64 {
        assert!(
            features.len() >= self.n_features,
            "feature vector too short: {} < {}",
            features.len(),
            self.n_features
        );
        let mut acc = 0.0;
        for (tree, w) in self.trees.iter().zip(&self.weights) {
            acc += w * tree.score(features);
        }
        self.finish(acc)
    }

    /// `true` when the score is negative (the failing side).
    #[must_use]
    pub fn is_failed(&self, features: &[f64]) -> bool {
        self.score(features) < 0.0
    }

    /// Score every row of `x` into `out`.
    ///
    /// Two kernels, picked by measured regime (OPTIMIZATION_LOG.md
    /// entry 5): single-tree forests — the serve tick's shape — walk
    /// [`BATCH_LANES`] rows in branchless lockstep per [`ROW_BLOCK`]
    /// cache block; multi-tree ensembles walk each row through every
    /// tree with a register accumulator (the speculated scalar walk
    /// beats the lockstep cursor chain once an L1-resident ensemble
    /// amortizes the per-row feature loads). Per-row results are
    /// identical to [`CompactForest::score`] on both paths (same
    /// accumulation order — trees in order within each row).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width or `out` the wrong length.
    pub fn predict_batch(&self, x: &FeatureMatrix, out: &mut [f64]) {
        assert_eq!(
            x.n_features(),
            self.n_features,
            "feature matrix width mismatch"
        );
        assert_eq!(out.len(), x.n_rows(), "one output slot per row");
        if self.trees.len() > 1 {
            for (row, slot) in x.rows().zip(out.iter_mut()) {
                let mut acc = 0.0;
                for (tree, &w) in self.trees.iter().zip(&self.weights) {
                    acc += w * tree.score(row);
                }
                *slot = self.finish(acc);
            }
            return;
        }
        out.fill(0.0);
        let depths: Vec<u32> = self.trees.iter().map(CompactTree::max_depth).collect();
        let n = x.n_rows();
        let mut start = 0usize;
        while start < n {
            let end = (start + ROW_BLOCK).min(n);
            for ((tree, &w), &depth) in self.trees.iter().zip(&self.weights).zip(&depths) {
                tree.accumulate_range(x, start, end, depth, w, out);
            }
            start = end;
        }
        for slot in out.iter_mut() {
            *slot = self.finish(*slot);
        }
    }

    fn finish(&self, acc: f64) -> f64 {
        let score = acc / self.total;
        if self.clamp {
            score.clamp(-1.0, 1.0)
        } else {
            score
        }
    }

    /// Quantize to the 16-byte-node serving form, or `None` when some
    /// threshold has no `f32` that preserves every decision on `matrix`
    /// (see [`QuantForest::from_forest`]).
    #[must_use]
    pub fn quantize(&self, matrix: &FeatureMatrix) -> Option<QuantForest> {
        QuantForest::from_forest(self, matrix)
    }
}

/// Leaf marker bit in [`QuantNode::flags`].
const QLEAF: u16 = 1 << 1;
/// NaN-routing bit in [`QuantNode::flags`] (set = NaN goes left).
const QNAN_LEFT: u16 = 1 << 0;

/// One quantized flat node: 16 bytes, so four nodes share a cache line —
/// double the traversal density of the 32-byte [`Node`].
///
/// Internal nodes compare against an `f32` threshold snapped between the
/// observed feature values that straddle the original `f64` threshold, so
/// every `v < threshold` decision is preserved for those values. Leaves
/// keep their exact `f64` payload in a side table indexed by `left`, so
/// scores — not just decisions — match the unquantized forest bit for
/// bit.
#[derive(Debug, Clone, PartialEq)]
struct QuantNode {
    threshold: f32,
    left: u32,
    right: u32,
    feature: u16,
    flags: u16,
}

const _: () = assert!(
    std::mem::size_of::<QuantNode>() == 16,
    "QuantNode must stay 16 bytes"
);

/// A flat decision tree over 16-byte quantized nodes plus an exact leaf
/// payload table.
#[derive(Debug, Clone, PartialEq)]
struct QuantTree {
    nodes: Vec<QuantNode>,
    payloads: Vec<f64>,
}

impl QuantTree {
    /// Quantize one compact tree against per-feature sorted value columns;
    /// `None` if any threshold cannot be snapped.
    fn from_tree(tree: &CompactTree, columns: &[Vec<f64>]) -> Option<QuantTree> {
        let mut nodes = Vec::with_capacity(tree.nodes.len());
        let mut payloads = Vec::new();
        for node in &tree.nodes {
            if node.left == LEAF {
                // audit:allow(R4) reason="exact: payload count is bounded by node count, which fits u32 by the builder's own limits"
                let payload_idx = payloads.len() as u32;
                payloads.push(node.payload);
                nodes.push(QuantNode {
                    threshold: 0.0,
                    left: payload_idx,
                    right: 0,
                    feature: 0,
                    flags: QLEAF,
                });
            } else {
                let threshold = snap_threshold(&columns[node.feature as usize], node.threshold)?;
                nodes.push(QuantNode {
                    threshold,
                    left: node.left,
                    right: node.right,
                    feature: node.feature,
                    flags: if node.nan_left { QNAN_LEFT } else { 0 },
                });
            }
        }
        Some(QuantTree { nodes, payloads })
    }

    /// Payload of the leaf covering `features`.
    fn score(&self, features: &[f64]) -> f64 {
        let mut node = &self.nodes[0];
        loop {
            if node.flags & QLEAF != 0 {
                return self.payloads[node.left as usize];
            }
            let v = features[node.feature as usize];
            let go_left = if v.is_nan() {
                node.flags & QNAN_LEFT != 0
            } else {
                v < f64::from(node.threshold)
            };
            node = &self.nodes[(if go_left { node.left } else { node.right }) as usize];
        }
    }

    /// Longest root-to-leaf path in edges (see [`CompactTree::max_depth`]).
    fn max_depth(&self) -> u32 {
        let mut max = 0u32;
        let mut stack = vec![(0u32, 0u32)];
        while let Some((i, d)) = stack.pop() {
            let node = &self.nodes[i as usize];
            if node.flags & QLEAF != 0 {
                max = max.max(d);
            } else {
                stack.push((node.left, d + 1));
                stack.push((node.right, d + 1));
            }
        }
        max
    }

    /// Batched accumulation over rows `start..end`; the same self-looping
    /// lockstep walk as [`CompactTree::accumulate_range`], over 16-byte
    /// nodes.
    fn accumulate_range(
        &self,
        x: &FeatureMatrix,
        start: usize,
        end: usize,
        depth: u32,
        w: f64,
        out: &mut [f64],
    ) {
        let root = &self.nodes[0];
        if root.flags & QLEAF != 0 {
            let add = w * self.payloads[root.left as usize];
            for slot in &mut out[start..end] {
                *slot += add;
            }
            return;
        }
        let mut base = start;
        while base + BATCH_LANES <= end {
            let rows: [&[f64]; BATCH_LANES] = std::array::from_fn(|lane| x.row(base + lane));
            let mut cursors = [0u32; BATCH_LANES];
            for _ in 0..depth {
                let mut live = false;
                for (lane, cursor) in cursors.iter_mut().enumerate() {
                    let node = &self.nodes[*cursor as usize];
                    let leaf = node.flags & QLEAF != 0;
                    let v = rows[lane][node.feature as usize];
                    let go_left = if v.is_nan() {
                        node.flags & QNAN_LEFT != 0
                    } else {
                        v < f64::from(node.threshold)
                    };
                    let step = if go_left { node.left } else { node.right };
                    *cursor = if leaf { *cursor } else { step };
                    live |= !leaf;
                }
                if !live {
                    break;
                }
            }
            for (lane, &cursor) in cursors.iter().enumerate() {
                let node = &self.nodes[cursor as usize];
                out[base + lane] += w * self.payloads[node.left as usize];
            }
            base += BATCH_LANES;
        }
        for (slot, row) in out[base..end].iter_mut().zip(base..) {
            *slot += w * self.score(x.row(row));
        }
    }
}

/// The smallest `f32` strictly greater than `x` (`x` for NaN/`+∞`).
fn next_f32_up(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x == 0.0 {
        1 // smallest positive subnormal (covers -0.0 too)
    } else if bits >> 31 == 0 {
        bits + 1
    } else {
        bits - 1
    };
    f32::from_bits(next)
}

/// The largest `f32` strictly smaller than `x` (`x` for NaN/`-∞`).
fn next_f32_down(x: f32) -> f32 {
    -next_f32_up(-x)
}

/// Snap `threshold` to an `f32` preserving every `v < threshold` decision
/// for the values in `column` (sorted ascending, NaN-free).
///
/// Let `lo` be the largest observed value below the threshold and `hi`
/// the smallest at or above it: any `t` with `lo < t ≤ hi` routes every
/// observed value exactly like the original, so the rounded threshold and
/// its two `f32` neighbours are each tested against that bracket. Returns
/// `None` when no `f32` fits — the caller must fall back to the `f64`
/// path.
fn snap_threshold(column: &[f64], threshold: f64) -> Option<f32> {
    let idx = column.partition_point(|&v| v < threshold);
    let lo = if idx == 0 {
        f64::NEG_INFINITY
    } else {
        column[idx - 1]
    };
    let hi = if idx == column.len() {
        f64::INFINITY
    } else {
        column[idx]
    };
    // audit:allow(R4) reason="deliberate narrowing probe: the snap below verifies the f32 preserves every routing decision or rejects it"
    let mut rounded = threshold as f32;
    if rounded.is_infinite() {
        // |threshold| overflows f32: the nearest finite f32 is the only
        // candidate worth probing from.
        rounded = if rounded > 0.0 { f32::MAX } else { f32::MIN };
    }
    for t32 in [rounded, next_f32_down(rounded), next_f32_up(rounded)] {
        let t = f64::from(t32);
        if t.is_finite() && lo < t && t <= hi {
            return Some(t32);
        }
    }
    None
}

/// The 16-byte-node quantized serving form of a [`CompactForest`].
///
/// Construction proves an **exact-decision guarantee** against a
/// reference matrix (normally the training matrix): every threshold is
/// snapped to an `f32` that routes all of the matrix's feature values
/// exactly like the `f64` original, and leaf payloads stay exact `f64`s,
/// so [`QuantForest::score`] equals [`CompactForest::score`] bit for bit
/// on those rows. Values *between* an original threshold and its snapped
/// `f32` (never observed during construction) may route differently —
/// which is why quantization is an opt-in compile-time selection, not a
/// drop-in replacement for models whose inputs are unconstrained.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantForest {
    trees: Vec<QuantTree>,
    weights: Vec<f64>,
    total: f64,
    clamp: bool,
    n_features: usize,
}

impl QuantForest {
    /// Quantize `forest`, proving the exact-decision guarantee against
    /// `matrix`'s observed feature values. Returns `None` when some
    /// threshold separates two values no `f32` can separate (adjacent
    /// `f64`s); callers then keep serving the 32-byte forest.
    ///
    /// # Panics
    ///
    /// Panics if `matrix` width disagrees with the forest.
    #[must_use]
    pub fn from_forest(forest: &CompactForest, matrix: &FeatureMatrix) -> Option<QuantForest> {
        assert_eq!(
            matrix.n_features(),
            forest.n_features,
            "feature matrix width mismatch"
        );
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); forest.n_features];
        for row in matrix.rows() {
            for (feature, &v) in row.iter().enumerate() {
                if !v.is_nan() {
                    columns[feature].push(v);
                }
            }
        }
        for column in &mut columns {
            column.sort_unstable_by(f64::total_cmp);
        }
        let trees = forest
            .trees
            .iter()
            .map(|tree| QuantTree::from_tree(tree, &columns))
            .collect::<Option<Vec<QuantTree>>>()?;
        Some(QuantForest {
            trees,
            weights: forest.weights.clone(),
            total: forest.total,
            clamp: forest.clamp,
            n_features: forest.n_features,
        })
    }

    /// Dimensionality of the feature vectors this forest scores.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of member trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Whether the final score is clamped to `[-1, 1]`.
    #[must_use]
    pub fn is_clamped(&self) -> bool {
        self.clamp
    }

    /// Score one sample; on construction-matrix rows this equals
    /// [`CompactForest::score`] bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than [`QuantForest::n_features`].
    #[must_use]
    pub fn score(&self, features: &[f64]) -> f64 {
        assert!(
            features.len() >= self.n_features,
            "feature vector too short: {} < {}",
            features.len(),
            self.n_features
        );
        let mut acc = 0.0;
        for (tree, w) in self.trees.iter().zip(&self.weights) {
            acc += w * tree.score(features);
        }
        self.finish(acc)
    }

    /// Score every row of `x` into `out`, dispatching between the same
    /// two kernels as [`CompactForest::predict_batch`] (lockstep lanes
    /// for a single tree, register-accumulating row walk for ensembles);
    /// per-row results are identical to [`QuantForest::score`].
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width or `out` the wrong length.
    pub fn predict_batch(&self, x: &FeatureMatrix, out: &mut [f64]) {
        assert_eq!(
            x.n_features(),
            self.n_features,
            "feature matrix width mismatch"
        );
        assert_eq!(out.len(), x.n_rows(), "one output slot per row");
        if self.trees.len() > 1 {
            for (row, slot) in x.rows().zip(out.iter_mut()) {
                let mut acc = 0.0;
                for (tree, &w) in self.trees.iter().zip(&self.weights) {
                    acc += w * tree.score(row);
                }
                *slot = self.finish(acc);
            }
            return;
        }
        out.fill(0.0);
        let depths: Vec<u32> = self.trees.iter().map(QuantTree::max_depth).collect();
        let n = x.n_rows();
        let mut start = 0usize;
        while start < n {
            let end = (start + ROW_BLOCK).min(n);
            for ((tree, &w), &depth) in self.trees.iter().zip(&self.weights).zip(&depths) {
                tree.accumulate_range(x, start, end, depth, w, out);
            }
            start = end;
        }
        for slot in out.iter_mut() {
            *slot = self.finish(*slot);
        }
    }

    fn finish(&self, acc: f64) -> f64 {
        let score = acc / self.total;
        if self.clamp {
            score.clamp(-1.0, 1.0)
        } else {
            score
        }
    }
}

impl JsonCodec for CompactForest {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("n_features".to_string(), Value::Num(self.n_features as f64)),
            ("clamp".to_string(), Value::Bool(self.clamp)),
            (
                "weights".to_string(),
                Value::from_f64s(self.weights.iter().copied()),
            ),
            (
                "trees".to_string(),
                Value::Arr(self.trees.iter().map(JsonCodec::to_json).collect()),
            ),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let n_features = value.usize_field("n_features")?;
        if n_features == 0 || n_features > u16::MAX as usize + 1 {
            return Err(JsonError::expected("1..=65536", "n_features"));
        }
        let clamp = value
            .field("clamp")?
            .as_bool()
            .ok_or_else(|| JsonError::expected("boolean", "clamp"))?;
        let weights = value.f64_vec_field("weights")?;
        let trees = value
            .field("trees")?
            .as_arr()
            .ok_or_else(|| JsonError::expected("array", "trees"))?
            .iter()
            .map(CompactTree::from_json)
            .collect::<Result<Vec<CompactTree>, JsonError>>()?;
        if trees.is_empty() || trees.len() != weights.len() {
            return Err(JsonError::new("trees and weights disagree"));
        }
        for tree in &trees {
            tree.validate(n_features)?;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(JsonError::new("weight total must be positive and finite"));
        }
        Ok(CompactForest {
            trees,
            weights,
            total,
            clamp,
            n_features,
        })
    }
}

impl crate::classifier::ClassificationTree {
    /// Compile to the flat serving form. The single tree votes its leaf
    /// class target (`+1` good, `-1` failed), so the compiled score is
    /// exactly [`Class::target`](crate::Class::target) of
    /// [`predict`](crate::classifier::ClassificationTree::predict).
    #[must_use]
    pub fn compile(&self) -> CompactForest {
        let tree = CompactTree::from_arena(self.tree(), None, |leaf| leaf.class.target());
        CompactForest::new(vec![tree], vec![1.0], false, self.tree().n_features())
    }
}

impl crate::regressor::RegressionTree {
    /// Compile to the flat serving form; the compiled score is exactly
    /// [`predict`](crate::regressor::RegressionTree::predict) (the leaf
    /// mean), unclamped.
    #[must_use]
    pub fn compile(&self) -> CompactForest {
        let tree = CompactTree::from_arena(self.tree(), None, |leaf| leaf.mean);
        CompactForest::new(vec![tree], vec![1.0], false, self.tree().n_features())
    }
}

impl crate::health::HealthModel {
    /// Compile to the flat serving form; the compiled score is exactly
    /// [`health`](crate::health::HealthModel::health) (the leaf mean
    /// clamped to `[-1, 1]`). The detection threshold is not baked in —
    /// detectors carry it (the paper tunes it after training).
    #[must_use]
    pub fn compile(&self) -> CompactForest {
        let arena = self.tree().tree();
        let tree = CompactTree::from_arena(arena, None, |leaf| leaf.mean);
        CompactForest::new(vec![tree], vec![1.0], true, arena.n_features())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassificationTreeBuilder;
    use crate::health::HealthModel;
    use crate::regressor::RegressionTreeBuilder;
    use crate::sample::{Class, ClassSample, RegSample};

    fn grid(n_features: usize) -> Vec<Vec<f64>> {
        (0..200)
            .map(|i| {
                (0..n_features)
                    .map(|f| ((i * (f + 3) + f * 11) % 97) as f64 - 20.0)
                    .collect()
            })
            .collect()
    }

    fn class_samples(n: usize) -> Vec<ClassSample> {
        (0..n)
            .map(|i| {
                let x = (i % 31) as f64;
                let y = ((i * 5) % 13) as f64;
                let class = if x + 2.0 * y < 25.0 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x, y], class)
            })
            .collect()
    }

    #[test]
    fn classification_tree_parity() {
        let tree = ClassificationTreeBuilder::new()
            .build(&class_samples(300))
            .unwrap();
        let compiled = tree.compile();
        assert_eq!(compiled.n_features(), 2);
        for q in grid(2) {
            assert_eq!(compiled.score(&q), tree.predict(&q).target(), "{q:?}");
        }
    }

    #[test]
    fn regression_tree_parity() {
        let samples: Vec<RegSample> = (0..300)
            .map(|i| {
                let x = (i % 50) as f64;
                RegSample::new(vec![x, (i % 7) as f64], (x / 10.0).floor() - 2.0)
            })
            .collect();
        let tree = RegressionTreeBuilder::new().build(&samples).unwrap();
        let compiled = tree.compile();
        for q in grid(2) {
            assert_eq!(compiled.score(&q).to_bits(), tree.predict(&q).to_bits());
        }
    }

    #[test]
    fn health_model_parity_is_clamped() {
        let samples: Vec<RegSample> = (0..200)
            .map(|i| {
                let x = (i % 40) as f64;
                RegSample::new(vec![x], if x < 20.0 { -3.0 } else { 3.0 })
            })
            .collect();
        let model = HealthModel::new(RegressionTreeBuilder::new().build(&samples).unwrap(), -0.2);
        let compiled = model.compile();
        assert!(compiled.is_clamped());
        for q in grid(1) {
            let s = compiled.score(&q);
            assert!((-1.0..=1.0).contains(&s));
            assert_eq!(s.to_bits(), model.health(&q).to_bits());
        }
    }

    #[test]
    fn nan_routing_matches_arena_walker_bit_for_bit() {
        let tree = ClassificationTreeBuilder::new()
            .build(&class_samples(300))
            .unwrap();
        let compiled = tree.compile();
        // Poke NaN into each coordinate in turn, and both at once: the
        // compiled walker and the arena walker must agree exactly.
        for q in grid(2) {
            for mask in 1..4usize {
                let mut probe = q.clone();
                if mask & 1 != 0 {
                    probe[0] = f64::NAN;
                }
                if mask & 2 != 0 {
                    probe[1] = f64::NAN;
                }
                assert_eq!(
                    compiled.score(&probe).to_bits(),
                    tree.predict(&probe).target().to_bits(),
                    "{probe:?}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_per_sample_exactly() {
        let tree = ClassificationTreeBuilder::new()
            .build(&class_samples(300))
            .unwrap();
        let compiled = tree.compile();
        let rows = grid(2);
        let matrix = FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice));
        let mut out = vec![0.0; rows.len()];
        compiled.predict_batch(&matrix, &mut out);
        for (row, batch) in rows.iter().zip(&out) {
            assert_eq!(batch.to_bits(), compiled.score(row).to_bits());
        }
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let tree = ClassificationTreeBuilder::new()
            .build(&class_samples(300))
            .unwrap();
        let compiled = tree.compile();
        let text = hdd_json::to_string(&compiled.to_json());
        let back = CompactForest::from_json(&hdd_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, compiled);
        for q in grid(2) {
            assert_eq!(back.score(&q).to_bits(), compiled.score(&q).to_bits());
        }
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        let tree = ClassificationTreeBuilder::new()
            .build(&class_samples(200))
            .unwrap();
        let good = tree.compile().to_json();

        let mutate = |key: &str, v: Value| {
            let mut doc = good.clone();
            if let Value::Obj(pairs) = &mut doc {
                for (k, slot) in pairs.iter_mut() {
                    if k == key {
                        *slot = v.clone();
                    }
                }
            }
            doc
        };
        // Wrong-length weights.
        let doc = mutate("weights", Value::from_f64s([1.0, 2.0]));
        assert!(CompactForest::from_json(&doc).is_err());
        // Zero features.
        let doc = mutate("n_features", Value::Num(0.0));
        assert!(CompactForest::from_json(&doc).is_err());
        // Backward child link (node pointing at itself).
        let text = hdd_json::to_string(&good);
        let cyclic = text.replacen("\"left\":[", "\"left\":[0,", 1);
        let parsed = hdd_json::parse(&cyclic).unwrap();
        assert!(CompactForest::from_json(&parsed).is_err());
        // Empty forest.
        let doc = mutate("trees", Value::Arr(Vec::new()));
        assert!(CompactForest::from_json(&doc).is_err());
    }

    #[test]
    fn batched_traversal_bit_identical_across_forty_seeded_forests() {
        use crate::forest::RandomForestBuilder;
        // Heavy value ties (small moduli) so many thresholds sit on
        // repeated values; three features so trees differ per seed.
        let samples: Vec<ClassSample> = (0..180)
            .map(|i| {
                let x = (i % 5) as f64;
                let y = ((i * 7) % 3) as f64;
                let z = ((i * 11) % 23) as f64;
                let class = if x + z < 12.0 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x, y, z], class)
            })
            .collect();
        // Probe rows: the training points themselves (exact tie values),
        // off-grid points, and NaN in every coordinate pattern.
        let mut rows: Vec<Vec<f64>> = samples.iter().map(|s| s.features.clone()).collect();
        rows.extend(grid(3));
        for mask in 1..8usize {
            let mut probe = vec![2.0, 1.0, 11.0];
            for (f, slot) in probe.iter_mut().enumerate() {
                if mask & (1 << f) != 0 {
                    *slot = f64::NAN;
                }
            }
            rows.push(probe);
        }
        let matrix = FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice));
        let mut out = vec![0.0; rows.len()];
        for seed in 0..40u64 {
            let mut builder = RandomForestBuilder::new();
            builder.n_trees(8).seed(seed);
            let compiled = builder.build(&samples).unwrap().compile();
            compiled.predict_batch(&matrix, &mut out);
            for (row, batch) in rows.iter().zip(&out) {
                assert_eq!(
                    batch.to_bits(),
                    compiled.score(row).to_bits(),
                    "seed {seed}, row {row:?}"
                );
            }
        }
    }

    #[test]
    fn batched_traversal_handles_single_node_trees() {
        // Prune to the root: the compiled tree is one leaf node.
        let mut builder = ClassificationTreeBuilder::new();
        builder.complexity(10.0);
        let compiled = builder.build(&class_samples(200)).unwrap().compile();
        assert_eq!(compiled.trees[0].n_nodes(), 1);
        let rows = grid(2);
        let matrix = FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice));
        let mut out = vec![0.0; rows.len()];
        compiled.predict_batch(&matrix, &mut out);
        for (row, batch) in rows.iter().zip(&out) {
            assert_eq!(batch.to_bits(), compiled.score(row).to_bits());
        }
    }

    #[test]
    fn quantized_forest_matches_f64_path_on_training_matrix() {
        use crate::forest::RandomForestBuilder;
        let samples: Vec<ClassSample> = (0..240)
            .map(|i| {
                // Non-f32-representable values (x + 0.1 steps) at moderate
                // magnitude: snapping must adjust thresholds yet keep every
                // training-row decision identical.
                let x = (i % 31) as f64 * 0.1;
                let y = ((i * 5) % 13) as f64 * 0.3 - 1.7;
                let class = if x + y < 1.5 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x, y], class)
            })
            .collect();
        let matrix = FeatureMatrix::from_rows(samples.iter().map(|s| s.features.as_slice()));
        let mut builder = RandomForestBuilder::new();
        builder.n_trees(11).seed(7);
        let compiled = builder.build(&samples).unwrap().compile();
        let quant = compiled.quantize(&matrix).expect("thresholds must snap");
        assert_eq!(quant.n_trees(), compiled.n_trees());
        assert_eq!(quant.n_features(), compiled.n_features());

        let mut exact = vec![0.0; matrix.n_rows()];
        let mut quantized = vec![0.0; matrix.n_rows()];
        compiled.predict_batch(&matrix, &mut exact);
        quant.predict_batch(&matrix, &mut quantized);
        for (row, (e, q)) in samples.iter().zip(exact.iter().zip(&quantized)) {
            assert_eq!(e.to_bits(), q.to_bits(), "row {:?}", row.features);
            // Scalar quantized walk agrees too.
            assert_eq!(quant.score(&row.features).to_bits(), e.to_bits());
        }
    }

    #[test]
    fn quantization_falls_back_when_f32_cannot_separate() {
        // Observed values 0.1 apart at 1e9: f32 spacing there is 64, so no
        // f32 threshold can separate adjacent values and quantization must
        // decline rather than silently misroute.
        let samples: Vec<ClassSample> = (0..80)
            .map(|i| {
                let x = 1e9 + (i % 20) as f64 * 0.1;
                let class = if i % 20 < 10 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x], class)
            })
            .collect();
        let mut builder = ClassificationTreeBuilder::new();
        builder.min_split(2).min_bucket(1).complexity(0.0);
        let compiled = builder.build(&samples).unwrap().compile();
        let matrix = FeatureMatrix::from_rows(samples.iter().map(|s| s.features.as_slice()));
        assert!(compiled.quantize(&matrix).is_none());
    }

    #[test]
    fn quantized_health_model_stays_clamped() {
        let samples: Vec<RegSample> = (0..200)
            .map(|i| {
                let x = (i % 40) as f64 * 0.7;
                RegSample::new(vec![x], if x < 14.0 { -3.0 } else { 3.0 })
            })
            .collect();
        let model = HealthModel::new(RegressionTreeBuilder::new().build(&samples).unwrap(), -0.2);
        let compiled = model.compile();
        let matrix = FeatureMatrix::from_rows(samples.iter().map(|s| s.features.as_slice()));
        let quant = compiled.quantize(&matrix).expect("snappable");
        assert!(quant.is_clamped());
        for s in &samples {
            assert_eq!(
                quant.score(&s.features).to_bits(),
                compiled.score(&s.features).to_bits()
            );
        }
    }

    #[test]
    fn snap_threshold_brackets_observed_values() {
        let column = [1.0, 2.0, 3.0, 4.0];
        let t = snap_threshold(&column, 2.5).unwrap();
        assert!(2.0 < f64::from(t) && f64::from(t) <= 3.0);
        // Threshold below/above every observed value still snaps.
        assert!(snap_threshold(&column, 0.5).is_some());
        assert!(snap_threshold(&column, 9.0).is_some());
        // Adjacent f64s cannot be separated by any f32. (The only f64
        // threshold with lo < t ≤ hi is hi itself.)
        let lo = 1.0f64;
        let hi = f64::from_bits(lo.to_bits() + 1);
        assert!(snap_threshold(&[lo, hi], hi).is_none());
        // Empty column: any finite threshold snaps.
        assert!(snap_threshold(&[], 123.456).is_some());
    }

    #[test]
    fn compiled_stump_has_flat_layout() {
        let samples: Vec<ClassSample> = (0..100)
            .map(|i| {
                let x = (i % 20) as f64;
                ClassSample::new(vec![x], if x < 10.0 { Class::Failed } else { Class::Good })
            })
            .collect();
        let tree = ClassificationTreeBuilder::new().build(&samples).unwrap();
        let compiled = tree.compile();
        assert_eq!(compiled.n_trees(), 1);
        assert!(compiled.trees[0].n_nodes() >= 3);
        assert_eq!(compiled.score(&[3.0]), -1.0);
        assert_eq!(compiled.score(&[15.0]), 1.0);
    }
}
