//! Classification and regression trees for hard drive failure prediction.
//!
//! This crate is the paper's primary contribution (*Li et al., DSN 2014*):
//!
//! * [`ClassificationTree`] — Algorithm 1: information-gain splitting
//!   (eqs. 1–3), `Minsplit`/`Minbucket` stopping, complexity-parameter
//!   pruning, class re-weighting (failed samples boosted to a target
//!   fraction of the total weight) and an asymmetric loss that makes false
//!   alarms cost more than missed detections;
//! * [`RegressionTree`] — Algorithm 2: least-squares splitting (eq. 4)
//!   with the same stopping and pruning controls;
//! * [`health`] — the health-degree machinery: deterioration-window target
//!   assignment (global, eq. 5; personalized, eq. 6) and the
//!   [`HealthModel`] wrapper that turns a regression tree plus a threshold
//!   into a ranked-warning failure detector.
//!
//! Trees are white boxes: [`tree::Tree::rules`] prints the decision rules
//! (like the paper's Figure 1) and [`tree::Tree::feature_importance`]
//! attributes the impurity decrease to features, which is how the paper
//! diagnoses *why* each family's drives fail (§V-B1).
//!
//! # Example
//!
//! ```
//! use hdd_cart::{Class, ClassificationTreeBuilder, ClassSample};
//!
//! // Two clearly separated clusters on one feature.
//! let mut samples = Vec::new();
//! for i in 0..40 {
//!     let x = f64::from(i % 20);
//!     samples.push(ClassSample::new(vec![x], Class::Good));
//!     samples.push(ClassSample::new(vec![x + 100.0], Class::Failed));
//! }
//! let tree = ClassificationTreeBuilder::new().build(&samples)?;
//! assert_eq!(tree.predict(&[5.0]), Class::Good);
//! assert_eq!(tree.predict(&[105.0]), Class::Failed);
//! # Ok::<(), hdd_cart::TrainError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod boosting;
pub mod classifier;
pub mod compact;
pub mod forest;
pub mod health;
pub mod prune;
pub mod regressor;
pub mod sample;
pub mod split;
pub mod tree;

pub use boosting::{AdaBoost, AdaBoostBuilder};
pub use classifier::{ClassificationTree, ClassificationTreeBuilder};
pub use compact::{CompactForest, CompactTree, QuantForest};
pub use forest::{RandomForest, RandomForestBuilder, FOREST_MIN_TASK_ROWS};
pub use health::{global_health_degree, personalized_health_degree, HealthModel};
pub use prune::cost_complexity_prune;
pub use regressor::{RegressionTree, RegressionTreeBuilder};
pub use sample::{Class, ClassSample, RegSample, TrainError};
pub use split::{FeatureMatrix, SplitCriterion, SplitWorkspace};
pub use tree::{NodeId, Tree};
