//! The Classification Tree model (Algorithm 1 of the paper).

use crate::sample::{validate_features, Class, ClassSample, TrainError};
use crate::split::{FeatureMatrix, SplitCriterion, SplitWorkspace};
use crate::tree::{Node, NodeId, SplitNode, Tree};
use hdd_par::ThreadPool;
use std::fmt;

/// Leaf payload of a classification tree: the majority class and the
/// weighted class distribution (the fractions annotated on every node of
/// the paper's Figure 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassLeaf {
    /// Majority (weighted) class.
    pub class: Class,
    /// Total weight of good samples at the node.
    pub w_good: f64,
    /// Total weight of failed samples at the node.
    pub w_failed: f64,
}

impl ClassLeaf {
    /// Weighted failed fraction in `[0, 1]`.
    #[must_use]
    pub fn failed_fraction(&self) -> f64 {
        let total = self.w_good + self.w_failed;
        if total <= 0.0 {
            0.0
        } else {
            self.w_failed / total
        }
    }
}

impl fmt::Display for ClassLeaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (p_failed={:.2})", self.class, self.failed_fraction())
    }
}

/// Configures and trains [`ClassificationTree`]s.
///
/// Defaults are the paper's settings (§V-A2/§V-A3): `Minsplit = 20`,
/// `Minbucket = 7`, `CP = 0.001`, failed samples re-weighted to 20% of the
/// total, false alarms costed 10× misses.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationTreeBuilder {
    min_split: usize,
    min_bucket: usize,
    complexity: f64,
    failed_weight_fraction: Option<f64>,
    false_alarm_loss: f64,
    max_depth: Option<usize>,
    criterion: SplitCriterion,
    threads: Option<usize>,
}

impl Default for ClassificationTreeBuilder {
    fn default() -> Self {
        ClassificationTreeBuilder {
            min_split: 20,
            min_bucket: 7,
            complexity: 0.001,
            failed_weight_fraction: Some(0.2),
            false_alarm_loss: 10.0,
            max_depth: None,
            criterion: SplitCriterion::InformationGain,
            threads: None,
        }
    }
}

impl ClassificationTreeBuilder {
    /// A builder with the paper's default parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `Minsplit`: the minimum number of samples a node needs before a
    /// split is even considered.
    pub fn min_split(&mut self, n: usize) -> &mut Self {
        self.min_split = n.max(2);
        self
    }

    /// `Minbucket`: the minimum number of samples in any leaf.
    pub fn min_bucket(&mut self, n: usize) -> &mut Self {
        self.min_bucket = n.max(1);
        self
    }

    /// The complexity parameter: after the tree is fully grown, every
    /// subtree whose split's scaled information gain is below `cp` is
    /// pruned back (Algorithm 1, lines 18–22).
    pub fn complexity(&mut self, cp: f64) -> &mut Self {
        self.complexity = cp.max(0.0);
        self
    }

    /// Re-weight the failed samples so they make up `fraction` of the
    /// total training weight (the paper boosts them to 0.2). `None` keeps
    /// natural sample weights.
    pub fn failed_weight_fraction(&mut self, fraction: Option<f64>) -> &mut Self {
        if let Some(f) = fraction {
            assert!(
                f > 0.0 && f < 1.0,
                "failed weight fraction must be in (0, 1)"
            );
        }
        self.failed_weight_fraction = fraction;
        self
    }

    /// Loss weight of a false alarm relative to a missed detection (the
    /// paper uses 10). Larger values push leaf labels — and therefore the
    /// operating point — toward fewer false alarms.
    pub fn false_alarm_loss(&mut self, loss: f64) -> &mut Self {
        assert!(loss > 0.0, "loss weight must be positive");
        self.false_alarm_loss = loss;
        self
    }

    /// Optional hard depth cap (not in the paper; useful for ablations).
    pub fn max_depth(&mut self, depth: Option<usize>) -> &mut Self {
        self.max_depth = depth;
        self
    }

    /// Splitting criterion: information gain (paper) or Gini (rpart's
    /// default; ablation).
    pub fn criterion(&mut self, criterion: SplitCriterion) -> &mut Self {
        self.criterion = criterion;
        self
    }

    /// Worker threads for the split search (`None` — the default — uses
    /// the process-wide resolution: `--threads` / `HDDPRED_THREADS` /
    /// hardware). Trained trees are bit-identical for every setting.
    ///
    /// # Panics
    ///
    /// Panics if `n` is `Some(0)`.
    pub fn threads(&mut self, n: Option<usize>) -> &mut Self {
        assert!(n != Some(0), "thread count must be at least 1");
        self.threads = n;
        self
    }

    /// The pool this builder trains with.
    pub(crate) fn pool(&self) -> ThreadPool {
        self.threads
            .map_or_else(ThreadPool::global, ThreadPool::new)
    }

    /// Train a tree on `samples` (Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if `samples` is empty, has inconsistent or
    /// non-finite features, or contains a single class.
    pub fn build(&self, samples: &[ClassSample]) -> Result<ClassificationTree, TrainError> {
        let classes: Vec<Class> = samples.iter().map(|s| s.class).collect();
        let weights = self.sample_weights(&classes);
        self.build_weighted(samples, &weights)
    }

    /// Train with explicit per-sample weights (boosting algorithms supply
    /// their own); the builder's class re-weighting and loss settings are
    /// bypassed.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if `samples` is empty, has inconsistent or
    /// non-finite features, or contains a single class.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != samples.len()` or any weight is not a
    /// positive finite number.
    pub fn build_weighted(
        &self,
        samples: &[ClassSample],
        weights: &[f64],
    ) -> Result<ClassificationTree, TrainError> {
        validate_features(samples.iter().map(|s| s.features.as_slice()))?;
        let classes: Vec<Class> = samples.iter().map(|s| s.class).collect();
        let matrix = FeatureMatrix::from_rows(samples.iter().map(|s| s.features.as_slice()));
        let pool = self.pool();
        let mut workspace = SplitWorkspace::new();
        workspace.reset_sorted(&matrix, pool);
        self.build_weighted_prepared(&classes, weights, &mut workspace, pool)
    }

    /// Train from pre-assembled parts: per-row classes and a
    /// [`SplitWorkspace`] already holding sorted (or bootstrap-derived)
    /// stripes for the training matrix. The builder's class re-weighting
    /// and loss settings apply. Features must already be validated finite;
    /// the tree's dimensionality is the workspace's stripe count.
    ///
    /// This is the allocation-free inner path forest training drives: the
    /// caller owns the workspace and refills it per tree.
    pub(crate) fn build_prepared(
        &self,
        classes: &[Class],
        workspace: &mut SplitWorkspace,
        pool: ThreadPool,
    ) -> Result<ClassificationTree, TrainError> {
        let weights = self.sample_weights(classes);
        self.build_weighted_prepared(classes, &weights, workspace, pool)
    }

    /// [`ClassificationTreeBuilder::build_prepared`] with explicit
    /// per-sample weights (the boosting path).
    pub(crate) fn build_weighted_prepared(
        &self,
        classes: &[Class],
        weights: &[f64],
        workspace: &mut SplitWorkspace,
        pool: ThreadPool,
    ) -> Result<ClassificationTree, TrainError> {
        assert_eq!(weights.len(), classes.len(), "one weight per sample");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        let n_failed = classes.iter().filter(|c| **c == Class::Failed).count();
        if n_failed == 0 || n_failed == classes.len() {
            return Err(TrainError::SingleClass);
        }
        let tree = grow(
            classes,
            weights,
            self.min_split,
            self.min_bucket,
            self.max_depth,
            workspace.n_features(),
            self.criterion,
            self.complexity,
            pool,
            workspace,
        );
        let tree = crate::prune::prune(&tree, self.complexity);
        Ok(ClassificationTree { tree })
    }

    /// Per-sample weights implementing the class re-weighting and the
    /// asymmetric loss, rpart-style (loss folded into altered priors).
    fn sample_weights(&self, classes: &[Class]) -> Vec<f64> {
        let n = classes.len() as f64;
        let n_failed = classes.iter().filter(|c| **c == Class::Failed).count() as f64;
        let n_good = n - n_failed;
        let (prior_good, prior_failed) = match self.failed_weight_fraction {
            Some(f) => (1.0 - f, f),
            None => (n_good / n, n_failed / n),
        };
        // Loss-altered priors: misclassifying a good sample (false alarm)
        // costs `false_alarm_loss`, a missed failed sample costs 1.
        let w_good = prior_good * self.false_alarm_loss / n_good;
        let w_failed = prior_failed / n_failed;
        classes
            .iter()
            .map(|c| match c {
                Class::Good => w_good,
                Class::Failed => w_failed,
            })
            .collect()
    }
}

/// A trained classification tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationTree {
    tree: Tree<ClassLeaf>,
}

impl ClassificationTree {
    /// Predict the class of a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than the training dimensionality.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> Class {
        self.tree.leaf_for(features).prediction.class
    }

    /// The weighted failed fraction of the covering leaf — a score in
    /// `[0, 1]` useful for ranking; note the training weights (class
    /// boosting + loss) are baked in.
    #[must_use]
    pub fn predict_failed_fraction(&self, features: &[f64]) -> f64 {
        self.tree.leaf_for(features).prediction.failed_fraction()
    }

    /// The underlying tree (rules, importance, structure).
    #[must_use]
    pub fn tree(&self) -> &Tree<ClassLeaf> {
        &self.tree
    }

    /// Decision rules as text (Figure 1 of the paper).
    #[must_use]
    pub fn rules(&self, feature_names: &[String]) -> String {
        self.tree.rules(feature_names)
    }

    /// Normalized per-feature importance.
    #[must_use]
    pub fn feature_importance(&self) -> Vec<f64> {
        self.tree.feature_importance()
    }

    /// A copy pruned by weakest-link cost-complexity pruning with
    /// parameter `alpha` — the classical alternative (Breiman et al.) to
    /// the paper's gain-threshold rule; see
    /// [`cost_complexity_prune`](crate::prune::cost_complexity_prune).
    #[must_use]
    pub fn pruned_cost_complexity(&self, alpha: f64) -> ClassificationTree {
        ClassificationTree {
            tree: crate::prune::cost_complexity_prune(&self.tree, alpha),
        }
    }
}

/// Grow a full classification tree (stack-based, like Algorithm 1).
///
/// The descent runs entirely on the [`SplitWorkspace`]'s presorted
/// stripes: each node's per-feature order is a slice, each accepted split
/// one stable partition pass — no per-node sorts, masks, or allocations.
/// The stripe order equals what the legacy sort-per-node and
/// membership-filter searches produce (see [`crate::split`]), so the
/// grown tree does not depend on the strategy or the thread count.
#[allow(clippy::too_many_arguments)]
fn grow(
    classes: &[Class],
    weights: &[f64],
    min_split: usize,
    min_bucket: usize,
    max_depth: Option<usize>,
    n_features: usize,
    criterion: SplitCriterion,
    complexity: f64,
    pool: ThreadPool,
    ws: &mut SplitWorkspace,
) -> Tree<ClassLeaf> {
    let n_rows = ws.n_rows();
    let root_weight: f64 = weights.iter().sum();
    let mut nodes: Vec<Node<ClassLeaf>> = Vec::new();

    let make_leaf = |idx: &[u32]| {
        let mut w_good = 0.0;
        let mut w_failed = 0.0;
        for &i in idx {
            match classes[i as usize] {
                Class::Good => w_good += weights[i as usize],
                Class::Failed => w_failed += weights[i as usize],
            }
        }
        ClassLeaf {
            class: if w_failed > w_good {
                Class::Failed
            } else {
                Class::Good
            },
            w_good,
            w_failed,
        }
    };

    // Stack entries: (node id, index range, depth).
    let root_leaf = make_leaf(ws.members(0, n_rows));
    nodes.push(Node {
        prediction: root_leaf,
        weight: root_leaf.w_good + root_leaf.w_failed,
        fraction: 1.0,
        gain: 0.0,
        split: None,
    });
    let mut stack = vec![(NodeId::ROOT, 0usize, n_rows, 1usize)];

    while let Some((id, start, end, depth)) = stack.pop() {
        if end - start < min_split
            || max_depth.is_some_and(|d| depth >= d)
            || nodes[id.0 as usize].prediction.failed_fraction() == 0.0
            || nodes[id.0 as usize].prediction.failed_fraction() == 1.0
        {
            continue; // leaf
        }
        let split =
            ws.best_classification_split(start, end, classes, weights, min_bucket, criterion, pool);
        let Some(split) = split else {
            continue;
        };
        // Pre-prune: `prune` collapses any split whose scaled gain falls
        // below the complexity parameter, looking only at the node's own
        // gain — so a subtree under a below-`cp` split can never survive.
        // Declining the split here grows the post-prune tree directly
        // (bit-identical output) instead of building hundreds of nodes
        // pruning will throw away.
        if split.gain * nodes[id.0 as usize].fraction < complexity {
            continue;
        }

        let mid = ws.partition(start, end, split.feature, split.threshold);
        debug_assert!(mid > start && mid < end, "split produced an empty child");

        let left_leaf = make_leaf(ws.members(start, mid));
        let right_leaf = make_leaf(ws.members(mid, end));
        let left_id = NodeId(nodes.len() as u32);
        let right_id = NodeId(nodes.len() as u32 + 1);
        for leaf in [left_leaf, right_leaf] {
            let w = leaf.w_good + leaf.w_failed;
            nodes.push(Node {
                prediction: leaf,
                weight: w,
                fraction: w / root_weight,
                gain: 0.0,
                split: None,
            });
        }
        let node = &mut nodes[id.0 as usize];
        node.split = Some(SplitNode {
            feature: split.feature,
            threshold: split.threshold,
            left: left_id,
            right: right_id,
            // Missing-value policy: NaN follows the heavier child.
            nan_left: left_leaf.w_good + left_leaf.w_failed
                >= right_leaf.w_good + right_leaf.w_failed,
        });
        // Scaled gain: local information gain × the node's weight share,
        // the quantity the complexity parameter is compared against.
        node.gain = split.gain * node.fraction;
        stack.push((left_id, start, mid, depth + 1));
        stack.push((right_id, mid, end, depth + 1));
    }

    Tree::from_nodes(nodes, n_features)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n_per_class: usize) -> Vec<ClassSample> {
        let mut out = Vec::new();
        for i in 0..n_per_class {
            let x = (i % 17) as f64;
            out.push(ClassSample::new(vec![x, 0.0], Class::Good));
            out.push(ClassSample::new(vec![x + 50.0, 1.0], Class::Failed));
        }
        out
    }

    #[test]
    fn learns_a_separable_problem() {
        let tree = ClassificationTreeBuilder::new()
            .build(&separable(40))
            .unwrap();
        assert_eq!(tree.predict(&[3.0, 0.0]), Class::Good);
        assert_eq!(tree.predict(&[55.0, 1.0]), Class::Failed);
        assert!(tree.tree().n_leaves() >= 2);
    }

    #[test]
    fn rejects_single_class() {
        let samples = vec![ClassSample::new(vec![1.0], Class::Good); 30];
        assert_eq!(
            ClassificationTreeBuilder::new()
                .build(&samples)
                .unwrap_err(),
            TrainError::SingleClass
        );
    }

    #[test]
    fn rejects_empty_and_invalid() {
        let builder = ClassificationTreeBuilder::new();
        assert_eq!(builder.build(&[]).unwrap_err(), TrainError::NoSamples);
        let bad = vec![
            ClassSample::new(vec![f64::NAN], Class::Good),
            ClassSample::new(vec![1.0], Class::Failed),
        ];
        assert!(matches!(
            builder.build(&bad).unwrap_err(),
            TrainError::InvalidFeatures { .. }
        ));
    }

    #[test]
    fn min_split_limits_growth() {
        let samples = separable(40);
        let mut b = ClassificationTreeBuilder::new();
        b.min_split(10_000);
        let tree = b.build(&samples).unwrap();
        assert_eq!(tree.tree().n_nodes(), 1, "root must stay a leaf");
    }

    #[test]
    fn high_complexity_prunes_to_root() {
        let samples = separable(40);
        let mut b = ClassificationTreeBuilder::new();
        b.complexity(10.0);
        let tree = b.build(&samples).unwrap();
        assert_eq!(tree.tree().n_nodes(), 1);
    }

    #[test]
    fn max_depth_caps_tree() {
        let samples = separable(60);
        let mut b = ClassificationTreeBuilder::new();
        b.max_depth(Some(2)).complexity(0.0);
        let tree = b.build(&samples).unwrap();
        assert!(tree.tree().depth() <= 2);
    }

    #[test]
    fn false_alarm_loss_biases_toward_good() {
        // Mixed region: 40% failed. With symmetric weights the region
        // could be labelled failed when boosted; with a strong FA loss it
        // must be labelled good.
        let mut samples = Vec::new();
        for i in 0..60u32 {
            // Feature is independent of the class: the region is mixed.
            let x = f64::from((i / 5) % 10);
            let class = if i % 5 < 3 {
                Class::Failed
            } else {
                Class::Good
            };
            samples.push(ClassSample::new(vec![x], class));
        }
        let mut plain = ClassificationTreeBuilder::new();
        plain.false_alarm_loss(1.0).failed_weight_fraction(None);
        let t = plain.build(&samples).unwrap();
        assert_eq!(t.predict(&[5.0]), Class::Failed, "failed majority wins");

        let mut b = ClassificationTreeBuilder::new();
        b.false_alarm_loss(50.0).failed_weight_fraction(None);
        let cautious = b.build(&samples).unwrap();
        assert_eq!(cautious.predict(&[5.0]), Class::Good);
    }

    #[test]
    fn boosting_flips_an_imbalanced_region() {
        // 10% failed overall, inseparable: natural weights label good.
        let mut samples = Vec::new();
        for i in 0..100 {
            let class = if i % 10 == 0 {
                Class::Failed
            } else {
                Class::Good
            };
            samples.push(ClassSample::new(vec![f64::from(i % 7)], class));
        }
        let mut natural = ClassificationTreeBuilder::new();
        natural
            .failed_weight_fraction(None)
            .false_alarm_loss(1.0)
            .complexity(1.0);
        let t = natural.build(&samples).unwrap();
        assert_eq!(t.predict(&[3.0]), Class::Good);

        let mut boosted = ClassificationTreeBuilder::new();
        boosted
            .failed_weight_fraction(Some(0.9))
            .false_alarm_loss(1.0)
            .complexity(1.0);
        let t = boosted.build(&samples).unwrap();
        assert_eq!(t.predict(&[3.0]), Class::Failed);
    }

    #[test]
    fn failed_fraction_reflects_leaf_purity() {
        let tree = ClassificationTreeBuilder::new()
            .build(&separable(40))
            .unwrap();
        assert!(tree.predict_failed_fraction(&[3.0, 0.0]) < 0.5);
        assert!(tree.predict_failed_fraction(&[55.0, 1.0]) > 0.5);
    }

    #[test]
    fn rules_and_importance() {
        let tree = ClassificationTreeBuilder::new()
            .build(&separable(40))
            .unwrap();
        let rules = tree.rules(&["x".to_string(), "flag".to_string()]);
        assert!(rules.contains("root"), "{rules}");
        let imp = tree.feature_importance();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic() {
        let samples = separable(50);
        let a = ClassificationTreeBuilder::new().build(&samples).unwrap();
        let b = ClassificationTreeBuilder::new().build(&samples).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn compiles_to_matching_flat_tree() {
        let tree = ClassificationTreeBuilder::new()
            .build(&separable(30))
            .unwrap();
        let compiled = tree.compile();
        assert_eq!(compiled.score(&[3.0, 0.0]), Class::Good.target());
        assert_eq!(compiled.score(&[55.0, 1.0]), Class::Failed.target());
    }
}
