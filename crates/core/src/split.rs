//! Split search: the inner loop of CART training.
//!
//! For every candidate feature the search walks the node's samples in
//! feature order, sweeps all thresholds between distinct consecutive
//! values, and scores each by the splitting function — weighted
//! information gain (eqs. 1–3) for classification, within-node
//! sum-of-squares reduction (eq. 4) for regression. `Minbucket` is
//! enforced on raw sample counts, as in rpart.
//!
//! Two interchangeable search strategies produce bit-identical
//! [`SplitSpec`]s (both feed the same per-feature threshold sweep, so
//! every floating-point accumulation happens in the same order):
//!
//! * [`best_classification_split`] / [`best_regression_split`] — the
//!   legacy sort-per-node search: copy the node's indices and sort them
//!   per feature, O(n log n) per feature per node;
//! * [`PresortedColumns`] — the rpart/XGBoost-style presorted-column
//!   index: one argsort per feature at the tree root, filtered by a node
//!   membership bitmask during descent, with the per-feature sweeps
//!   fanned out across a [`ThreadPool`].

use crate::sample::Class;
use hdd_par::ThreadPool;

/// A split must beat this gain to be accepted at all (guards against
/// floating-point noise producing spurious zero-gain splits).
const MIN_GAIN: f64 = 1e-12;

/// The impurity measure used to score classification splits.
///
/// The paper uses information gain (eqs. 1–3); Gini impurity — rpart's
/// default — is provided for ablations. Both are concave in the class
/// probability, so both produce non-negative gains; they occasionally
/// prefer different thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitCriterion {
    /// Entropy-based information gain (the paper's choice).
    #[default]
    InformationGain,
    /// Gini impurity decrease (rpart's default).
    Gini,
}

impl SplitCriterion {
    /// Node impurity for a weighted two-class distribution.
    #[must_use]
    pub fn impurity(self, w_good: f64, w_failed: f64) -> f64 {
        match self {
            SplitCriterion::InformationGain => entropy(w_good, w_failed),
            SplitCriterion::Gini => gini(w_good, w_failed),
        }
    }
}

/// A chosen split: `feature < threshold` goes left.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitSpec {
    /// Feature index.
    pub feature: usize,
    /// Threshold; strictly-less goes to the left child.
    pub threshold: f64,
    /// Impurity decrease: information gain in bits for classification
    /// (node-local, per unit weight), absolute weighted sum-of-squares
    /// reduction for regression.
    pub gain: f64,
}

/// Row-major feature matrix.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    n_features: usize,
}

impl FeatureMatrix {
    /// Build from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows disagree on length (callers validate first).
    #[must_use]
    pub fn from_rows<'a, I: IntoIterator<Item = &'a [f64]>>(rows: I) -> Self {
        let mut data = Vec::new();
        let mut n_features = 0;
        for row in rows {
            if n_features == 0 {
                n_features = row.len();
            }
            assert_eq!(row.len(), n_features, "inconsistent row length");
            data.extend_from_slice(row);
        }
        FeatureMatrix { data, n_features }
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.data.len().checked_div(self.n_features).unwrap_or(0)
    }

    /// Number of columns.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Value at `(row, feature)`.
    #[must_use]
    pub fn value(&self, row: usize, feature: usize) -> f64 {
        self.data[row * self.n_features + feature]
    }

    /// One row as a slice.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.n_features..(row + 1) * self.n_features]
    }

    /// Iterate over rows as feature slices.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.n_features.max(1))
    }

    /// Build from an already row-major buffer without copying.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `n_features`.
    #[must_use]
    pub fn from_vec(data: Vec<f64>, n_features: usize) -> Self {
        assert!(n_features >= 1, "need at least one feature column");
        assert_eq!(
            data.len() % n_features,
            0,
            "buffer length must be a multiple of the feature count"
        );
        FeatureMatrix { data, n_features }
    }
}

/// Gini impurity of a weighted two-class node: `2·p·(1−p)` scaled to
/// match entropy's `[0, 1]` range at the midpoint.
#[must_use]
pub fn gini(w_good: f64, w_failed: f64) -> f64 {
    let total = w_good + w_failed;
    if total <= 0.0 {
        return 0.0;
    }
    let p = w_failed / total;
    2.0 * p * (1.0 - p) * 2.0
}

/// Binary entropy of a weighted two-class node, in bits (eq. 2).
#[must_use]
pub fn entropy(w_good: f64, w_failed: f64) -> f64 {
    let total = w_good + w_failed;
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for w in [w_good, w_failed] {
        if w > 0.0 {
            let p = w / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Find the best information-gain split of the node containing `indices`.
///
/// Returns `None` when no split satisfies `min_bucket` or improves purity.
#[must_use]
pub fn best_classification_split(
    matrix: &FeatureMatrix,
    indices: &[u32],
    classes: &[Class],
    weights: &[f64],
    min_bucket: usize,
    criterion: SplitCriterion,
) -> Option<SplitSpec> {
    let mut totals = (0.0, 0.0); // (good, failed)
    for &i in indices {
        match classes[i as usize] {
            Class::Good => totals.0 += weights[i as usize],
            Class::Failed => totals.1 += weights[i as usize],
        }
    }
    let parent_info = criterion.impurity(totals.0, totals.1);
    if parent_info == 0.0 {
        return None;
    }
    let total_w = totals.0 + totals.1;

    let mut best: Option<SplitSpec> = None;
    let mut order: Vec<u32> = indices.to_vec();
    let mut vals: Vec<f64> = vec![0.0; indices.len()];
    for feature in 0..matrix.n_features() {
        // Restart from the node's (ascending) order before every sort so
        // ties resolve to ascending row id for each feature — the
        // canonical order the presorted index produces. Chaining sorts
        // would leak the previous feature's order into this one's ties.
        order.copy_from_slice(indices);
        order.sort_by(|&a, &b| {
            matrix
                .value(a as usize, feature)
                .total_cmp(&matrix.value(b as usize, feature))
        });
        for (slot, &i) in vals.iter_mut().zip(&order) {
            *slot = matrix.value(i as usize, feature);
        }
        let floor = best.as_ref().map_or(MIN_GAIN, |b| b.gain);
        let candidate = sweep_classification_feature(
            &order,
            &vals,
            feature,
            classes,
            weights,
            totals,
            parent_info,
            total_w,
            min_bucket,
            criterion,
            floor,
        );
        if let Some(candidate) = candidate {
            best = Some(candidate);
        }
    }
    best
}

/// Sweep every threshold of one feature over samples already in feature
/// order (`vals[pos]` is the feature value of row `order[pos]`, so the
/// hot loop reads values sequentially instead of gathering through the
/// matrix); return the best candidate whose gain strictly exceeds `floor`
/// (earlier thresholds win ties, exactly like the legacy loop).
///
/// All search strategies call this, so their floating-point
/// accumulations — and therefore the chosen splits — are bit-identical.
#[allow(clippy::too_many_arguments)]
fn sweep_classification_feature(
    order: &[u32],
    vals: &[f64],
    feature: usize,
    classes: &[Class],
    weights: &[f64],
    totals: (f64, f64),
    parent_info: f64,
    total_w: f64,
    min_bucket: usize,
    criterion: SplitCriterion,
    floor: f64,
) -> Option<SplitSpec> {
    let mut best: Option<SplitSpec> = None;
    let mut left = (0.0, 0.0);
    for (pos, &i) in order.iter().enumerate() {
        let idx = i as usize;
        match classes[idx] {
            Class::Good => left.0 += weights[idx],
            Class::Failed => left.1 += weights[idx],
        }
        let n_left = pos + 1;
        let n_right = order.len() - n_left;
        if n_left < min_bucket || n_right < min_bucket {
            continue;
        }
        let v = vals[pos];
        let v_next = vals[pos + 1];
        if v == v_next {
            continue; // can't separate equal values
        }
        let right = (totals.0 - left.0, totals.1 - left.1);
        let w_left = left.0 + left.1;
        let w_right = right.0 + right.1;
        let children_info = (w_left * criterion.impurity(left.0, left.1)
            + w_right * criterion.impurity(right.0, right.1))
            / total_w;
        let gain = parent_info - children_info;
        if gain > best.as_ref().map_or(floor, |b| b.gain) {
            best = Some(SplitSpec {
                feature,
                threshold: midpoint(v, v_next),
                gain,
            });
        }
    }
    best
}

/// Find the split minimizing the within-child sum of squares (eq. 4).
///
/// The returned `gain` is the absolute weighted sum-of-squares reduction.
#[must_use]
pub fn best_regression_split(
    matrix: &FeatureMatrix,
    indices: &[u32],
    targets: &[f64],
    weights: &[f64],
    min_bucket: usize,
) -> Option<SplitSpec> {
    let (mut sw, mut swy, mut swy2) = (0.0, 0.0, 0.0);
    for &i in indices {
        let idx = i as usize;
        let (w, y) = (weights[idx], targets[idx]);
        sw += w;
        swy += w * y;
        swy2 += w * y * y;
    }
    let parent_sq = sq_from_moments(sw, swy, swy2);
    if parent_sq <= 0.0 {
        return None;
    }

    let mut best: Option<SplitSpec> = None;
    let mut order: Vec<u32> = indices.to_vec();
    let mut vals: Vec<f64> = vec![0.0; indices.len()];
    for feature in 0..matrix.n_features() {
        // Same canonical tie order as the classification search above.
        order.copy_from_slice(indices);
        order.sort_by(|&a, &b| {
            matrix
                .value(a as usize, feature)
                .total_cmp(&matrix.value(b as usize, feature))
        });
        for (slot, &i) in vals.iter_mut().zip(&order) {
            *slot = matrix.value(i as usize, feature);
        }
        let floor = best.as_ref().map_or(MIN_GAIN, |b| b.gain);
        let candidate = sweep_regression_feature(
            &order,
            &vals,
            feature,
            targets,
            weights,
            (sw, swy, swy2),
            parent_sq,
            min_bucket,
            floor,
        );
        if let Some(candidate) = candidate {
            best = Some(candidate);
        }
    }
    best
}

/// The regression analogue of [`sweep_classification_feature`]: sweep one
/// feature's thresholds over samples already in feature order (with
/// position-aligned `vals`), comparing against `floor` with strict
/// inequality.
#[allow(clippy::too_many_arguments)]
fn sweep_regression_feature(
    order: &[u32],
    vals: &[f64],
    feature: usize,
    targets: &[f64],
    weights: &[f64],
    parent_moments: (f64, f64, f64),
    parent_sq: f64,
    min_bucket: usize,
    floor: f64,
) -> Option<SplitSpec> {
    let (sw, swy, swy2) = parent_moments;
    let mut best: Option<SplitSpec> = None;
    let (mut lw, mut lwy, mut lwy2) = (0.0, 0.0, 0.0);
    for (pos, &i) in order.iter().enumerate() {
        let idx = i as usize;
        let (w, y) = (weights[idx], targets[idx]);
        lw += w;
        lwy += w * y;
        lwy2 += w * y * y;
        let n_left = pos + 1;
        let n_right = order.len() - n_left;
        if n_left < min_bucket || n_right < min_bucket {
            continue;
        }
        let v = vals[pos];
        let v_next = vals[pos + 1];
        if v == v_next {
            continue;
        }
        let left_sq = sq_from_moments(lw, lwy, lwy2);
        let right_sq = sq_from_moments(sw - lw, swy - lwy, swy2 - lwy2);
        let gain = parent_sq - left_sq - right_sq;
        if gain > best.as_ref().map_or(floor, |b| b.gain) {
            best = Some(SplitSpec {
                feature,
                threshold: midpoint(v, v_next),
                gain,
            });
        }
    }
    best
}

/// The presorted-column split index: one argsort per feature, computed
/// once at the tree root and reused at every node of the descent.
///
/// The classic CART inner loop re-sorts the node's samples for every
/// feature at every node — O(n log n) per feature per node. Presorting
/// (as in rpart and the GBDT systems' "exact greedy" mode) moves all of
/// the sorting to the root: during descent a node's feature order is
/// recovered by filtering the global order through a membership bitmask,
/// an O(total rows) scan with no comparisons. The per-feature threshold
/// sweeps are independent, so they fan out across a [`ThreadPool`];
/// per-feature results are merged in feature order with the same
/// strict-greater comparison the serial loop uses, which keeps the chosen
/// split bit-identical for every thread count.
///
/// Ties are broken toward lower row indices. Node index sets must be
/// passed in ascending order (tree growth maintains this invariant via
/// its stable partition), which makes the filtered order equal — sample
/// by sample — to what the legacy search's stable sort produces, so both
/// strategies accumulate in the same order and return the same
/// [`SplitSpec`] down to the last bit.
#[derive(Debug, Clone, PartialEq)]
pub struct PresortedColumns {
    /// `n_features` stripes of `n_rows` row ids, each sorted by the
    /// feature's value (ties by row id).
    order: Vec<u32>,
    n_rows: usize,
    n_features: usize,
}

impl PresortedColumns {
    /// Build the index serially.
    #[must_use]
    pub fn new(matrix: &FeatureMatrix) -> Self {
        Self::with_pool(matrix, ThreadPool::serial())
    }

    /// Build the index with the per-feature argsorts fanned out across
    /// `pool`.
    #[must_use]
    pub fn with_pool(matrix: &FeatureMatrix, pool: ThreadPool) -> Self {
        let n_rows = matrix.n_rows();
        let n_features = matrix.n_features();
        let columns = pool.parallel_map_range(n_features, |feature| {
            let mut order: Vec<u32> = (0..n_rows as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                matrix
                    .value(a as usize, feature)
                    .total_cmp(&matrix.value(b as usize, feature))
                    .then(a.cmp(&b))
            });
            order
        });
        PresortedColumns {
            order: columns.concat(),
            n_rows,
            n_features,
        }
    }

    /// Number of rows the index covers.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns the index covers.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// All row ids sorted by `feature`'s value (ties by row id).
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    #[must_use]
    pub fn feature_order(&self, feature: usize) -> &[u32] {
        &self.order[feature * self.n_rows..(feature + 1) * self.n_rows]
    }

    /// Find the best classification split of the node containing
    /// `indices` (ascending row ids) — same contract and same result as
    /// [`best_classification_split`], without the per-node sorts.
    ///
    /// # Panics
    ///
    /// Panics if `matrix` does not match the dimensions this index was
    /// built from.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn best_classification_split(
        &self,
        matrix: &FeatureMatrix,
        indices: &[u32],
        classes: &[Class],
        weights: &[f64],
        min_bucket: usize,
        criterion: SplitCriterion,
        pool: ThreadPool,
    ) -> Option<SplitSpec> {
        self.check_node(matrix, indices);
        let mut totals = (0.0, 0.0); // (good, failed)
        for &i in indices {
            match classes[i as usize] {
                Class::Good => totals.0 += weights[i as usize],
                Class::Failed => totals.1 += weights[i as usize],
            }
        }
        let parent_info = criterion.impurity(totals.0, totals.1);
        if parent_info == 0.0 {
            return None;
        }
        let total_w = totals.0 + totals.1;

        let mask = self.membership_mask(indices);
        let mask = &mask;
        let per_feature = pool.parallel_map_range(self.n_features, |feature| {
            let order = self.node_order(feature, mask, indices.len());
            let vals: Vec<f64> = order
                .iter()
                .map(|&i| matrix.value(i as usize, feature))
                .collect();
            sweep_classification_feature(
                &order,
                &vals,
                feature,
                classes,
                weights,
                totals,
                parent_info,
                total_w,
                min_bucket,
                criterion,
                MIN_GAIN,
            )
        });
        merge_feature_candidates(per_feature)
    }

    /// Find the best regression split of the node containing `indices`
    /// (ascending row ids) — same contract and same result as
    /// [`best_regression_split`], without the per-node sorts.
    ///
    /// # Panics
    ///
    /// Panics if `matrix` does not match the dimensions this index was
    /// built from.
    #[must_use]
    pub fn best_regression_split(
        &self,
        matrix: &FeatureMatrix,
        indices: &[u32],
        targets: &[f64],
        weights: &[f64],
        min_bucket: usize,
        pool: ThreadPool,
    ) -> Option<SplitSpec> {
        self.check_node(matrix, indices);
        let (mut sw, mut swy, mut swy2) = (0.0, 0.0, 0.0);
        for &i in indices {
            let idx = i as usize;
            let (w, y) = (weights[idx], targets[idx]);
            sw += w;
            swy += w * y;
            swy2 += w * y * y;
        }
        let parent_sq = sq_from_moments(sw, swy, swy2);
        if parent_sq <= 0.0 {
            return None;
        }

        let mask = self.membership_mask(indices);
        let mask = &mask;
        let per_feature = pool.parallel_map_range(self.n_features, |feature| {
            let order = self.node_order(feature, mask, indices.len());
            let vals: Vec<f64> = order
                .iter()
                .map(|&i| matrix.value(i as usize, feature))
                .collect();
            sweep_regression_feature(
                &order,
                &vals,
                feature,
                targets,
                weights,
                (sw, swy, swy2),
                parent_sq,
                min_bucket,
                MIN_GAIN,
            )
        });
        merge_feature_candidates(per_feature)
    }

    /// The node membership bitmask over all rows.
    fn membership_mask(&self, indices: &[u32]) -> Vec<bool> {
        let mut mask = vec![false; self.n_rows];
        for &i in indices {
            mask[i as usize] = true;
        }
        mask
    }

    /// One feature's presorted order filtered down to the node's members.
    fn node_order(&self, feature: usize, mask: &[bool], n_node: usize) -> Vec<u32> {
        let mut order = Vec::with_capacity(n_node);
        order.extend(
            self.feature_order(feature)
                .iter()
                .copied()
                .filter(|&i| mask[i as usize]),
        );
        order
    }

    fn check_node(&self, matrix: &FeatureMatrix, indices: &[u32]) {
        assert_eq!(matrix.n_rows(), self.n_rows, "matrix/index row mismatch");
        assert_eq!(
            matrix.n_features(),
            self.n_features,
            "matrix/index feature mismatch"
        );
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "node indices must be strictly ascending for bit-exact parity"
        );
    }
}

/// Minimum `node_size × n_features` before a node's per-feature sweeps
/// are fanned out across the pool: below this the work is too small to
/// amortise spawn/join, and the serial merge is bit-identical anyway.
const PARALLEL_SWEEP_MIN_WORK: usize = 1 << 15;

/// Stripe-partitioned split-search state: the zero-allocation descent
/// engine behind tree growth.
///
/// [`PresortedColumns`] recovers a node's per-feature order by filtering
/// the root order through a membership bitmask — an O(total rows) scan
/// per feature *per node*, plus a fresh `Vec` per sweep. This workspace
/// keeps the presorted stripes **mutable** and maintains one invariant
/// instead: after every split, each feature stripe is stably partitioned
/// so that a node occupying index range `[start, end)` holds exactly its
/// member rows, still in feature-value order (ties toward lower row id),
/// in that range of every stripe. Recovering a node's order is then free
/// — it *is* the slice — and a split costs one stable partition pass over
/// the node's rows per stripe, touching nothing outside `[start, end)`.
///
/// Stably partitioning a sorted sequence preserves the relative order of
/// both sides, so the slice a node sees is equal, element by element, to
/// the membership-filtered root order [`PresortedColumns`] would produce
/// — and therefore to the legacy sort-per-node order. All three
/// strategies feed the same sweep kernels, so grown trees are
/// bit-identical regardless of strategy or thread count.
///
/// Feature values ride along in a parallel `f64` stripe, so sweeps read
/// values sequentially instead of gathering rows through the matrix.
/// All buffers are reused across [`SplitWorkspace::reset_sorted`] /
/// [`SplitWorkspace::load_from`] calls, which is what forest training
/// leans on: one workspace per worker, reset per tree, zero steady-state
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct SplitWorkspace {
    /// `n_features` stripes × `n_rows` row ids (see invariant above).
    orders: Vec<u32>,
    /// Feature values aligned with `orders`: `fvalues[f·n_rows + pos]` is
    /// feature `f`'s value for row `orders[f·n_rows + pos]`.
    fvalues: Vec<f64>,
    /// Node member row ids in ascending order, partitioned alongside the
    /// stripes (tree growth reads leaf statistics from here).
    members: Vec<u32>,
    /// Per-row routing decision of the current partition step.
    goes_left: Vec<bool>,
    scratch_ids: Vec<u32>,
    scratch_vals: Vec<f64>,
    n_rows: usize,
    n_features: usize,
}

impl SplitWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    #[must_use]
    pub fn new() -> Self {
        SplitWorkspace::default()
    }

    /// Rows the workspace currently covers.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Feature stripes the workspace currently holds.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Size buffers for `n_rows × n_features` and reset `members` to
    /// ascending row ids; stripe contents are left for the caller.
    fn begin(&mut self, n_rows: usize, n_features: usize) {
        self.n_rows = n_rows;
        self.n_features = n_features;
        self.orders.clear();
        self.orders.resize(n_rows * n_features, 0);
        self.fvalues.clear();
        self.fvalues.resize(n_rows * n_features, 0.0);
        self.members.clear();
        self.members.extend(0..n_rows as u32);
        self.goes_left.clear();
        self.goes_left.resize(n_rows, false);
        self.scratch_ids.reserve(n_rows);
        self.scratch_vals.reserve(n_rows);
    }

    /// Reset for `matrix`: argsort every feature stripe (same comparator
    /// as [`PresortedColumns`] — value order, ties toward lower row id),
    /// fanned out across `pool`.
    pub fn reset_sorted(&mut self, matrix: &FeatureMatrix, pool: ThreadPool) {
        let n_rows = matrix.n_rows();
        self.begin(n_rows, matrix.n_features());
        let mut stripes: Vec<(&mut [u32], &mut [f64])> = self
            .orders
            .chunks_mut(n_rows.max(1))
            .zip(self.fvalues.chunks_mut(n_rows.max(1)))
            .collect();
        let sorted = pool.try_parallel_map_mut(&mut stripes, |feature, (ids, vals)| {
            for (slot, row) in ids.iter_mut().zip(0..n_rows as u32) {
                *slot = row;
            }
            ids.sort_unstable_by(|&a, &b| {
                matrix
                    .value(a as usize, feature)
                    .total_cmp(&matrix.value(b as usize, feature))
                    .then(a.cmp(&b))
            });
            for (slot, &row) in vals.iter_mut().zip(ids.iter()) {
                *slot = matrix.value(row as usize, feature);
            }
        });
        if let Err(p) = sorted {
            panic!("{p}");
        }
    }

    /// Reset by copying another workspace's stripes (which must be in
    /// their pristine root state) — a memcpy instead of a re-sort, for
    /// callers that train repeatedly on the same matrix with different
    /// weights (boosting rounds).
    ///
    /// # Panics
    ///
    /// Panics if `pristine` is empty.
    pub fn load_from(&mut self, pristine: &SplitWorkspace) {
        assert!(pristine.n_rows > 0, "cannot load from an empty workspace");
        self.begin(pristine.n_rows, pristine.n_features);
        self.orders.copy_from_slice(&pristine.orders);
        self.fvalues.copy_from_slice(&pristine.fvalues);
    }

    /// Size the workspace and hand out the raw `(row id, value)` stripe
    /// buffers for direct filling — the forest trainer derives bootstrap
    /// stripes from a shared root index straight into these, skipping the
    /// per-tree argsorts entirely. Each feature `f` owns
    /// `[f·n_rows, (f+1)·n_rows)`; rows must be written in feature-value
    /// order with ties toward lower row id.
    pub(crate) fn begin_fill(
        &mut self,
        n_rows: usize,
        n_features: usize,
    ) -> (&mut [u32], &mut [f64]) {
        self.begin(n_rows, n_features);
        (&mut self.orders, &mut self.fvalues)
    }

    /// The node's member row ids (ascending) for index range
    /// `[start, end)`.
    #[must_use]
    pub fn members(&self, start: usize, end: usize) -> &[u32] {
        &self.members[start..end]
    }

    /// One feature's `(row id, value)` stripe slice for a node range.
    fn stripe(&self, feature: usize, start: usize, end: usize) -> (&[u32], &[f64]) {
        let base = feature * self.n_rows;
        (
            &self.orders[base + start..base + end],
            &self.fvalues[base + start..base + end],
        )
    }

    /// Best classification split of the node occupying `[start, end)` —
    /// same result, bit for bit, as [`best_classification_split`] over
    /// the node's members.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn best_classification_split(
        &self,
        start: usize,
        end: usize,
        classes: &[Class],
        weights: &[f64],
        min_bucket: usize,
        criterion: SplitCriterion,
        pool: ThreadPool,
    ) -> Option<SplitSpec> {
        let mut totals = (0.0, 0.0); // (good, failed)
        for &i in self.members(start, end) {
            match classes[i as usize] {
                Class::Good => totals.0 += weights[i as usize],
                Class::Failed => totals.1 += weights[i as usize],
            }
        }
        let parent_info = criterion.impurity(totals.0, totals.1);
        if parent_info == 0.0 {
            return None;
        }
        let total_w = totals.0 + totals.1;
        let pool = self.sweep_pool(end - start, pool);
        let per_feature = pool.parallel_map_range(self.n_features, |feature| {
            let (order, vals) = self.stripe(feature, start, end);
            sweep_classification_feature(
                order,
                vals,
                feature,
                classes,
                weights,
                totals,
                parent_info,
                total_w,
                min_bucket,
                criterion,
                MIN_GAIN,
            )
        });
        merge_feature_candidates(per_feature)
    }

    /// Best regression split of the node occupying `[start, end)` — same
    /// result, bit for bit, as [`best_regression_split`] over the node's
    /// members.
    #[must_use]
    pub fn best_regression_split(
        &self,
        start: usize,
        end: usize,
        targets: &[f64],
        weights: &[f64],
        min_bucket: usize,
        pool: ThreadPool,
    ) -> Option<SplitSpec> {
        let (mut sw, mut swy, mut swy2) = (0.0, 0.0, 0.0);
        for &i in self.members(start, end) {
            let idx = i as usize;
            let (w, y) = (weights[idx], targets[idx]);
            sw += w;
            swy += w * y;
            swy2 += w * y * y;
        }
        let parent_sq = sq_from_moments(sw, swy, swy2);
        if parent_sq <= 0.0 {
            return None;
        }
        let pool = self.sweep_pool(end - start, pool);
        let per_feature = pool.parallel_map_range(self.n_features, |feature| {
            let (order, vals) = self.stripe(feature, start, end);
            sweep_regression_feature(
                order,
                vals,
                feature,
                targets,
                weights,
                (sw, swy, swy2),
                parent_sq,
                min_bucket,
                MIN_GAIN,
            )
        });
        merge_feature_candidates(per_feature)
    }

    /// Drop to the serial pool for nodes too small to amortise fan-out;
    /// the per-feature merge is deterministic either way.
    fn sweep_pool(&self, node_size: usize, pool: ThreadPool) -> ThreadPool {
        if node_size * self.n_features < PARALLEL_SWEEP_MIN_WORK {
            ThreadPool::serial()
        } else {
            pool
        }
    }

    /// Apply a chosen split to the node occupying `[start, end)`: stably
    /// partition the members and every stripe so rows with
    /// `feature < threshold` come first. Returns the index where the
    /// right child starts.
    pub fn partition(&mut self, start: usize, end: usize, feature: usize, threshold: f64) -> usize {
        let base = feature * self.n_rows;
        for pos in base + start..base + end {
            let row = self.orders[pos] as usize;
            self.goes_left[row] = self.fvalues[pos] < threshold;
        }
        let n_left = stable_partition_ids(
            &mut self.members[start..end],
            &self.goes_left,
            &mut self.scratch_ids,
        );
        for f in 0..self.n_features {
            let base = f * self.n_rows;
            stable_partition_stripe(
                &mut self.orders[base + start..base + end],
                &mut self.fvalues[base + start..base + end],
                &self.goes_left,
                &mut self.scratch_ids,
                &mut self.scratch_vals,
            );
        }
        start + n_left
    }
}

/// Stable in-place partition of row ids by a per-row mask; left rows keep
/// their order at the front, right rows theirs at the back. Returns the
/// left count.
fn stable_partition_ids(ids: &mut [u32], left: &[bool], scratch: &mut Vec<u32>) -> usize {
    scratch.clear();
    let mut w = 0;
    for r in 0..ids.len() {
        let id = ids[r];
        if left[id as usize] {
            ids[w] = id;
            w += 1;
        } else {
            scratch.push(id);
        }
    }
    ids[w..].copy_from_slice(scratch);
    w
}

/// [`stable_partition_ids`] moving the aligned value lane in lockstep.
fn stable_partition_stripe(
    ids: &mut [u32],
    vals: &mut [f64],
    left: &[bool],
    scratch_ids: &mut Vec<u32>,
    scratch_vals: &mut Vec<f64>,
) -> usize {
    scratch_ids.clear();
    scratch_vals.clear();
    let mut w = 0;
    for r in 0..ids.len() {
        let id = ids[r];
        let v = vals[r];
        if left[id as usize] {
            ids[w] = id;
            vals[w] = v;
            w += 1;
        } else {
            scratch_ids.push(id);
            scratch_vals.push(v);
        }
    }
    ids[w..].copy_from_slice(scratch_ids);
    vals[w..].copy_from_slice(scratch_vals);
    w
}

/// Merge per-feature winners in feature order with the serial loop's
/// strict-greater comparison (earlier features win ties).
fn merge_feature_candidates<I: IntoIterator<Item = Option<SplitSpec>>>(
    candidates: I,
) -> Option<SplitSpec> {
    let mut best: Option<SplitSpec> = None;
    for candidate in candidates.into_iter().flatten() {
        if candidate.gain > best.as_ref().map_or(MIN_GAIN, |b| b.gain) {
            best = Some(candidate);
        }
    }
    best
}

/// Weighted within-node sum of squares from accumulated moments; clamped
/// at zero against floating-point cancellation.
fn sq_from_moments(sw: f64, swy: f64, swy2: f64) -> f64 {
    if sw <= 0.0 {
        return 0.0;
    }
    (swy2 - swy * swy / sw).max(0.0)
}

/// A threshold strictly between `lo` and `hi` (`lo < hi`), robust to the
/// midpoint rounding back onto `lo`.
fn midpoint(lo: f64, hi: f64) -> f64 {
    let mid = lo + (hi - lo) / 2.0;
    if mid > lo {
        mid
    } else {
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: &[&[f64]]) -> FeatureMatrix {
        FeatureMatrix::from_rows(rows.iter().copied())
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy(1.0, 0.0), 0.0);
        assert_eq!(entropy(0.0, 1.0), 0.0);
        assert!((entropy(0.5, 0.5) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(0.0, 0.0), 0.0);
        let h = entropy(0.9, 0.1);
        assert!(h > 0.0 && h < 1.0);
    }

    #[test]
    fn classification_split_separates_perfectly() {
        let m = matrix(&[&[1.0], &[2.0], &[10.0], &[11.0]]);
        let classes = [Class::Good, Class::Good, Class::Failed, Class::Failed];
        let weights = [1.0; 4];
        let s = best_classification_split(
            &m,
            &[0, 1, 2, 3],
            &classes,
            &weights,
            1,
            SplitCriterion::InformationGain,
        )
        .unwrap();
        assert_eq!(s.feature, 0);
        assert!(s.threshold > 2.0 && s.threshold <= 10.0);
        assert!((s.gain - 1.0).abs() < 1e-12, "full gain for a pure split");
    }

    #[test]
    fn classification_split_respects_min_bucket() {
        let m = matrix(&[&[1.0], &[2.0], &[10.0], &[11.0]]);
        let classes = [Class::Good, Class::Good, Class::Failed, Class::Failed];
        let weights = [1.0; 4];
        assert!(best_classification_split(
            &m,
            &[0, 1, 2, 3],
            &classes,
            &weights,
            3,
            SplitCriterion::InformationGain
        )
        .is_none());
    }

    #[test]
    fn classification_split_none_for_pure_node() {
        let m = matrix(&[&[1.0], &[2.0]]);
        let classes = [Class::Good, Class::Good];
        let weights = [1.0; 2];
        assert!(best_classification_split(
            &m,
            &[0, 1],
            &classes,
            &weights,
            1,
            SplitCriterion::InformationGain
        )
        .is_none());
    }

    #[test]
    fn classification_split_none_when_values_identical() {
        let m = matrix(&[&[5.0], &[5.0], &[5.0], &[5.0]]);
        let classes = [Class::Good, Class::Failed, Class::Good, Class::Failed];
        let weights = [1.0; 4];
        assert!(best_classification_split(
            &m,
            &[0, 1, 2, 3],
            &classes,
            &weights,
            1,
            SplitCriterion::InformationGain
        )
        .is_none());
    }

    #[test]
    fn classification_split_picks_most_informative_feature() {
        // Feature 0 is noise; feature 1 separates.
        let m = matrix(&[&[5.0, 1.0], &[1.0, 2.0], &[5.0, 10.0], &[1.0, 11.0]]);
        let classes = [Class::Good, Class::Good, Class::Failed, Class::Failed];
        let weights = [1.0; 4];
        let s = best_classification_split(
            &m,
            &[0, 1, 2, 3],
            &classes,
            &weights,
            1,
            SplitCriterion::InformationGain,
        )
        .unwrap();
        assert_eq!(s.feature, 1);
    }

    #[test]
    fn weights_shift_the_chosen_split() {
        // Six points; class boundary is ambiguous between features, but
        // up-weighting the failed samples makes isolating them on feature
        // 0 the dominant gain.
        let m = matrix(&[&[1.0], &[2.0], &[3.0], &[10.0], &[11.0], &[12.0]]);
        let classes = [
            Class::Good,
            Class::Good,
            Class::Failed,
            Class::Failed,
            Class::Failed,
            Class::Failed,
        ];
        let heavy_good = [10.0, 10.0, 1.0, 1.0, 1.0, 1.0];
        let s = best_classification_split(
            &m,
            &[0, 1, 2, 3, 4, 5],
            &classes,
            &heavy_good,
            1,
            SplitCriterion::InformationGain,
        )
        .unwrap();
        // With good samples heavy, the best boundary isolates them: the
        // split lands between x=2 and x=3.
        assert!(s.threshold > 2.0 && s.threshold <= 3.0, "{s:?}");
    }

    #[test]
    fn regression_split_reduces_sse() {
        let m = matrix(&[&[1.0], &[2.0], &[10.0], &[11.0]]);
        let targets = [0.0, 0.0, 5.0, 5.0];
        let weights = [1.0; 4];
        let s = best_regression_split(&m, &[0, 1, 2, 3], &targets, &weights, 1).unwrap();
        assert!(s.threshold > 2.0 && s.threshold <= 10.0);
        // Parent SSE = 25; children = 0.
        assert!((s.gain - 25.0).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn regression_split_none_for_constant_targets() {
        let m = matrix(&[&[1.0], &[2.0]]);
        assert!(best_regression_split(&m, &[0, 1], &[3.0, 3.0], &[1.0, 1.0], 1).is_none());
    }

    #[test]
    fn midpoint_is_strictly_between() {
        let lo = 1.0;
        let hi = lo + f64::EPSILON;
        let m = midpoint(lo, hi);
        assert!(m > lo && m <= hi);
    }

    #[test]
    fn gini_bounds_and_symmetry() {
        assert_eq!(gini(1.0, 0.0), 0.0);
        assert_eq!(gini(0.0, 1.0), 0.0);
        assert!((gini(0.5, 0.5) - 1.0).abs() < 1e-12, "scaled to 1 at p=0.5");
        assert!((gini(0.3, 0.7) - gini(0.7, 0.3)).abs() < 1e-12);
    }

    #[test]
    fn gini_criterion_also_separates() {
        let m = matrix(&[&[1.0], &[2.0], &[10.0], &[11.0]]);
        let classes = [Class::Good, Class::Good, Class::Failed, Class::Failed];
        let weights = [1.0; 4];
        let s = best_classification_split(
            &m,
            &[0, 1, 2, 3],
            &classes,
            &weights,
            1,
            SplitCriterion::Gini,
        )
        .unwrap();
        assert!(s.threshold > 2.0 && s.threshold <= 10.0);
    }

    #[test]
    fn presorted_matches_legacy_classification() {
        // Quantized values force ties; feature 2 is constant.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![f64::from((i * 7) % 5), f64::from((i * 3) % 11), 4.0])
            .collect();
        let m = FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice));
        let classes: Vec<Class> = (0..40)
            .map(|i| {
                if (i * 13) % 3 == 0 {
                    Class::Failed
                } else {
                    Class::Good
                }
            })
            .collect();
        let weights: Vec<f64> = (0..40).map(|i| 1.0 + f64::from(i % 4) * 0.25).collect();
        let indices: Vec<u32> = (0..40).collect();
        let presorted = PresortedColumns::new(&m);
        for criterion in [SplitCriterion::InformationGain, SplitCriterion::Gini] {
            for min_bucket in [1, 3, 7] {
                let legacy = best_classification_split(
                    &m, &indices, &classes, &weights, min_bucket, criterion,
                );
                for threads in [1, 4] {
                    let got = presorted.best_classification_split(
                        &m,
                        &indices,
                        &classes,
                        &weights,
                        min_bucket,
                        criterion,
                        ThreadPool::new(threads),
                    );
                    assert_eq!(got, legacy, "criterion={criterion:?} mb={min_bucket}");
                }
            }
        }
    }

    #[test]
    fn presorted_matches_legacy_on_sub_node() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![f64::from((i * 5) % 9), f64::from(i % 2)])
            .collect();
        let m = FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice));
        let targets: Vec<f64> = (0..30).map(|i| f64::from((i * 11) % 7) - 3.0).collect();
        let weights = vec![1.0; 30];
        // An ascending sub-node, as tree descent produces.
        let indices: Vec<u32> = (0..30).filter(|i| i % 3 != 1).collect();
        let presorted = PresortedColumns::new(&m);
        let legacy = best_regression_split(&m, &indices, &targets, &weights, 2);
        let got = presorted.best_regression_split(
            &m,
            &indices,
            &targets,
            &weights,
            2,
            ThreadPool::new(3),
        );
        assert_eq!(got, legacy);
        assert!(got.is_some(), "this node should be splittable");
    }

    #[test]
    fn presorted_orders_are_sorted_with_index_tiebreak() {
        let m = matrix(&[&[2.0], &[1.0], &[2.0], &[1.0]]);
        let presorted = PresortedColumns::new(&m);
        assert_eq!(presorted.n_rows(), 4);
        assert_eq!(presorted.n_features(), 1);
        assert_eq!(presorted.feature_order(0), &[1, 3, 0, 2]);
    }

    #[test]
    fn workspace_matches_legacy_through_a_descent() {
        // Quantized values force ties; simulate a two-level descent and
        // check the workspace's search + partition reproduce the legacy
        // search on the partitioned member sets exactly.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                vec![
                    f64::from((i * 7) % 5),
                    f64::from((i * 3) % 11),
                    f64::from(i % 2),
                ]
            })
            .collect();
        let m = FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice));
        let classes: Vec<Class> = (0..60)
            .map(|i| {
                if (i * 13) % 3 == 0 {
                    Class::Failed
                } else {
                    Class::Good
                }
            })
            .collect();
        let weights: Vec<f64> = (0..60).map(|i| 1.0 + f64::from(i % 4) * 0.25).collect();

        let mut ws = SplitWorkspace::new();
        ws.reset_sorted(&m, ThreadPool::serial());
        assert_eq!(ws.n_rows(), 60);
        assert_eq!(ws.n_features(), 3);

        let mut ranges = vec![(0usize, 60usize)];
        let mut splits_seen = 0;
        while let Some((start, end)) = ranges.pop() {
            let members: Vec<u32> = ws.members(start, end).to_vec();
            assert!(
                members.windows(2).all(|w| w[0] < w[1]),
                "members must stay ascending"
            );
            let legacy = best_classification_split(
                &m,
                &members,
                &classes,
                &weights,
                3,
                SplitCriterion::InformationGain,
            );
            for threads in [1, 4] {
                let got = ws.best_classification_split(
                    start,
                    end,
                    &classes,
                    &weights,
                    3,
                    SplitCriterion::InformationGain,
                    ThreadPool::new(threads),
                );
                assert_eq!(got, legacy, "range [{start}, {end})");
            }
            let Some(split) = legacy else { continue };
            splits_seen += 1;
            if splits_seen > 8 {
                continue;
            }
            let mid = ws.partition(start, end, split.feature, split.threshold);
            assert!(mid > start && mid < end);
            for &i in ws.members(start, mid) {
                assert!(m.value(i as usize, split.feature) < split.threshold);
            }
            for &i in ws.members(mid, end) {
                assert!(m.value(i as usize, split.feature) >= split.threshold);
            }
            ranges.push((start, mid));
            ranges.push((mid, end));
        }
        assert!(splits_seen >= 2, "descent must actually split");
    }

    #[test]
    fn workspace_regression_matches_legacy() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![f64::from((i * 5) % 9), f64::from(i % 4)])
            .collect();
        let m = FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice));
        let targets: Vec<f64> = (0..50).map(|i| f64::from((i * 11) % 7) - 3.0).collect();
        let weights = vec![1.0; 50];
        let mut ws = SplitWorkspace::new();
        ws.reset_sorted(&m, ThreadPool::new(2));
        let legacy_indices: Vec<u32> = (0..50).collect();
        let legacy = best_regression_split(&m, &legacy_indices, &targets, &weights, 2);
        let got = ws.best_regression_split(0, 50, &targets, &weights, 2, ThreadPool::serial());
        assert_eq!(got, legacy);
        let split = got.unwrap();
        let mid = ws.partition(0, 50, split.feature, split.threshold);
        let legacy_sub: Vec<u32> = ws.members(0, mid).to_vec();
        assert_eq!(
            ws.best_regression_split(0, mid, &targets, &weights, 2, ThreadPool::serial()),
            best_regression_split(&m, &legacy_sub, &targets, &weights, 2)
        );
    }

    #[test]
    fn workspace_load_from_restores_pristine_stripes() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from((i * 7) % 6)]).collect();
        let m = FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice));
        let mut pristine = SplitWorkspace::new();
        pristine.reset_sorted(&m, ThreadPool::serial());
        let mut ws = SplitWorkspace::new();
        ws.load_from(&pristine);
        let before: Vec<u32> = ws.members(0, 20).to_vec();
        let _ = ws.partition(0, 20, 0, 3.0);
        assert_ne!(ws.members(0, 20), before.as_slice(), "partition reorders");
        ws.load_from(&pristine);
        assert_eq!(ws.members(0, 20), before.as_slice());
        assert_eq!(ws.orders, pristine.orders);
        assert_eq!(ws.fvalues, pristine.fvalues);
    }

    #[test]
    fn matrix_from_vec_round_trips() {
        let m = FeatureMatrix::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of the feature count")]
    fn matrix_from_vec_rejects_ragged_buffer() {
        let _ = FeatureMatrix::from_vec(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn matrix_accessors() {
        let m = matrix(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_features(), 2);
        assert_eq!(m.value(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }
}
