//! Property-style tests of the CART invariants that the training
//! algorithms promise: stopping rules, purity, weighting semantics.
//! Cases are generated from a deterministic seeded stream so failures
//! reproduce exactly (print the loop seed to replay one).

use hdd_cart::{Class, ClassSample, ClassificationTreeBuilder, RegSample, RegressionTreeBuilder};

/// A deterministic pseudo-random stream from a seed.
fn mix(seed: u64, i: u64) -> f64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Derive an integer parameter in `[lo, hi)` from the case seed.
fn pick(seed: u64, salt: u64, lo: usize, hi: usize) -> usize {
    lo + (mix(seed, salt) * (hi - lo) as f64) as usize
}

/// Every leaf of a regression tree trained with unit weights contains
/// at least `min_bucket` samples (the Minbucket stopping rule).
#[test]
fn regression_leaves_respect_min_bucket() {
    for seed in 0u64..40 {
        let n = pick(seed, 100, 30, 200);
        let min_bucket = pick(seed, 101, 1, 12);
        let samples: Vec<RegSample> = (0..n)
            .map(|i| {
                RegSample::new(
                    vec![mix(seed, i as u64) * 100.0, mix(seed ^ 1, i as u64)],
                    mix(seed ^ 2, i as u64) * 4.0 - 2.0,
                )
            })
            .collect();
        let mut builder = RegressionTreeBuilder::new();
        builder.min_bucket(min_bucket).min_split(2).complexity(0.0);
        let tree = builder.build(&samples).unwrap();
        for node in tree.tree().nodes() {
            if node.split.is_none() {
                // Unit weights: node weight == sample count.
                assert!(
                    node.weight + 1e-9 >= min_bucket as f64,
                    "seed {seed}: leaf with {} samples < min_bucket {min_bucket}",
                    node.weight
                );
            }
        }
    }
}

/// Node fractions are consistent: the root has fraction 1, children of
/// any split partition their parent's weight.
#[test]
fn tree_weights_partition() {
    for seed in 0u64..60 {
        let n = pick(seed, 200, 40, 150);
        let samples: Vec<ClassSample> = (0..n)
            .map(|i| {
                let x = mix(seed, i as u64) * 50.0;
                let class = if mix(seed ^ 9, i as u64) < 0.35 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x], class)
            })
            .collect();
        let n_failed = samples.iter().filter(|s| s.class == Class::Failed).count();
        if n_failed == 0 || n_failed == samples.len() {
            continue;
        }
        let tree = ClassificationTreeBuilder::new().build(&samples).unwrap();
        let t = tree.tree();
        let root = t.node(hdd_cart::NodeId::ROOT);
        assert!((root.fraction - 1.0).abs() < 1e-9, "seed {seed}");
        for node in t.nodes() {
            if let Some(split) = &node.split {
                let left = t.node(split.left);
                let right = t.node(split.right);
                assert!(
                    (left.weight + right.weight - node.weight).abs() < 1e-9 * node.weight.max(1.0),
                    "seed {seed}: children must partition the parent's weight"
                );
            }
        }
    }
}

/// Class weighting semantics: the root's weighted failed fraction
/// equals the requested boost fraction divided by the loss-adjusted
/// total, regardless of the raw class counts.
#[test]
fn boost_fraction_controls_root_distribution() {
    for seed in 0u64..60 {
        let boost = 0.05 + 0.9 * mix(seed, 300);
        let n_good = pick(seed, 301, 20, 100);
        let n_failed = pick(seed, 302, 5, 50);
        let mut samples = Vec::new();
        for i in 0..n_good {
            samples.push(ClassSample::new(vec![mix(seed, i as u64)], Class::Good));
        }
        for i in 0..n_failed {
            samples.push(ClassSample::new(
                vec![mix(seed ^ 3, i as u64) + 10.0],
                Class::Failed,
            ));
        }
        let mut builder = ClassificationTreeBuilder::new();
        builder
            .failed_weight_fraction(Some(boost))
            .false_alarm_loss(1.0)
            .min_split(usize::MAX); // force a stump: inspect the root only
        let tree = builder.build(&samples).unwrap();
        let root = tree.tree().node(hdd_cart::NodeId::ROOT);
        let frac = root.prediction.failed_fraction();
        assert!(
            (frac - boost).abs() < 1e-9,
            "seed {seed}: requested boost {boost}, root failed fraction {frac}"
        );
    }
}

/// Predictions are a function of the features only: permuting the
/// training set does not change the trained tree's predictions.
#[test]
fn training_order_does_not_matter() {
    for seed in 0u64..40 {
        let samples: Vec<ClassSample> = (0..80)
            .map(|i| {
                let x = mix(seed, i as u64) * 30.0;
                let class = if x < 9.0 { Class::Failed } else { Class::Good };
                ClassSample::new(vec![x, mix(seed ^ 5, i as u64)], class)
            })
            .collect();
        let n_failed = samples.iter().filter(|s| s.class == Class::Failed).count();
        if n_failed == 0 || n_failed == samples.len() {
            continue;
        }
        let mut reversed = samples.clone();
        reversed.reverse();
        let a = ClassificationTreeBuilder::new().build(&samples).unwrap();
        let b = ClassificationTreeBuilder::new().build(&reversed).unwrap();
        for i in 0..60 {
            let q = vec![mix(seed ^ 7, i) * 40.0 - 5.0, mix(seed ^ 8, i)];
            assert_eq!(a.predict(&q), b.predict(&q), "seed {seed}");
        }
    }
}

/// Compiled flat trees agree with their arena sources on every query, for
/// every model family, across many random training sets.
#[test]
fn compiled_trees_match_arena_trees() {
    for seed in 0u64..25 {
        let n = pick(seed, 400, 60, 200);
        let samples: Vec<ClassSample> = (0..n)
            .map(|i| {
                let x = mix(seed, i as u64) * 40.0;
                let y = mix(seed ^ 11, i as u64) * 10.0;
                let class = if x + y < 22.0 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x, y], class)
            })
            .collect();
        let n_failed = samples.iter().filter(|s| s.class == Class::Failed).count();
        if n_failed == 0 || n_failed == samples.len() {
            continue;
        }
        let tree = ClassificationTreeBuilder::new().build(&samples).unwrap();
        let compiled = tree.compile();
        let reg_samples: Vec<RegSample> = samples
            .iter()
            .map(|s| RegSample::new(s.features.clone(), s.class.target()))
            .collect();
        let reg = RegressionTreeBuilder::new().build(&reg_samples).unwrap();
        let reg_compiled = reg.compile();
        for i in 0..80 {
            let q = vec![mix(seed ^ 13, i) * 50.0 - 5.0, mix(seed ^ 17, i) * 12.0];
            assert_eq!(
                compiled.score(&q),
                tree.predict(&q).target(),
                "seed {seed}: classification parity"
            );
            assert_eq!(
                reg_compiled.score(&q).to_bits(),
                reg.predict(&q).to_bits(),
                "seed {seed}: regression parity"
            );
        }
    }
}
