//! Property-based tests of the CART invariants that the training
//! algorithms promise: stopping rules, purity, weighting semantics.

use hdd_cart::{Class, ClassSample, ClassificationTreeBuilder, RegSample, RegressionTreeBuilder};
use proptest::prelude::*;

/// A deterministic pseudo-random stream from a seed (no rand dependency
/// needed for data synthesis inside strategies).
fn mix(seed: u64, i: u64) -> f64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

proptest! {
    /// Every leaf of a regression tree trained with unit weights contains
    /// at least `min_bucket` samples (the Minbucket stopping rule).
    #[test]
    fn regression_leaves_respect_min_bucket(
        seed in 0u64..500,
        n in 30usize..200,
        min_bucket in 1usize..12,
    ) {
        let samples: Vec<RegSample> = (0..n)
            .map(|i| {
                RegSample::new(
                    vec![mix(seed, i as u64) * 100.0, mix(seed ^ 1, i as u64)],
                    mix(seed ^ 2, i as u64) * 4.0 - 2.0,
                )
            })
            .collect();
        let mut builder = RegressionTreeBuilder::new();
        builder.min_bucket(min_bucket).min_split(2).complexity(0.0);
        let tree = builder.build(&samples).unwrap();
        for node in tree.tree().nodes() {
            if node.split.is_none() {
                // Unit weights: node weight == sample count.
                prop_assert!(
                    node.weight + 1e-9 >= min_bucket as f64,
                    "leaf with {} samples < min_bucket {min_bucket}",
                    node.weight
                );
            }
        }
    }

    /// Node fractions are consistent: the root has fraction 1, children of
    /// any split partition their parent's weight.
    #[test]
    fn tree_weights_partition(seed in 0u64..500, n in 40usize..150) {
        let samples: Vec<ClassSample> = (0..n)
            .map(|i| {
                let x = mix(seed, i as u64) * 50.0;
                let class = if mix(seed ^ 9, i as u64) < 0.35 {
                    Class::Failed
                } else {
                    Class::Good
                };
                ClassSample::new(vec![x], class)
            })
            .collect();
        let n_failed = samples.iter().filter(|s| s.class == Class::Failed).count();
        prop_assume!(n_failed > 0 && n_failed < samples.len());
        let tree = ClassificationTreeBuilder::new().build(&samples).unwrap();
        let t = tree.tree();
        let root = t.node(hdd_cart::NodeId::ROOT);
        prop_assert!((root.fraction - 1.0).abs() < 1e-9);
        for node in t.nodes() {
            if let Some(split) = &node.split {
                let left = t.node(split.left);
                let right = t.node(split.right);
                prop_assert!(
                    (left.weight + right.weight - node.weight).abs()
                        < 1e-9 * node.weight.max(1.0),
                    "children must partition the parent's weight"
                );
            }
        }
    }

    /// Class weighting semantics: the root's weighted failed fraction
    /// equals the requested boost fraction divided by the loss-adjusted
    /// total, regardless of the raw class counts.
    #[test]
    fn boost_fraction_controls_root_distribution(
        seed in 0u64..200,
        boost in 0.05f64..0.95,
        n_good in 20usize..100,
        n_failed in 5usize..50,
    ) {
        let mut samples = Vec::new();
        for i in 0..n_good {
            samples.push(ClassSample::new(vec![mix(seed, i as u64)], Class::Good));
        }
        for i in 0..n_failed {
            samples.push(ClassSample::new(
                vec![mix(seed ^ 3, i as u64) + 10.0],
                Class::Failed,
            ));
        }
        let mut builder = ClassificationTreeBuilder::new();
        builder
            .failed_weight_fraction(Some(boost))
            .false_alarm_loss(1.0)
            .min_split(usize::MAX); // force a stump: inspect the root only
        let tree = builder.build(&samples).unwrap();
        let root = tree.tree().node(hdd_cart::NodeId::ROOT);
        let frac = root.prediction.failed_fraction();
        prop_assert!(
            (frac - boost).abs() < 1e-9,
            "requested boost {boost}, root failed fraction {frac}"
        );
    }

    /// Predictions are a function of the features only: permuting the
    /// training set does not change the trained tree's predictions.
    #[test]
    fn training_order_does_not_matter(seed in 0u64..200) {
        let samples: Vec<ClassSample> = (0..80)
            .map(|i| {
                let x = mix(seed, i as u64) * 30.0;
                let class = if x < 9.0 { Class::Failed } else { Class::Good };
                ClassSample::new(vec![x, mix(seed ^ 5, i as u64)], class)
            })
            .collect();
        let n_failed = samples.iter().filter(|s| s.class == Class::Failed).count();
        prop_assume!(n_failed > 0 && n_failed < samples.len());
        let mut reversed = samples.clone();
        reversed.reverse();
        let a = ClassificationTreeBuilder::new().build(&samples).unwrap();
        let b = ClassificationTreeBuilder::new().build(&reversed).unwrap();
        for i in 0..60 {
            let q = vec![mix(seed ^ 7, i) * 40.0 - 5.0, mix(seed ^ 8, i)];
            prop_assert_eq!(a.predict(&q), b.predict(&q));
        }
    }
}
