//! Property-style parity tests: on seeded random datasets — including
//! heavy ties, constant features, and sub-node index sets — the
//! [`PresortedColumns`] split search must return exactly the same
//! [`SplitSpec`] as the legacy sort-per-node search, at every thread
//! count. This is the determinism contract the parallel trainer rests
//! on: both searches share one sweep kernel, so equal sample order means
//! bit-equal gains and thresholds.

use hdd_cart::split::{
    best_classification_split, best_regression_split, FeatureMatrix, PresortedColumns,
    SplitCriterion,
};
use hdd_cart::Class;
use hdd_par::ThreadPool;

/// splitmix64 — the same deterministic generator the forest uses.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(seed: u64) -> f64 {
    (splitmix(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// A random dataset whose columns mix three shapes: heavily quantized
/// (many ties), constant (never splittable), and continuous.
fn random_matrix(seed: u64, n_rows: usize, n_features: usize) -> FeatureMatrix {
    let rows: Vec<Vec<f64>> = (0..n_rows)
        .map(|r| {
            (0..n_features)
                .map(|c| {
                    let u = uniform(seed ^ ((r as u64) << 20) ^ c as u64);
                    match c % 3 {
                        0 => (u * 4.0).floor(), // quantized: 4 distinct values
                        1 => 7.5,               // constant
                        _ => u * 100.0,         // continuous
                    }
                })
                .collect()
        })
        .collect();
    FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice))
}

fn random_classes(seed: u64, n: usize) -> Vec<Class> {
    (0..n)
        .map(|i| {
            if uniform(seed ^ 0xC1A5 ^ i as u64) < 0.3 {
                Class::Failed
            } else {
                Class::Good
            }
        })
        .collect()
}

fn random_weights(seed: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.25 + uniform(seed ^ 0x0E16 ^ i as u64))
        .collect()
}

fn random_targets(seed: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| uniform(seed ^ 0x7A26 ^ i as u64) * 2.0 - 1.0)
        .collect()
}

/// A strictly ascending random subset of the rows (how grow's stable
/// partition always presents node indices).
fn random_sub_node(seed: u64, n_rows: usize) -> Vec<u32> {
    let indices: Vec<u32> = (0..n_rows as u32)
        .filter(|&i| uniform(seed ^ 0x5CB5 ^ u64::from(i)) < 0.6)
        .collect();
    assert!(indices.len() > 2, "sub-node unexpectedly tiny");
    indices
}

#[test]
fn classification_parity_on_random_datasets() {
    for seed in 0..20u64 {
        let n_rows = 40 + (seed as usize % 7) * 17;
        let matrix = random_matrix(seed, n_rows, 6);
        let classes = random_classes(seed, n_rows);
        let weights = random_weights(seed, n_rows);
        let presorted = PresortedColumns::new(&matrix);

        for criterion in [SplitCriterion::InformationGain, SplitCriterion::Gini] {
            for min_bucket in [1, 3, 7] {
                for indices in [
                    (0..n_rows as u32).collect::<Vec<u32>>(),
                    random_sub_node(seed, n_rows),
                ] {
                    let legacy = best_classification_split(
                        &matrix, &indices, &classes, &weights, min_bucket, criterion,
                    );
                    for threads in [1, 4] {
                        let indexed = presorted.best_classification_split(
                            &matrix,
                            &indices,
                            &classes,
                            &weights,
                            min_bucket,
                            criterion,
                            ThreadPool::new(threads),
                        );
                        assert_eq!(
                            legacy,
                            indexed,
                            "seed {seed}, {criterion:?}, min_bucket {min_bucket}, \
                             {} rows, {threads} threads",
                            indices.len()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn regression_parity_on_random_datasets() {
    for seed in 100..120u64 {
        let n_rows = 40 + (seed as usize % 5) * 23;
        let matrix = random_matrix(seed, n_rows, 5);
        let targets = random_targets(seed, n_rows);
        let weights = random_weights(seed, n_rows);
        let presorted = PresortedColumns::new(&matrix);

        for min_bucket in [1, 5] {
            for indices in [
                (0..n_rows as u32).collect::<Vec<u32>>(),
                random_sub_node(seed, n_rows),
            ] {
                let legacy =
                    best_regression_split(&matrix, &indices, &targets, &weights, min_bucket);
                for threads in [1, 4] {
                    let indexed = presorted.best_regression_split(
                        &matrix,
                        &indices,
                        &targets,
                        &weights,
                        min_bucket,
                        ThreadPool::new(threads),
                    );
                    assert_eq!(
                        legacy,
                        indexed,
                        "seed {seed}, min_bucket {min_bucket}, {} rows, {threads} threads",
                        indices.len()
                    );
                }
            }
        }
    }
}

#[test]
fn parity_on_all_tied_dataset() {
    // Every value equal in every splittable column: neither search may
    // find a split, and neither may disagree about it.
    let rows = vec![vec![3.0, 3.0, 3.0]; 30];
    let matrix = FeatureMatrix::from_rows(rows.iter().map(Vec::as_slice));
    let classes = random_classes(7, 30);
    let weights = vec![1.0; 30];
    let indices: Vec<u32> = (0..30).collect();
    let presorted = PresortedColumns::new(&matrix);
    let legacy = best_classification_split(
        &matrix,
        &indices,
        &classes,
        &weights,
        1,
        SplitCriterion::InformationGain,
    );
    let indexed = presorted.best_classification_split(
        &matrix,
        &indices,
        &classes,
        &weights,
        1,
        SplitCriterion::InformationGain,
        ThreadPool::new(4),
    );
    assert_eq!(legacy, None);
    assert_eq!(indexed, None);
}
