//! Dependency-free JSON for model persistence.
//!
//! The serving layer needs to save and load compiled models without
//! pulling a serialization framework into an offline build. This crate
//! provides the minimum: a [`Value`] tree, a strict parser, a compact
//! writer, and the [`JsonCodec`] trait model types implement.
//!
//! Numbers round-trip exactly: the writer emits the shortest decimal
//! representation that parses back to the identical `f64` (Rust's
//! `Display` guarantee), so a saved model predicts bit-identically after
//! a load.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod container;

use std::fmt;

/// A JSON document node.
///
/// Objects preserve insertion order (they are association lists, not
/// hash maps); model payloads are small enough that linear field lookup
/// is irrelevant next to file I/O.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (ordered key → value pairs).
    Obj(Vec<(String, Value)>),
}

/// Why parsing or decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// An error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    /// A "missing field" decode error.
    #[must_use]
    pub fn missing(field: &str) -> Self {
        JsonError::new(format!("missing field `{field}`"))
    }

    /// An "unexpected type/value" decode error.
    #[must_use]
    pub fn expected(what: &str, field: &str) -> Self {
        JsonError::new(format!("expected {what} at `{field}`"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Types that convert to and from a JSON [`Value`].
pub trait JsonCodec: Sized {
    /// Encode `self`.
    fn to_json(&self) -> Value;

    /// Decode from a parsed document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when `value` does not have the expected
    /// shape.
    fn from_json(value: &Value) -> Result<Self, JsonError>;
}

impl Value {
    /// Object field by name (`None` for non-objects or absent keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object field.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when absent.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key).ok_or_else(|| JsonError::missing(key))
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if exactly representable.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Decode a required numeric field.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when absent or not a number.
    pub fn f64_field(&self, key: &str) -> Result<f64, JsonError> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| JsonError::expected("number", key))
    }

    /// Decode a required integer field.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when absent or not a non-negative integer.
    pub fn usize_field(&self, key: &str) -> Result<usize, JsonError> {
        self.field(key)?
            .as_usize()
            .ok_or_else(|| JsonError::expected("non-negative integer", key))
    }

    /// Decode a required string field.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when absent or not a string.
    pub fn str_field(&self, key: &str) -> Result<&str, JsonError> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| JsonError::expected("string", key))
    }

    /// Decode a required array field of numbers.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when absent or any element is not a number.
    pub fn f64_vec_field(&self, key: &str) -> Result<Vec<f64>, JsonError> {
        self.field(key)?
            .as_arr()
            .ok_or_else(|| JsonError::expected("array", key))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| JsonError::expected("number", key)))
            .collect()
    }

    /// Decode a required array field of non-negative integers.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when absent or any element is not an integer.
    pub fn usize_vec_field(&self, key: &str) -> Result<Vec<usize>, JsonError> {
        self.field(key)?
            .as_arr()
            .ok_or_else(|| JsonError::expected("array", key))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .ok_or_else(|| JsonError::expected("integer", key))
            })
            .collect()
    }

    /// Build an array value from numbers.
    #[must_use]
    pub fn from_f64s<I: IntoIterator<Item = f64>>(items: I) -> Value {
        Value::Arr(items.into_iter().map(Value::Num).collect())
    }

    /// Build an array value from integers.
    #[must_use]
    pub fn from_usizes<I: IntoIterator<Item = usize>>(items: I) -> Value {
        Value::Arr(items.into_iter().map(|n| Value::Num(n as f64)).collect())
    }
}

// ---------------------------------------------------------------- writer

/// Serialize a value to compact JSON.
///
/// # Panics
///
/// Panics on non-finite numbers: model parameters are validated finite at
/// training time, so a NaN here is a logic error, not an input error.
#[must_use]
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            assert!(n.is_finite(), "JSON cannot represent non-finite numbers");
            // Rust's Display for f64 is the shortest exact round-trip form.
            out.push_str(&n.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- checksum

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
///
/// Bitwise, table-free: model files are small and checksumming is a
/// vanishing fraction of save/load time, so clarity wins over a lookup
/// table. Used by the persistence layer to detect on-disk corruption.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------- parser

/// Parse a JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

/// Nesting depth cap: protects the recursive parser from stack overflow
/// on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::new("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid keyword at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number bytes"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| JsonError::new(format!("invalid number `{text}`")))?;
        if !n.is_finite() {
            return Err(JsonError::new(format!("number out of range `{text}`")));
        }
        Ok(Value::Num(n))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            // Surrogates are not expected in model files;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(JsonError::new("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected , or ] at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected , or }} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod crc_tests {
    use super::crc32;

    #[test]
    fn matches_the_ieee_check_value() {
        // The standard CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"hddpred model payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "byte {byte} bit {bit}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v), text);
        }
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
            std::f64::consts::PI,
        ] {
            let v = Value::Num(x);
            let back = parse(&to_string(&v)).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":"x"}],"c":null,"d":{"e":true}}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v), text);
        assert_eq!(v.field("d").unwrap().get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".to_string());
        let text = to_string(&v);
        assert_eq!(parse(&text).unwrap(), v);
        let unicode = parse(r#""éA""#).unwrap();
        assert_eq!(unicode.as_str(), Some("éA"));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : 3 } ").unwrap();
        assert_eq!(v.usize_vec_field("a").unwrap(), vec![1, 2]);
        assert_eq!(v.usize_field("b").unwrap(), 3);
    }

    #[test]
    fn rejects_malformed() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1]]",
            "nul",
            "1e999",
        ] {
            assert!(parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn field_accessors_and_errors() {
        let v = parse(r#"{"n":3.5,"i":7,"s":"x","xs":[1.5,2.5]}"#).unwrap();
        assert_eq!(v.f64_field("n").unwrap(), 3.5);
        assert_eq!(v.usize_field("i").unwrap(), 7);
        assert_eq!(v.str_field("s").unwrap(), "x");
        assert_eq!(v.f64_vec_field("xs").unwrap(), vec![1.5, 2.5]);
        assert!(v.usize_field("n").is_err(), "3.5 is not an integer");
        assert!(v.field("absent").is_err());
        let err = v.field("absent").unwrap_err();
        assert!(err.to_string().contains("absent"), "{err}");
    }

    #[test]
    fn negative_numbers_are_not_usize() {
        let v = parse("-4").unwrap();
        assert_eq!(v.as_usize(), None);
        assert_eq!(v.as_f64(), Some(-4.0));
    }
}
