//! The CRC-checked, crash-safe file container.
//!
//! Model files and service checkpoints share one on-disk layout: a
//! two-line document whose header line records a magic string, the CRC
//! block size, the payload byte count and one CRC-32 per payload block,
//! followed by the payload itself. [`seal`] builds that document,
//! [`unseal`] verifies it down to the byte, and [`write_atomic`] persists
//! it crash-safely (temp sibling → `fsync` → atomic rename → best-effort
//! directory sync), so an interrupted writer never clobbers the previous
//! valid file and a reader only ever sees a complete old or new document.
//!
//! Any single bit flip anywhere in a sealed file is rejected at
//! [`unseal`] with the failing byte offset — the property the chaos
//! suite enforces for models and checkpoints alike.

use crate::{crc32, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// Payload bytes covered by each CRC-32 in the container header. Small
/// blocks keep the "corrupt at byte …" diagnostics tight without
/// noticeably growing the header.
pub const CRC_BLOCK_BYTES: usize = 256;

/// Why a sealed container could not be opened.
#[derive(Debug)]
pub enum ContainerError {
    /// The text does not even look like a container (no header line, an
    /// unrecognized magic string). The candidate header (or the whole
    /// text, for single-line files) is carried so callers can classify
    /// legacy formats themselves.
    NotAContainer {
        /// The first line of the file (or all of it when single-line).
        candidate: String,
    },
    /// The container is recognizable but its bytes contradict the
    /// recorded checksums or layout.
    Corrupt {
        /// Byte offset (from the start of the file) of the failure.
        offset: usize,
        /// What was wrong there.
        detail: String,
    },
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::NotAContainer { .. } => {
                write!(f, "not a sealed container (missing header)")
            }
            ContainerError::Corrupt { offset, detail } => {
                write!(f, "corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for ContainerError {}

/// Build the two-line container document for `payload`:
/// `{"magic":…,"block":256,"payload_bytes":…,"crc32":[…]}\n<payload>`.
#[must_use]
pub fn seal(magic: &str, payload: &str) -> String {
    let header = Value::Obj(vec![
        ("magic".to_string(), Value::Str(magic.to_string())),
        ("block".to_string(), Value::Num(CRC_BLOCK_BYTES as f64)),
        (
            "payload_bytes".to_string(),
            Value::Num(payload.len() as f64),
        ),
        (
            "crc32".to_string(),
            Value::from_usizes(
                payload
                    .as_bytes()
                    .chunks(CRC_BLOCK_BYTES)
                    .map(|chunk| crc32(chunk) as usize),
            ),
        ),
    ]);
    let mut document = crate::to_string(&header);
    document.push('\n');
    document.push_str(payload);
    document
}

/// Verify a container document sealed with `magic` and return its
/// payload slice.
///
/// Every payload block's CRC-32, the payload length and the header
/// layout are checked before anything is returned; a mismatch names the
/// failing byte offset.
///
/// # Errors
///
/// Returns [`ContainerError::NotAContainer`] when the text has no header
/// line or the header is valid JSON without this `magic` (callers with
/// legacy single-line formats inspect `candidate` to classify them), and
/// [`ContainerError::Corrupt`] for everything else.
pub fn unseal<'a>(magic: &str, text: &'a str) -> Result<&'a str, ContainerError> {
    let Some((header_line, payload)) = text.split_once('\n') else {
        return Err(ContainerError::NotAContainer {
            candidate: text.to_string(),
        });
    };
    let corrupt_header = |detail: String| ContainerError::Corrupt { offset: 0, detail };
    let header =
        crate::parse(header_line).map_err(|e| corrupt_header(format!("unreadable header: {e}")))?;
    match header.str_field("magic") {
        Ok(found) if found == magic => {}
        _ => {
            return Err(ContainerError::NotAContainer {
                candidate: header_line.to_string(),
            })
        }
    }
    let block = header
        .usize_field("block")
        .map_err(|e| corrupt_header(e.to_string()))?;
    if block != CRC_BLOCK_BYTES {
        return Err(corrupt_header(format!(
            "checksum block size {block}, expected {CRC_BLOCK_BYTES}"
        )));
    }
    let recorded_len = header
        .usize_field("payload_bytes")
        .map_err(|e| corrupt_header(e.to_string()))?;
    let payload_offset = header_line.len() + 1;
    if recorded_len != payload.len() {
        return Err(ContainerError::Corrupt {
            offset: payload_offset,
            detail: format!(
                "payload is {} bytes, header says {recorded_len}",
                payload.len()
            ),
        });
    }
    let recorded = header
        .usize_vec_field("crc32")
        .map_err(|e| corrupt_header(e.to_string()))?;
    let chunks = payload.as_bytes().chunks(CRC_BLOCK_BYTES);
    if recorded.len() != chunks.len() {
        return Err(corrupt_header(format!(
            "{} checksums for {} payload blocks",
            recorded.len(),
            chunks.len()
        )));
    }
    for (i, chunk) in chunks.enumerate() {
        if crc32(chunk) as usize != recorded[i] {
            return Err(ContainerError::Corrupt {
                offset: payload_offset + i * CRC_BLOCK_BYTES,
                detail: format!("checksum mismatch in the {}-byte block there", chunk.len()),
            });
        }
    }
    Ok(payload)
}

/// The temp-file path an atomic write uses before renaming: `<name>.tmp`
/// in the same directory, so the rename never crosses a filesystem
/// boundary.
#[must_use]
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(std::ffi::OsStr::to_os_string)
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `document` to `path` crash-safely: the bytes go to a `.tmp`
/// sibling first, are flushed to disk (`fsync`), and only then renamed
/// over `path`; the parent directory is synced best-effort so the rename
/// itself survives a crash. Readers only ever see a complete old or new
/// file.
///
/// # Errors
///
/// Propagates I/O errors from the write, sync or rename.
pub fn write_atomic(path: &Path, document: &str) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(document.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(dir) = std::fs::File::open(dir) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &str = "hdd-test-container";

    #[test]
    fn seal_unseal_round_trips() {
        for payload in ["", "x", "{\"a\":1}", &"long ".repeat(300)] {
            let doc = seal(MAGIC, payload);
            assert_eq!(unseal(MAGIC, &doc).unwrap(), payload);
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let doc = seal(MAGIC, &"payload body ".repeat(40));
        for byte in 0..doc.len() {
            for bit in 0..8 {
                let mut bytes = doc.clone().into_bytes();
                bytes[byte] ^= 1 << bit;
                let Ok(text) = String::from_utf8(bytes) else {
                    continue; // non-UTF-8 is rejected before unseal
                };
                assert!(
                    unseal(MAGIC, &text).is_err(),
                    "flip of byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn corruption_names_the_failing_block_offset() {
        let doc = seal(MAGIC, &"abcdefgh".repeat(100));
        let header_end = doc.find('\n').unwrap();
        let victim = header_end + 1 + CRC_BLOCK_BYTES + 5;
        let mut bytes = doc.into_bytes();
        bytes[victim] ^= 0x20;
        let text = String::from_utf8(bytes).unwrap();
        match unseal(MAGIC, &text).unwrap_err() {
            ContainerError::Corrupt { offset, .. } => {
                assert_eq!(offset, header_end + 1 + CRC_BLOCK_BYTES);
            }
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn wrong_magic_and_headerless_text_are_not_a_container() {
        let doc = seal("other-magic", "payload");
        assert!(matches!(
            unseal(MAGIC, &doc),
            Err(ContainerError::NotAContainer { .. })
        ));
        assert!(matches!(
            unseal(MAGIC, "{\"format_version\":1}"),
            Err(ContainerError::NotAContainer { candidate }) if candidate.contains("format_version")
        ));
    }

    #[test]
    fn unreadable_header_is_corrupt() {
        let err = unseal(MAGIC, "not json at all\npayload").unwrap_err();
        assert!(
            matches!(err, ContainerError::Corrupt { offset: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn atomic_write_survives_a_stale_temp_file() {
        let dir = std::env::temp_dir().join("hdd-json-container-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.txt");
        std::fs::write(tmp_sibling(&path), b"torn garbage").unwrap();
        write_atomic(&path, &seal(MAGIC, "v1")).unwrap();
        assert!(!tmp_sibling(&path).exists(), "write consumes its temp file");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(unseal(MAGIC, &text).unwrap(), "v1");
        std::fs::remove_dir_all(&dir).ok();
    }
}
