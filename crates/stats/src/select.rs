//! The statistical feature-selection pipeline (§IV-B of the paper).
//!
//! Candidate features (attribute values and change rates) are scored by
//! three non-parametric statistics comparing failed-drive samples against
//! good-drive samples; features whose rank-sum separation clears a
//! threshold are kept, and the strongest change rates are added.

use crate::features::{FeatureSet, FeatureSpec};
use crate::ranksum::rank_sum_z;
use crate::revarr::reverse_arrangements_z;
use crate::zscore::two_sample_z;
use hdd_smart::rng::DeterministicRng;
use hdd_smart::{Attribute, Dataset, SmartSeries, BASIC_ATTRIBUTES};

/// Configuration of the selection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionConfig {
    /// Samples within this many hours before failure form the failed
    /// population.
    pub failed_window_hours: u32,
    /// Random good samples taken per good drive.
    pub good_samples_per_drive: usize,
    /// Cap on the number of good drives examined (for speed; the sampling
    /// is deterministic in `seed`).
    pub max_good_drives: usize,
    /// Minimum |rank-sum z| for a feature to be kept.
    pub z_threshold: f64,
    /// Change-rate intervals (hours) to evaluate.
    pub change_rate_intervals: Vec<u32>,
    /// Number of change-rate features to keep (the strongest ones).
    pub change_rates_to_keep: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            failed_window_hours: 168,
            good_samples_per_drive: 3,
            max_good_drives: 2_000,
            z_threshold: 3.5,
            change_rate_intervals: vec![6],
            change_rates_to_keep: 3,
            seed: 0x005E_1EC7,
        }
    }
}

/// The three statistics and the verdict for one candidate feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureScore {
    /// The candidate.
    pub feature: FeatureSpec,
    /// Wilcoxon rank-sum z between failed and good samples (the primary
    /// criterion).
    pub rank_sum: f64,
    /// Two-sample z-score between the populations.
    pub z_score: f64,
    /// Mean reverse-arrangements z over failed-drive series minus the same
    /// over good-drive series (trend excess; value features only).
    pub trend: f64,
    /// Whether the pipeline kept the feature.
    pub selected: bool,
}

/// Run feature selection on `dataset`.
///
/// Returns the selected [`FeatureSet`] together with every candidate's
/// scores (for reporting).
///
/// # Panics
///
/// Panics if the dataset has no failed drives with enough history.
#[must_use]
pub fn select_features(
    dataset: &Dataset,
    config: &SelectionConfig,
) -> (FeatureSet, Vec<FeatureScore>) {
    let populations = Populations::collect(dataset, config);
    assert!(
        !populations.failed_series.is_empty(),
        "feature selection needs failed drives"
    );

    let mut scores = Vec::new();
    let mut selected = Vec::new();

    // Value features: keep those clearing the rank-sum threshold.
    for attr in BASIC_ATTRIBUTES {
        let feature = FeatureSpec::Value(attr);
        let failed = populations.feature_values(feature, true);
        let good = populations.feature_values(feature, false);
        let rs = rank_sum_z(&failed, &good);
        let z = two_sample_z(&failed, &good);
        let trend = populations.trend_excess(attr);
        let keep = rs.abs() >= config.z_threshold;
        if keep {
            selected.push(feature);
        }
        scores.push(FeatureScore {
            feature,
            rank_sum: rs,
            z_score: z,
            trend,
            selected: keep,
        });
    }

    // Change-rate features: rank every (attribute, interval) candidate and
    // keep the strongest `change_rates_to_keep` that clear the threshold.
    let mut cr_scores = Vec::new();
    for &interval_hours in &config.change_rate_intervals {
        for attr in BASIC_ATTRIBUTES {
            let feature = FeatureSpec::ChangeRate {
                attr,
                interval_hours,
            };
            let failed = populations.feature_values(feature, true);
            let good = populations.feature_values(feature, false);
            let rs = rank_sum_z(&failed, &good);
            let z = two_sample_z(&failed, &good);
            cr_scores.push(FeatureScore {
                feature,
                rank_sum: rs,
                z_score: z,
                trend: 0.0,
                selected: false,
            });
        }
    }
    cr_scores.sort_by(|a, b| b.rank_sum.abs().total_cmp(&a.rank_sum.abs()));
    for (i, score) in cr_scores.iter_mut().enumerate() {
        score.selected =
            i < config.change_rates_to_keep && score.rank_sum.abs() >= config.z_threshold;
        if score.selected {
            selected.push(score.feature);
        }
    }
    scores.extend(cr_scores);

    (FeatureSet::new("statistical", selected), scores)
}

/// The two sample populations used for scoring.
struct Populations {
    failed_series: Vec<SmartSeries>,
    /// Per failed series, the eligible sample indices (inside the failed
    /// window, enough lookback).
    failed_indices: Vec<Vec<usize>>,
    good_series: Vec<SmartSeries>,
    good_indices: Vec<Vec<usize>>,
}

impl Populations {
    fn collect(dataset: &Dataset, config: &SelectionConfig) -> Self {
        let lookback = 2 * config
            .change_rate_intervals
            .iter()
            .copied()
            .max()
            .unwrap_or(6);
        let mut failed_series = Vec::new();
        let mut failed_indices = Vec::new();
        for spec in dataset.failed_drives() {
            let series = dataset.series(spec);
            if series.len() < lookback as usize + 2 {
                continue;
            }
            // `failed_drives()` only yields drives with a fail hour;
            // skip rather than die if a hand-built dataset lies.
            let Some(fail) = spec.class.fail_hour() else {
                continue;
            };
            let window_start = fail - config.failed_window_hours;
            let first_hour = series.samples()[0].hour;
            let indices: Vec<usize> = (0..series.len())
                .filter(|&i| {
                    let h = series.samples()[i].hour;
                    h >= window_start && h.saturating_since(first_hour) >= lookback
                })
                .collect();
            if !indices.is_empty() {
                failed_indices.push(indices);
                failed_series.push(series);
            }
        }

        let rng = DeterministicRng::new(config.seed);
        let mut good_series = Vec::new();
        let mut good_indices = Vec::new();
        for spec in dataset.good_drives().take(config.max_good_drives) {
            let series = dataset.series(spec);
            if series.len() < lookback as usize + 2 {
                continue;
            }
            let eligible = lookback as usize..series.len();
            let picks: Vec<usize> = (0..config.good_samples_per_drive)
                .map(|k| {
                    let u = rng.uniform(u64::from(spec.id.0), k as u64);
                    eligible.start + (u * (eligible.end - eligible.start) as f64) as usize
                })
                .collect();
            good_indices.push(picks);
            good_series.push(series);
        }

        Populations {
            failed_series,
            failed_indices,
            good_series,
            good_indices,
        }
    }

    fn feature_values(&self, feature: FeatureSpec, failed: bool) -> Vec<f64> {
        let (series, indices) = if failed {
            (&self.failed_series, &self.failed_indices)
        } else {
            (&self.good_series, &self.good_indices)
        };
        let mut out = Vec::new();
        for (s, idxs) in series.iter().zip(indices) {
            for &i in idxs {
                if let Some(v) = feature.evaluate(s, i) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Mean reverse-arrangements trend z over failed series minus over
    /// good series, for `attr`.
    fn trend_excess(&self, attr: Attribute) -> f64 {
        let mean_trend = |series: &[SmartSeries]| {
            let zs: Vec<f64> = series
                .iter()
                .take(50)
                .map(|s| {
                    let values: Vec<f64> = s.attribute_series(attr).map(|(_, v)| v).collect();
                    reverse_arrangements_z(&values)
                })
                .collect();
            crate::summary::mean(&zs)
        };
        mean_trend(&self.failed_series) - mean_trend(&self.good_series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd_smart::{DatasetGenerator, FamilyProfile};

    fn dataset() -> Dataset {
        DatasetGenerator::new(FamilyProfile::w().scaled(0.06), 7).generate()
    }

    #[test]
    fn rejects_pending_sector_features() {
        let (set, scores) = select_features(&dataset(), &SelectionConfig::default());
        for f in set.features() {
            if let FeatureSpec::Value(a) = f {
                assert!(
                    !matches!(
                        a,
                        Attribute::CurrentPendingSector | Attribute::CurrentPendingSectorRaw
                    ),
                    "pending-sector feature selected"
                );
            }
        }
        // And their scores are indeed weak.
        for s in &scores {
            if let FeatureSpec::Value(Attribute::CurrentPendingSector) = s.feature {
                assert!(s.rank_sum.abs() < 3.5, "rank_sum {}", s.rank_sum);
            }
        }
    }

    #[test]
    fn keeps_strong_attributes() {
        let (set, _) = select_features(&dataset(), &SelectionConfig::default());
        let has = |a: Attribute| {
            set.features()
                .iter()
                .any(|f| matches!(f, FeatureSpec::Value(x) if *x == a))
        };
        assert!(has(Attribute::PowerOnHours));
        assert!(has(Attribute::RawReadErrorRate));
        assert!(has(Attribute::ReallocatedSectorsRaw));
    }

    #[test]
    fn keeps_requested_number_of_change_rates() {
        let config = SelectionConfig::default();
        let (set, _) = select_features(&dataset(), &config);
        let n_cr = set
            .features()
            .iter()
            .filter(|f| matches!(f, FeatureSpec::ChangeRate { .. }))
            .count();
        assert_eq!(n_cr, config.change_rates_to_keep);
    }

    #[test]
    fn reallocated_raw_change_rate_is_strongest() {
        let (set, _) = select_features(&dataset(), &SelectionConfig::default());
        assert!(
            set.features().iter().any(|f| matches!(
                f,
                FeatureSpec::ChangeRate {
                    attr: Attribute::ReallocatedSectorsRaw,
                    ..
                }
            )),
            "the raw reallocated-sectors change rate must be selected"
        );
    }

    #[test]
    fn reproduces_the_papers_critical_set() {
        // On the default family-W population, the statistical pipeline
        // reproduces the paper's 13 critical features.
        let (set, _) = select_features(&dataset(), &SelectionConfig::default());
        let expected = FeatureSet::critical13();
        let mut got: Vec<String> = set.names();
        let mut want: Vec<String> = expected.names();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn scores_cover_all_candidates() {
        let config = SelectionConfig::default();
        let (_, scores) = select_features(&dataset(), &config);
        let expected = BASIC_ATTRIBUTES.len() * (1 + config.change_rate_intervals.len());
        assert_eq!(scores.len(), expected);
    }

    #[test]
    fn selection_is_deterministic() {
        let (a, _) = select_features(&dataset(), &SelectionConfig::default());
        let (b, _) = select_features(&dataset(), &SelectionConfig::default());
        assert_eq!(a, b);
    }
}
