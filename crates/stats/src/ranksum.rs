//! Wilcoxon rank-sum (Mann–Whitney) test with normal approximation.
//!
//! Hughes et al. introduced the rank-sum test to drive-failure prediction
//! because many SMART attributes are non-parametrically distributed; the
//! paper reuses it for feature selection: an attribute whose good and
//! failed samples rank-separate strongly is a useful model input.

/// Assign ranks (1-based, average ranks for ties) to `values`.
///
/// Returns the rank of each input element in input order.
#[must_use]
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Elements order[i..=j] are tied; average their 1-based ranks.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// The rank-sum z statistic comparing `sample_a` against `sample_b`.
///
/// Positive values mean `sample_a` tends to rank *higher* than `sample_b`.
///
/// ```
/// use hdd_stats::rank_sum_z;
///
/// let healthy = [115.0, 117.0, 114.0, 116.0, 118.0, 113.0];
/// let failing = [80.0, 82.0, 79.0, 84.0, 81.0, 83.0];
/// assert!(rank_sum_z(&failing, &healthy) < -2.0);
/// ```
/// The normal approximation includes the tie correction; for the sample
/// sizes used in feature selection (hundreds to thousands) it is accurate
/// to well under 1%.
///
/// Returns `0.0` when either sample is empty.
#[must_use]
pub fn rank_sum_z(sample_a: &[f64], sample_b: &[f64]) -> f64 {
    let n_a = sample_a.len();
    let n_b = sample_b.len();
    if n_a == 0 || n_b == 0 {
        return 0.0;
    }
    let mut pooled = Vec::with_capacity(n_a + n_b);
    pooled.extend_from_slice(sample_a);
    pooled.extend_from_slice(sample_b);
    let ranks = average_ranks(&pooled);
    let w: f64 = ranks[..n_a].iter().sum();

    let n = (n_a + n_b) as f64;
    let na = n_a as f64;
    let nb = n_b as f64;
    let mean_w = na * (n + 1.0) / 2.0;

    // Tie correction: sum over tie groups of (t^3 - t).
    let mut sorted = pooled;
    sorted.sort_by(f64::total_cmp);
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let var_w = na * nb / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if var_w <= 0.0 {
        return 0.0;
    }
    (w - mean_w) / var_w.sqrt()
}

/// Two-sided p-value for a standard normal z statistic.
#[must_use]
pub fn two_sided_p(z: f64) -> f64 {
    2.0 * (1.0 - standard_normal_cdf(z.abs()))
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7).
#[must_use]
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_are_averaged() {
        // 10, 20, 20, 30 -> ranks 1, 2.5, 2.5, 4
        assert_eq!(
            average_ranks(&[20.0, 10.0, 30.0, 20.0]),
            vec![2.5, 1.0, 4.0, 2.5]
        );
    }

    #[test]
    fn identical_samples_give_zero_z() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let z = rank_sum_z(&a, &a);
        assert!(z.abs() < 1e-9, "z = {z}");
    }

    #[test]
    fn separated_samples_give_large_z() {
        let a: Vec<f64> = (0..50).map(f64::from).collect();
        let b: Vec<f64> = (100..150).map(f64::from).collect();
        let z = rank_sum_z(&a, &b);
        assert!(z < -7.0, "fully separated samples must give |z| >> 0: {z}");
        assert!(rank_sum_z(&b, &a) > 7.0);
    }

    #[test]
    fn empty_sample_gives_zero() {
        assert_eq!(rank_sum_z(&[], &[1.0]), 0.0);
        assert_eq!(rank_sum_z(&[1.0], &[]), 0.0);
    }

    #[test]
    fn all_tied_gives_zero() {
        let a = [5.0; 10];
        let b = [5.0; 10];
        assert_eq!(rank_sum_z(&a, &b), 0.0);
    }

    #[test]
    fn symmetric_in_exchange() {
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let z_ab = rank_sum_z(&a, &b);
        let z_ba = rank_sum_z(&b, &a);
        assert!((z_ab + z_ba).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn p_values_decrease_with_z() {
        assert!(two_sided_p(3.0) < two_sided_p(1.0));
        assert!((two_sided_p(0.0) - 1.0).abs() < 1e-6);
    }
}
