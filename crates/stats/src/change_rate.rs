//! Attribute change rates over a time interval.
//!
//! The paper augments raw attribute values with *change rates* — how much
//! an attribute moved over the last `interval` hours — and finds by
//! statistical testing that the 6-hour change rates of *Raw Read Error
//! Rate*, *Hardware ECC Recovered* and *Reallocated Sectors Count (raw)*
//! carry predictive signal (§IV-B).

use hdd_smart::{Attribute, SmartSeries};

/// The change of `attr` over the last `interval_hours` at sample `idx` of
/// `series`.
///
/// The reference sample is the most recent one at least `interval_hours`
/// old; because samples can be missing, the observed difference is
/// rescaled to exactly `interval_hours`. Returns `None` when no reference
/// sample exists within `2 * interval_hours` (not enough history).
///
/// # Panics
///
/// Panics if `idx` is out of bounds or `interval_hours` is zero.
#[must_use]
pub fn change_rate_at(
    series: &SmartSeries,
    idx: usize,
    attr: Attribute,
    interval_hours: u32,
) -> Option<f64> {
    assert!(interval_hours > 0, "interval must be positive");
    let samples = series.samples();
    let current = &samples[idx];
    let target = current.hour.0.checked_sub(interval_hours)?;
    // Most recent sample at hour <= target, searching backwards from idx.
    let reference = samples[..idx]
        .iter()
        .rev()
        .take_while(|s| s.hour.0 + 2 * interval_hours >= current.hour.0)
        .find(|s| s.hour.0 <= target)?;
    let elapsed = f64::from(current.hour.0 - reference.hour.0);
    let delta = current.value(attr) - reference.value(attr);
    Some(delta * f64::from(interval_hours) / elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd_smart::{DriveClass, DriveId, Hour, SmartSample, NUM_ATTRIBUTES};

    fn series_from(hours_values: &[(u32, f32)]) -> SmartSeries {
        let samples = hours_values
            .iter()
            .map(|&(h, v)| SmartSample {
                hour: Hour(h),
                values: [v; NUM_ATTRIBUTES],
            })
            .collect();
        SmartSeries::new(DriveId(0), DriveClass::Good, samples)
    }

    #[test]
    fn exact_interval() {
        let s = series_from(&[(0, 10.0), (6, 16.0)]);
        let cr = change_rate_at(&s, 1, Attribute::RawReadErrorRate, 6).unwrap();
        assert!((cr - 6.0).abs() < 1e-9);
    }

    #[test]
    fn rescales_when_reference_is_older() {
        // Reference is 12h old; delta 12 over 12h -> 6 per 6h.
        let s = series_from(&[(0, 10.0), (12, 22.0)]);
        let cr = change_rate_at(&s, 1, Attribute::RawReadErrorRate, 6).unwrap();
        assert!((cr - 6.0).abs() < 1e-9);
    }

    #[test]
    fn none_without_history() {
        let s = series_from(&[(0, 10.0), (3, 12.0)]);
        assert!(change_rate_at(&s, 0, Attribute::RawReadErrorRate, 6).is_none());
        assert!(change_rate_at(&s, 1, Attribute::RawReadErrorRate, 6).is_none());
    }

    #[test]
    fn none_when_gap_too_large() {
        // Reference would be 20h old for a 6h interval: outside tolerance.
        let s = series_from(&[(0, 10.0), (20, 30.0)]);
        assert!(change_rate_at(&s, 1, Attribute::RawReadErrorRate, 6).is_none());
    }

    #[test]
    fn picks_most_recent_eligible_reference() {
        let s = series_from(&[(0, 0.0), (2, 100.0), (8, 112.0)]);
        // target hour = 2; sample at hour 2 qualifies (not hour 0).
        let cr = change_rate_at(&s, 2, Attribute::RawReadErrorRate, 6).unwrap();
        assert!((cr - 12.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        let s = series_from(&[(0, 1.0), (6, 2.0)]);
        let _ = change_rate_at(&s, 1, Attribute::RawReadErrorRate, 0);
    }
}
