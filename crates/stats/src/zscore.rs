//! Two-sample z-score separation.
//!
//! The simplest of the three selection tests (used by Murray et al. as
//! "z-scores"): how many standard errors apart are the means of the failed
//! and good populations of an attribute.

use crate::summary::{mean, variance};

/// The two-sample z statistic `(mean_a − mean_b) / se` with
/// `se = sqrt(var_a/n_a + var_b/n_b)`.
///
/// Returns `0.0` when either sample is empty or both variances vanish.
#[must_use]
pub fn two_sample_z(sample_a: &[f64], sample_b: &[f64]) -> f64 {
    if sample_a.is_empty() || sample_b.is_empty() {
        return 0.0;
    }
    let se2 =
        variance(sample_a) / sample_a.len() as f64 + variance(sample_b) / sample_b.len() as f64;
    if se2 <= 0.0 {
        return 0.0;
    }
    (mean(sample_a) - mean(sample_b)) / se2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_means_give_zero() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 2.0, 2.0];
        let z = two_sample_z(&a, &b);
        assert!(z.abs() < 1e-9, "z = {z}");
    }

    #[test]
    fn separated_means_give_large_z() {
        let a: Vec<f64> = (0..100).map(|i| 10.0 + f64::from(i % 5)).collect();
        let b: Vec<f64> = (0..100).map(|i| 20.0 + f64::from(i % 5)).collect();
        assert!(two_sample_z(&a, &b) < -20.0);
        assert!(two_sample_z(&b, &a) > 20.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(two_sample_z(&[], &[1.0]), 0.0);
        assert_eq!(two_sample_z(&[1.0], &[]), 0.0);
        assert_eq!(two_sample_z(&[3.0, 3.0], &[3.0, 3.0]), 0.0);
    }

    #[test]
    fn antisymmetric() {
        let a = [1.0, 2.0, 5.0, 9.0];
        let b = [4.0, 4.0, 6.0, 6.0];
        assert!((two_sample_z(&a, &b) + two_sample_z(&b, &a)).abs() < 1e-12);
    }
}
