//! Named feature sets and feature-vector extraction.
//!
//! A *feature* is either the current value of a SMART attribute or a
//! change rate over an interval. The paper compares three sets
//! (Table III): the 12 **basic** features of Table II, the 13 **critical**
//! features chosen by statistical testing, and the 19 features chosen **by
//! expertise** in the authors' earlier BP ANN work.

use crate::change_rate::change_rate_at;
use hdd_smart::{Attribute, SmartSeries, BASIC_ATTRIBUTES};
use std::fmt;

/// One model input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSpec {
    /// The attribute's current value.
    Value(Attribute),
    /// The attribute's change over the last `interval_hours`.
    ChangeRate {
        /// Attribute whose change is measured.
        attr: Attribute,
        /// Interval in hours (6 in the paper's selected features).
        interval_hours: u32,
    },
}

impl FeatureSpec {
    /// Hours of history needed before this feature is defined.
    #[must_use]
    pub fn lookback_hours(self) -> u32 {
        match self {
            FeatureSpec::Value(_) => 0,
            FeatureSpec::ChangeRate { interval_hours, .. } => 2 * interval_hours,
        }
    }

    /// Evaluate the feature at sample `idx` of `series`.
    ///
    /// Returns `None` if a change rate lacks history at that sample.
    #[must_use]
    pub fn evaluate(self, series: &SmartSeries, idx: usize) -> Option<f64> {
        match self {
            FeatureSpec::Value(attr) => Some(series.samples()[idx].value(attr)),
            FeatureSpec::ChangeRate {
                attr,
                interval_hours,
            } => change_rate_at(series, idx, attr, interval_hours),
        }
    }
}

impl fmt::Display for FeatureSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureSpec::Value(attr) => write!(f, "{}", attr.mnemonic()),
            FeatureSpec::ChangeRate {
                attr,
                interval_hours,
            } => write!(f, "Δ{}h({})", interval_hours, attr.mnemonic()),
        }
    }
}

/// An ordered set of features defining a model's input vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSet {
    name: String,
    features: Vec<FeatureSpec>,
}

impl FeatureSet {
    /// Build a custom feature set.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or contains duplicates.
    #[must_use]
    pub fn new(name: impl Into<String>, features: Vec<FeatureSpec>) -> Self {
        assert!(!features.is_empty(), "feature set must not be empty");
        let mut seen = std::collections::HashSet::new();
        for f in &features {
            assert!(seen.insert(*f), "duplicate feature {f}");
        }
        FeatureSet {
            name: name.into(),
            features,
        }
    }

    /// The 12 basic features of Table II (all attribute values, no change
    /// rates).
    #[must_use]
    pub fn basic12() -> Self {
        FeatureSet::new(
            "basic-12",
            BASIC_ATTRIBUTES
                .iter()
                .map(|&a| FeatureSpec::Value(a))
                .collect(),
        )
    }

    /// The 13 critical features selected by the statistical tests (§IV-B):
    ///
    /// ```
    /// use hdd_smart::{DatasetGenerator, FamilyProfile};
    /// use hdd_stats::FeatureSet;
    ///
    /// let set = FeatureSet::critical13();
    /// let dataset = DatasetGenerator::new(FamilyProfile::w().scaled(0.001), 1).generate();
    /// let series = dataset.series(&dataset.drives()[0]);
    /// let features = set.extract(&series, 100).expect("history available");
    /// assert_eq!(features.len(), 13);
    /// ```
    ///
    /// nine normalized values, the raw *Reallocated Sectors Count*, and the
    /// 6-hour change rates of *Raw Read Error Rate*, *Hardware ECC
    /// Recovered* and *Reallocated Sectors Count (raw)*. Both *Current
    /// Pending Sector Count* features are rejected.
    #[must_use]
    pub fn critical13() -> Self {
        use Attribute as A;
        let mut features: Vec<FeatureSpec> = BASIC_ATTRIBUTES
            .iter()
            .filter(|a| !matches!(a, A::CurrentPendingSector | A::CurrentPendingSectorRaw))
            .map(|&a| FeatureSpec::Value(a))
            .collect();
        for attr in [
            A::RawReadErrorRate,
            A::HardwareEccRecovered,
            A::ReallocatedSectorsRaw,
        ] {
            features.push(FeatureSpec::ChangeRate {
                attr,
                interval_hours: 6,
            });
        }
        FeatureSet::new("critical-13", features)
    }

    /// The 19 features chosen by expertise in the authors' earlier work
    /// (MSST'13). The exact list is not published; we reconstruct it as the
    /// 12 basic features plus the 1-hour change rates of the seven
    /// attributes an operator would watch. What matters for Table III is
    /// that the set is larger, partially redundant, and keeps the
    /// uninformative *Current Pending Sector Count* features.
    #[must_use]
    pub fn expertise19() -> Self {
        use Attribute as A;
        let mut features: Vec<FeatureSpec> = BASIC_ATTRIBUTES
            .iter()
            .map(|&a| FeatureSpec::Value(a))
            .collect();
        for attr in [
            A::RawReadErrorRate,
            A::SpinUpTime,
            A::ReallocatedSectors,
            A::SeekErrorRate,
            A::HardwareEccRecovered,
            A::ReallocatedSectorsRaw,
            A::CurrentPendingSectorRaw,
        ] {
            features.push(FeatureSpec::ChangeRate {
                attr,
                interval_hours: 1,
            });
        }
        FeatureSet::new("expertise-19", features)
    }

    /// Set name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The features, in input-vector order.
    #[must_use]
    pub fn features(&self) -> &[FeatureSpec] {
        &self.features
    }

    /// Input-vector dimensionality.
    #[must_use]
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `false`; kept for API completeness ([`FeatureSet::new`] rejects
    /// empty sets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Hours of history a sample needs before every feature is defined.
    #[must_use]
    pub fn max_lookback_hours(&self) -> u32 {
        self.features
            .iter()
            .map(|f| f.lookback_hours())
            .max()
            .unwrap_or(0)
    }

    /// Extract the feature vector at sample `idx` of `series`, or `None`
    /// if any change rate lacks history there.
    #[must_use]
    pub fn extract(&self, series: &SmartSeries, idx: usize) -> Option<Vec<f64>> {
        self.features
            .iter()
            .map(|f| f.evaluate(series, idx))
            .collect()
    }

    /// Human-readable feature names, in input-vector order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.features.iter().map(ToString::to_string).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd_smart::{DatasetGenerator, FamilyProfile};

    #[test]
    fn named_sets_have_documented_sizes() {
        assert_eq!(FeatureSet::basic12().len(), 12);
        assert_eq!(FeatureSet::critical13().len(), 13);
        assert_eq!(FeatureSet::expertise19().len(), 19);
    }

    #[test]
    fn critical13_rejects_pending_sector_features() {
        let set = FeatureSet::critical13();
        for f in set.features() {
            if let FeatureSpec::Value(a) = f {
                assert!(!matches!(
                    a,
                    Attribute::CurrentPendingSector | Attribute::CurrentPendingSectorRaw
                ));
            }
        }
    }

    #[test]
    fn critical13_has_three_six_hour_change_rates() {
        let n = FeatureSet::critical13()
            .features()
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    FeatureSpec::ChangeRate {
                        interval_hours: 6,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(n, 3);
    }

    #[test]
    fn lookback_accounts_for_change_rates() {
        assert_eq!(FeatureSet::basic12().max_lookback_hours(), 0);
        assert_eq!(FeatureSet::critical13().max_lookback_hours(), 12);
    }

    #[test]
    fn extraction_dimensionality() {
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.001), 5).generate();
        let series = ds.series(&ds.drives()[0]);
        let set = FeatureSet::critical13();
        // Early samples lack change-rate history.
        assert_eq!(set.extract(&series, 0), None);
        let vec = set.extract(&series, 50).expect("history available");
        assert_eq!(vec.len(), 13);
        assert!(vec.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "duplicate feature")]
    fn rejects_duplicates() {
        let _ = FeatureSet::new(
            "dup",
            vec![
                FeatureSpec::Value(Attribute::SpinUpTime),
                FeatureSpec::Value(Attribute::SpinUpTime),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rejects_empty() {
        let _ = FeatureSet::new("empty", vec![]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            FeatureSpec::Value(Attribute::PowerOnHours).to_string(),
            "POH"
        );
        assert_eq!(
            FeatureSpec::ChangeRate {
                attr: Attribute::RawReadErrorRate,
                interval_hours: 6
            }
            .to_string(),
            "Δ6h(RRER)"
        );
    }

    #[test]
    fn names_match_len() {
        let set = FeatureSet::expertise19();
        assert_eq!(set.names().len(), set.len());
    }
}
