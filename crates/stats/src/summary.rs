//! Small descriptive-statistics helpers shared by the tests.

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices shorter than 2.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Median (average of the middle two for even lengths); `0.0` when empty.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_basic() {
        assert!((variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 4.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }
}
