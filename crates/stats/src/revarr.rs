//! Reverse-arrangements trend test.
//!
//! A non-parametric test for monotone trend in a time series: count the
//! *reverse arrangements* — pairs `i < j` with `x_i > x_j`. For an i.i.d.
//! series the count is approximately normal with known mean and variance;
//! a large negative z (few reverse arrangements) indicates an increasing
//! trend and a large positive z a decreasing one. Murray et al. applied it
//! to SMART series; the paper uses it during feature selection to find
//! attributes that *trend* as drives deteriorate.

/// Count the reverse arrangements of `series` (pairs `i < j` with
/// `x_i > x_j`). Quadratic; series here are at most a few hundred points.
#[must_use]
pub fn reverse_arrangements(series: &[f64]) -> u64 {
    let mut count = 0u64;
    for i in 0..series.len() {
        for j in (i + 1)..series.len() {
            if series[i] > series[j] {
                count += 1;
            }
        }
    }
    count
}

/// The reverse-arrangements z statistic of `series`.
///
/// Under the null (no trend), `A` has mean `n(n-1)/4` and variance
/// `n(2n+5)(n-1)/72`. Positive z means the series tends to *decrease*.
/// Returns `0.0` for series shorter than 10 points (the approximation is
/// poor and no meaningful trend can be asserted).
#[must_use]
pub fn reverse_arrangements_z(series: &[f64]) -> f64 {
    let n = series.len();
    if n < 10 {
        return 0.0;
    }
    let a = reverse_arrangements(series) as f64;
    let nf = n as f64;
    let mean = nf * (nf - 1.0) / 4.0;
    let var = nf * (2.0 * nf + 5.0) * (nf - 1.0) / 72.0;
    (a - mean) / var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_cases() {
        assert_eq!(reverse_arrangements(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(reverse_arrangements(&[3.0, 2.0, 1.0]), 3);
        assert_eq!(reverse_arrangements(&[2.0, 1.0, 3.0]), 1);
        assert_eq!(reverse_arrangements(&[]), 0);
    }

    #[test]
    fn increasing_series_gives_negative_z() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        assert!(reverse_arrangements_z(&xs) < -5.0);
    }

    #[test]
    fn decreasing_series_gives_positive_z() {
        let xs: Vec<f64> = (0..100).rev().map(f64::from).collect();
        assert!(reverse_arrangements_z(&xs) > 5.0);
    }

    #[test]
    fn trendless_pseudorandom_series_is_near_null() {
        // A fixed hash scramble: no trend, all values distinct.
        let xs: Vec<f64> = (0u64..100)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 29;
                z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (z >> 11) as f64
            })
            .collect();
        let z = reverse_arrangements_z(&xs);
        assert!(z.abs() < 2.5, "z = {z}");
    }

    #[test]
    fn short_series_returns_zero() {
        assert_eq!(reverse_arrangements_z(&[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn ties_count_as_no_arrangement() {
        assert_eq!(reverse_arrangements(&[2.0, 2.0, 2.0]), 0);
    }
}
