//! Non-parametric statistical tests and SMART feature selection.
//!
//! The paper (§IV-B) observes — like Murray et al. and Hughes et al. before
//! it — that SMART attributes are non-parametrically distributed, and
//! therefore selects model features with three non-parametric methods:
//! the Wilcoxon **rank-sum** test, the **reverse-arrangements** trend test,
//! and two-sample **z-scores**. Ten of the twelve basic attributes survive
//! (both *Current Pending Sector Count* variants are rejected), and three
//! 6-hour **change rates** are added, giving the 13 "critical" features
//! that outperform both the 12 basic features and the 19 expert-chosen
//! features of the authors' earlier work (Table III).
//!
//! This crate implements the three tests, change-rate computation, the
//! selection pipeline, and the three named feature sets.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod change_rate;
pub mod features;
pub mod ranksum;
pub mod revarr;
pub mod select;
pub mod summary;
pub mod zscore;

pub use change_rate::change_rate_at;
pub use features::{FeatureSet, FeatureSpec};
pub use ranksum::rank_sum_z;
pub use revarr::reverse_arrangements_z;
pub use select::{select_features, FeatureScore, SelectionConfig};
pub use summary::{mean, median, variance};
pub use zscore::two_sample_z;
