//! Property-style tests of the trace generator: invariants that must hold
//! for every seed and scale. Cases come from a deterministic seeded
//! stream so failures reproduce exactly (the assertion message names the
//! loop seed to replay).

use hdd_smart::{
    Attribute, AttributeKind, DatasetGenerator, FamilyProfile, Hour, BASIC_ATTRIBUTES,
};

/// A deterministic pseudo-random value in `[0, 1)` from a seed.
fn mix(seed: u64, i: u64) -> f64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Derive an integer parameter in `[lo, hi)` from the case seed.
fn pick(seed: u64, salt: u64, lo: u64, hi: u64) -> u64 {
    lo + (mix(seed, salt) * (hi - lo) as f64) as u64
}

fn family(seed: u64, salt: u64) -> FamilyProfile {
    if mix(seed, salt) < 0.5 {
        FamilyProfile::w()
    } else {
        FamilyProfile::q()
    }
}

/// Every generated value stays within its attribute's domain, for any
/// seed and family.
#[test]
fn values_in_domain() {
    for case in 0u64..16 {
        let seed = pick(case, 1, 0, 10_000);
        let ds = DatasetGenerator::new(family(case, 2).scaled(0.002), seed).generate();
        for spec in ds.drives().iter().take(12) {
            let series = ds.series(spec);
            for sample in series.samples() {
                for attr in BASIC_ATTRIBUTES {
                    let v = sample.value(attr);
                    match attr.kind() {
                        AttributeKind::Normalized => {
                            assert!((1.0..=253.0).contains(&v), "seed {seed} {attr}: {v}");
                            assert!(v.fract() == 0.0, "normalized values are integers");
                        }
                        AttributeKind::RawCounter => assert!(v >= 0.0, "seed {seed}"),
                    }
                }
            }
        }
    }
}

/// Window generation agrees with slicing the full series: random access
/// must be consistent.
#[test]
fn window_equals_slice() {
    for case in 0u64..16 {
        let seed = pick(case, 3, 0, 10_000);
        let start = pick(case, 4, 0, 1200) as u32;
        let len = pick(case, 5, 1, 144) as u32;
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.001), seed).generate();
        let spec = &ds.drives()[0];
        let full = ds.series(spec);
        let window = ds.series_in(spec, Hour(start)..Hour(start + len));
        assert_eq!(
            window.samples(),
            full.in_range(Hour(start)..Hour(start + len)),
            "seed {seed} start {start} len {len}"
        );
    }
}

/// Raw counters never decrease over a drive's recorded life.
#[test]
fn counters_are_monotone() {
    for case in 0u64..16 {
        let seed = pick(case, 6, 0, 10_000);
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.002), seed).generate();
        for spec in ds.failed_drives().take(6) {
            let series = ds.series(spec);
            let mut prev = 0.0;
            for (_, v) in series.attribute_series(Attribute::ReallocatedSectorsRaw) {
                assert!(
                    v + 1e-6 >= prev,
                    "seed {seed}: counter decreased: {prev} -> {v}"
                );
                prev = v;
            }
        }
    }
}

/// Failed drives' series end strictly before their failure hour and
/// start no earlier than twenty days before it.
#[test]
fn failed_windows_are_bounded() {
    for case in 0u64..16 {
        let seed = pick(case, 7, 0, 10_000);
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.004), seed).generate();
        for spec in ds.failed_drives() {
            let fail = spec.class.fail_hour().unwrap();
            let series = ds.series(spec);
            for s in series.samples() {
                assert!(s.hour < fail, "seed {seed}");
                assert!(fail.saturating_since(s.hour) <= 480, "seed {seed}");
            }
        }
    }
}

/// Subsampling keeps a subset: every kept drive exists in the parent,
/// with identical series.
#[test]
fn subsample_is_a_consistent_subset() {
    for case in 0u64..16 {
        let seed = pick(case, 8, 0, 5_000);
        let fraction = 0.1 + mix(case, 9) * 0.9;
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.004), seed).generate();
        let sub = ds.subsample(fraction, seed ^ 0xF00D);
        assert!(sub.drives().len() <= ds.drives().len(), "seed {seed}");
        for spec in sub.drives().iter().take(8) {
            let parent = ds.get(spec.id).expect("drive exists in parent");
            assert_eq!(spec, parent, "seed {seed}");
            assert_eq!(sub.series(spec), ds.series(parent), "seed {seed}");
        }
    }
}

/// The population composition always matches the profile counts.
#[test]
fn composition_matches_profile() {
    for case in 0u64..16 {
        let seed = pick(case, 10, 0, 10_000);
        let scale = 0.001 + mix(case, 11) * 0.019;
        let profile = FamilyProfile::w().scaled(scale);
        let (g, f) = (profile.n_good, profile.n_failed);
        let ds = DatasetGenerator::new(profile, seed).generate();
        assert_eq!(ds.good_drives().count() as u32, g, "seed {seed}");
        assert_eq!(ds.failed_drives().count() as u32, f, "seed {seed}");
    }
}
