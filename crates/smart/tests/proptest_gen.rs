//! Property-based tests of the trace generator: invariants that must hold
//! for every seed and scale.

use hdd_smart::{
    Attribute, AttributeKind, DatasetGenerator, FamilyProfile, Hour, BASIC_ATTRIBUTES,
};
use proptest::prelude::*;

fn any_family() -> impl Strategy<Value = FamilyProfile> {
    prop_oneof![Just(FamilyProfile::w()), Just(FamilyProfile::q())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated value stays within its attribute's domain, for any
    /// seed and family.
    #[test]
    fn values_in_domain(seed in 0u64..10_000, family in any_family()) {
        let ds = DatasetGenerator::new(family.scaled(0.002), seed).generate();
        for spec in ds.drives().iter().take(12) {
            let series = ds.series(spec);
            for sample in series.samples() {
                for attr in BASIC_ATTRIBUTES {
                    let v = sample.value(attr);
                    match attr.kind() {
                        AttributeKind::Normalized => {
                            prop_assert!((1.0..=253.0).contains(&v), "{attr}: {v}");
                            prop_assert!(v.fract() == 0.0, "normalized values are integers");
                        }
                        AttributeKind::RawCounter => prop_assert!(v >= 0.0),
                    }
                }
            }
        }
    }

    /// Window generation agrees with slicing the full series: random
    /// access must be consistent.
    #[test]
    fn window_equals_slice(seed in 0u64..10_000, start in 0u32..1200, len in 1u32..144) {
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.001), seed).generate();
        let spec = &ds.drives()[0];
        let full = ds.series(spec);
        let window = ds.series_in(spec, Hour(start)..Hour(start + len));
        prop_assert_eq!(window.samples(), full.in_range(Hour(start)..Hour(start + len)));
    }

    /// Raw counters never decrease over a drive's recorded life.
    #[test]
    fn counters_are_monotone(seed in 0u64..10_000) {
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.002), seed).generate();
        for spec in ds.failed_drives().take(6) {
            let series = ds.series(spec);
            let mut prev = 0.0;
            for (_, v) in series.attribute_series(Attribute::ReallocatedSectorsRaw) {
                prop_assert!(v + 1e-6 >= prev, "counter decreased: {prev} -> {v}");
                prev = v;
            }
        }
    }

    /// Failed drives' series end strictly before their failure hour and
    /// start no earlier than twenty days before it.
    #[test]
    fn failed_windows_are_bounded(seed in 0u64..10_000) {
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.004), seed).generate();
        for spec in ds.failed_drives() {
            let fail = spec.class.fail_hour().unwrap();
            let series = ds.series(spec);
            for s in series.samples() {
                prop_assert!(s.hour < fail);
                prop_assert!(fail.saturating_since(s.hour) <= 480);
            }
        }
    }

    /// Subsampling keeps a subset: every kept drive exists in the parent,
    /// with identical series.
    #[test]
    fn subsample_is_a_consistent_subset(
        seed in 0u64..5_000,
        fraction in 0.1f64..1.0,
    ) {
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.004), seed).generate();
        let sub = ds.subsample(fraction, seed ^ 0xF00D);
        prop_assert!(sub.drives().len() <= ds.drives().len());
        for spec in sub.drives().iter().take(8) {
            let parent = ds.get(spec.id).expect("drive exists in parent");
            prop_assert_eq!(spec, parent);
            prop_assert_eq!(sub.series(spec), ds.series(parent));
        }
    }

    /// The population composition always matches the profile counts.
    #[test]
    fn composition_matches_profile(seed in 0u64..10_000, scale in 0.001f64..0.02) {
        let profile = FamilyProfile::w().scaled(scale);
        let (g, f) = (profile.n_good, profile.n_failed);
        let ds = DatasetGenerator::new(profile, seed).generate();
        prop_assert_eq!(ds.good_drives().count() as u32, g);
        prop_assert_eq!(ds.failed_drives().count() as u32, f);
    }
}
