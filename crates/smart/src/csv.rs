//! CSV interchange for SMART series.
//!
//! Real deployments would feed the models from `smartctl` logs; this module
//! defines a simple flat format so synthesized traces can be exported for
//! external analysis, and externally collected traces (e.g. the public
//! Backblaze dataset reshaped to Table II's features) can be imported.
//!
//! Format: a header line followed by one row per sample —
//! `drive,failed,fail_hour,hour,<12 feature columns>`; `fail_hour` is empty
//! for good drives. Rows of one drive must be contiguous, but need *not*
//! be chronologically ordered: both readers sort each drive's samples by
//! hour and deduplicate repeated timestamps with a last-write-wins policy
//! (the later row in file order replaces the earlier one — re-transmitted
//! telemetry supersedes the original).
//!
//! Two readers share one parser:
//!
//! * [`read_series`] is strict — the first malformed row aborts the
//!   import with a [`CsvError::Parse`] naming the 1-based line.
//! * [`read_series_quarantined`] is the fleet-ingestion path — malformed
//!   rows, non-finite or out-of-range values, and undecodable drives are
//!   *quarantined* (skipped and counted in a [`QuarantineReport`])
//!   instead of aborting, up to a configurable ceiling on the quarantined
//!   fraction ([`IngestPolicy`]).

use crate::attr::{BASIC_ATTRIBUTES, NUM_ATTRIBUTES};
use crate::drive::{DriveClass, DriveId};
use crate::series::{SmartSample, SmartSeries};
use crate::time::Hour;
use std::io::{self, BufRead, Write};

/// Largest plausible feature value: normalized SMART attributes live in
/// 1–253 and raw counters are bounded by the observation horizon; a
/// reading beyond this is sensor garbage, not a measurement.
pub const MAX_FEATURE_VALUE: f64 = 1e9;

/// Error from CSV import.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a reason.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// Quarantined rows exceeded the [`IngestPolicy`] ceiling — the
    /// stream is too corrupt to trust what survived.
    QuarantineLimit {
        /// Rows quarantined.
        quarantined: usize,
        /// Data rows seen in total.
        total: usize,
        /// The configured ceiling that was exceeded.
        max_fraction: f64,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, reason } => write!(f, "line {line}: {reason}"),
            CsvError::QuarantineLimit {
                quarantined,
                total,
                max_fraction,
            } => write!(
                f,
                "quarantined {quarantined} of {total} rows, over the {:.1}% ceiling",
                max_fraction * 100.0
            ),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Limits for quarantine-based ingestion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestPolicy {
    /// Hard ceiling on the quarantined fraction of data rows; when more
    /// than this share of the stream is quarantined the whole import
    /// fails with [`CsvError::QuarantineLimit`].
    pub max_quarantine_fraction: f64,
}

impl Default for IngestPolicy {
    /// Tolerate up to 10% quarantined rows.
    fn default() -> Self {
        IngestPolicy {
            max_quarantine_fraction: 0.1,
        }
    }
}

/// What quarantine-based ingestion skipped, counted per category.
///
/// *Quarantined* rows (unparseable, unusable values, conflicting drive
/// metadata) are dropped from the import; duplicated and out-of-order
/// timestamps are *repaired* (dedup / sort), so they are counted here but
/// do not count against the quarantine ceiling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Data rows encountered (everything after the header, including
    /// rows that were later quarantined).
    pub rows_seen: usize,
    /// Rows that made it into a series.
    pub rows_ingested: usize,
    /// Rows that failed structural parsing (wrong field count, bad
    /// numbers, invalid UTF-8, truncated lines).
    pub parse_failures: usize,
    /// Rows carrying a NaN or infinite feature value.
    pub non_finite_rows: usize,
    /// Rows with a finite feature value outside `[0, MAX_FEATURE_VALUE]`.
    pub out_of_range_rows: usize,
    /// Rows whose class metadata contradicted earlier rows of the same
    /// drive (e.g. a good drive suddenly claiming a fail hour).
    pub conflicting_rows: usize,
    /// Extra rows repeating an already-seen timestamp; resolved
    /// last-write-wins.
    pub duplicate_timestamps: usize,
    /// Rows arriving with a timestamp older than their predecessor;
    /// repaired by sorting.
    pub out_of_order_rows: usize,
    /// Drives whose rows were *all* quarantined (no usable sample).
    pub drives_quarantined: usize,
}

impl QuarantineReport {
    /// Rows dropped from the import (repaired rows not included).
    #[must_use]
    pub fn quarantined_rows(&self) -> usize {
        self.parse_failures + self.non_finite_rows + self.out_of_range_rows + self.conflicting_rows
    }

    /// Quarantined share of the data rows seen (`0.0` for empty input).
    #[must_use]
    pub fn quarantined_fraction(&self) -> f64 {
        if self.rows_seen == 0 {
            0.0
        } else {
            self.quarantined_rows() as f64 / self.rows_seen as f64
        }
    }

    /// Whether anything at all was skipped or repaired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.quarantined_rows() == 0
            && self.duplicate_timestamps == 0
            && self.out_of_order_rows == 0
    }
}

impl std::fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ingested {}/{} rows ({} parse failures, {} non-finite, {} out-of-range, \
             {} conflicting; repaired {} duplicate and {} out-of-order timestamps; \
             {} drives quarantined)",
            self.rows_ingested,
            self.rows_seen,
            self.parse_failures,
            self.non_finite_rows,
            self.out_of_range_rows,
            self.conflicting_rows,
            self.duplicate_timestamps,
            self.out_of_order_rows,
            self.drives_quarantined
        )
    }
}

/// The outcome of quarantine-based ingestion.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvImport {
    /// Series assembled from the usable rows.
    pub series: Vec<SmartSeries>,
    /// What was skipped or repaired along the way.
    pub report: QuarantineReport,
}

/// Write the header line.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_header<W: Write>(mut w: W) -> io::Result<()> {
    write!(w, "drive,failed,fail_hour,hour")?;
    for attr in BASIC_ATTRIBUTES {
        write!(w, ",{}", attr.mnemonic())?;
    }
    writeln!(w)
}

/// Append every sample of `series` as CSV rows.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_series<W: Write>(mut w: W, series: &SmartSeries) -> io::Result<()> {
    let (failed, fail_hour) = match series.class {
        DriveClass::Good => (0, String::new()),
        DriveClass::Failed { fail_hour } => (1, fail_hour.0.to_string()),
    };
    for s in series.samples() {
        write!(
            w,
            "{},{},{},{}",
            series.drive.0, failed, fail_hour, s.hour.0
        )?;
        for v in s.values {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// One successfully parsed data row.
///
/// Public because the streaming service parses its feed line by line
/// with [`parse_data_line`] instead of going through the whole-file
/// readers.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvRow {
    /// The drive the row belongs to.
    pub drive: DriveId,
    /// The drive's class metadata as this row states it.
    pub class: DriveClass,
    /// The measurement itself.
    pub sample: SmartSample,
}

/// Why a structurally valid row is still unusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueFault {
    /// A feature value parsed but is NaN or infinite.
    NonFinite,
    /// A finite feature value outside `[0, MAX_FEATURE_VALUE]`.
    OutOfRange,
}

/// Whether a line is (a copy of) the CSV header — its first field is the
/// literal column name `drive` rather than a drive id. The streaming
/// tailer treats a mid-stream header as a rotation marker.
#[must_use]
pub fn is_header_line(line: &str) -> bool {
    matches!(line.split(',').next(), Some("drive"))
}

/// Parse one data line — the unit both the whole-file readers and the
/// streaming service are built on.
///
/// The outer `Ok` carries a [`ValueFault`] when the row parsed but holds
/// an unusable measurement.
///
/// # Errors
///
/// `Err(reason)` is a structural failure: wrong field count or a field
/// that does not parse.
pub fn parse_data_line(line: &str) -> Result<(CsvRow, Option<ValueFault>), String> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 4 + NUM_ATTRIBUTES {
        return Err(format!(
            "expected {} fields, got {}",
            4 + NUM_ATTRIBUTES,
            fields.len()
        ));
    }
    let drive = DriveId(fields[0].parse().map_err(|_| "bad drive id".to_string())?);
    let failed: u8 = fields[1]
        .parse()
        .map_err(|_| "bad failed flag".to_string())?;
    let class = if failed == 1 {
        DriveClass::Failed {
            fail_hour: Hour(fields[2].parse().map_err(|_| "bad fail hour".to_string())?),
        }
    } else {
        DriveClass::Good
    };
    let hour = Hour(fields[3].parse().map_err(|_| "bad hour".to_string())?);
    let mut values = [0.0f32; NUM_ATTRIBUTES];
    let mut fault = None;
    for (i, field) in fields[4..].iter().enumerate() {
        let v: f32 = field.parse().map_err(|_| "bad feature value".to_string())?;
        if !v.is_finite() {
            fault = Some(ValueFault::NonFinite);
        } else if fault.is_none() && !(0.0..=MAX_FEATURE_VALUE).contains(&f64::from(v)) {
            fault = Some(ValueFault::OutOfRange);
        }
        values[i] = v;
    }
    Ok((
        CsvRow {
            drive,
            class,
            sample: SmartSample { hour, values },
        },
        fault,
    ))
}

/// One contiguous run of rows belonging to a single drive.
struct Run {
    drive: DriveId,
    class: DriveClass,
    samples: Vec<SmartSample>,
}

impl Run {
    /// Sort by hour, resolve duplicate timestamps last-write-wins, and
    /// emit the series (or quarantine the drive when nothing survived).
    fn finish(self, report: &mut QuarantineReport, out: &mut Vec<SmartSeries>) {
        if self.samples.is_empty() {
            report.drives_quarantined += 1;
            return;
        }
        let mut samples = self.samples;
        // Count timestamp descents before repairing the order (each
        // adjacent inversion is one out-of-order arrival).
        report.out_of_order_rows += samples.windows(2).filter(|w| w[1].hour < w[0].hour).count();
        // Stable sort keeps file order within equal timestamps, so
        // "keep the last of each group" is exactly last-write-wins.
        samples.sort_by_key(|s| s.hour);
        let mut deduped: Vec<SmartSample> = Vec::with_capacity(samples.len());
        for s in samples {
            match deduped.last_mut() {
                Some(prev) if prev.hour == s.hour => {
                    *prev = s;
                    report.duplicate_timestamps += 1;
                }
                _ => deduped.push(s),
            }
        }
        report.rows_ingested += deduped.len();
        out.push(SmartSeries::new(self.drive, self.class, deduped));
    }
}

/// How the shared reader reacts to bad rows.
enum Mode {
    /// Abort on the first problem.
    Strict,
    /// Skip, count, keep going.
    Quarantine,
}

fn read_series_impl<R: BufRead>(
    r: R,
    mode: &Mode,
) -> Result<(Vec<SmartSeries>, QuarantineReport), CsvError> {
    let mut out: Vec<SmartSeries> = Vec::new();
    let mut report = QuarantineReport::default();
    let mut current: Option<Run> = None;
    let mut saw_header = false;

    for (idx, raw) in r.split(b'\n').enumerate() {
        let raw = raw?;
        let lineno = idx + 1;
        if idx == 0 {
            saw_header = true;
            continue; // header
        }
        // Tolerate CRLF line endings and skip blank lines.
        let raw = match raw.last() {
            Some(b'\r') => &raw[..raw.len() - 1],
            _ => &raw[..],
        };
        if raw.is_empty() {
            continue;
        }
        report.rows_seen += 1;
        let structural = std::str::from_utf8(raw)
            .map_err(|_| "invalid UTF-8".to_string())
            .and_then(parse_data_line);
        let (row, fault) = match structural {
            Ok(parsed) => parsed,
            Err(reason) => match mode {
                Mode::Strict => {
                    return Err(CsvError::Parse {
                        line: lineno,
                        reason,
                    })
                }
                Mode::Quarantine => {
                    report.parse_failures += 1;
                    continue;
                }
            },
        };
        if let Some(fault) = fault {
            let reason = match fault {
                ValueFault::NonFinite => "non-finite feature value",
                ValueFault::OutOfRange => "feature value out of range",
            };
            match mode {
                Mode::Strict => {
                    return Err(CsvError::Parse {
                        line: lineno,
                        reason: reason.to_string(),
                    })
                }
                Mode::Quarantine => {
                    match fault {
                        ValueFault::NonFinite => report.non_finite_rows += 1,
                        ValueFault::OutOfRange => report.out_of_range_rows += 1,
                    }
                    // Keep the drive's run alive: the row still names the
                    // drive, only its measurement is unusable.
                    if current.as_ref().is_none_or(|run| run.drive != row.drive) {
                        if let Some(run) = current.take() {
                            run.finish(&mut report, &mut out);
                        }
                        current = Some(Run {
                            drive: row.drive,
                            class: row.class,
                            samples: Vec::new(),
                        });
                    }
                    continue;
                }
            }
        }
        match &mut current {
            Some(run) if run.drive == row.drive => {
                if run.class != row.class {
                    match mode {
                        Mode::Strict => {
                            return Err(CsvError::Parse {
                                line: lineno,
                                reason: "row contradicts the drive's class metadata".to_string(),
                            })
                        }
                        Mode::Quarantine => {
                            report.conflicting_rows += 1;
                            continue;
                        }
                    }
                }
                run.samples.push(row.sample);
            }
            _ => {
                if let Some(run) = current.take() {
                    run.finish(&mut report, &mut out);
                }
                current = Some(Run {
                    drive: row.drive,
                    class: row.class,
                    samples: vec![row.sample],
                });
            }
        }
    }
    if !saw_header {
        return Err(CsvError::Parse {
            line: 1,
            reason: "empty input: missing header".to_string(),
        });
    }
    if let Some(run) = current.take() {
        run.finish(&mut report, &mut out);
    }
    Ok((out, report))
}

/// Read every series from a CSV stream written by [`write_header`] +
/// [`write_series`]. Rows of one drive must be contiguous; within a
/// drive, rows are sorted by hour and duplicate timestamps are resolved
/// last-write-wins.
///
/// This is the strict reader: the first malformed row (bad structure,
/// non-finite or out-of-range value, conflicting drive metadata) aborts
/// the import. Fleet-scale ingestion should prefer
/// [`read_series_quarantined`].
///
/// # Errors
///
/// Returns [`CsvError::Parse`] on malformed rows (with the 1-based line
/// number) and [`CsvError::Io`] on read failures.
pub fn read_series<R: BufRead>(r: R) -> Result<Vec<SmartSeries>, CsvError> {
    read_series_impl(r, &Mode::Strict).map(|(series, _)| series)
}

/// Read series with quarantine-based fault tolerance: malformed records
/// and undecodable drives are skipped and counted instead of aborting
/// the run, duplicate and out-of-order timestamps are repaired, and the
/// [`QuarantineReport`] says exactly what happened.
///
/// # Errors
///
/// Returns [`CsvError::QuarantineLimit`] when the quarantined fraction
/// exceeds `policy.max_quarantine_fraction` (the stream is too corrupt
/// to trust), [`CsvError::Parse`] only for a missing header, and
/// [`CsvError::Io`] on read failures.
pub fn read_series_quarantined<R: BufRead>(
    r: R,
    policy: &IngestPolicy,
) -> Result<CsvImport, CsvError> {
    let (series, report) = read_series_impl(r, &Mode::Quarantine)?;
    if report.quarantined_fraction() > policy.max_quarantine_fraction {
        return Err(CsvError::QuarantineLimit {
            quarantined: report.quarantined_rows(),
            total: report.rows_seen,
            max_fraction: policy.max_quarantine_fraction,
        });
    }
    Ok(CsvImport { series, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::FamilyProfile;
    use crate::gen::DatasetGenerator;

    #[test]
    fn round_trip_preserves_series() {
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.001), 21).generate();
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        let mut originals = Vec::new();
        for spec in ds.drives().iter().take(4) {
            let series = ds.series(spec);
            write_series(&mut buf, &series).unwrap();
            originals.push(series);
        }
        let parsed = read_series(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), originals.len());
        for (a, b) in parsed.iter().zip(&originals) {
            assert_eq!(a.drive, b.drive);
            assert_eq!(a.class, b.class);
            assert_eq!(a.len(), b.len());
            assert_eq!(a.samples()[0].values, b.samples()[0].values);
        }
    }

    /// A well-formed row for drive `d` at hour `h` with features
    /// `offset+1 ..= offset+12`.
    fn row_with(d: u32, h: u32, offset: u32) -> String {
        let mut out = format!("{d},0,,{h}");
        for i in 0..NUM_ATTRIBUTES as u32 {
            out.push_str(&format!(",{}", offset + i + 1));
        }
        out
    }

    /// A well-formed row for drive `d` at hour `h`.
    fn row(d: u32, h: u32) -> String {
        row_with(d, h, 0)
    }

    fn doc(rows: &[String]) -> String {
        let mut out = String::from("header\n");
        for r in rows {
            out.push_str(r);
            out.push('\n');
        }
        out
    }

    #[test]
    fn rejects_malformed_rows() {
        let input = "header\n1,0,,5,1,2,3\n";
        let err = read_series(input.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_numbers() {
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        let mut row = String::from("x,0,,5");
        for _ in 0..NUM_ATTRIBUTES {
            row.push_str(",1.0");
        }
        buf.extend_from_slice(row.as_bytes());
        buf.push(b'\n');
        assert!(read_series(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_input_gives_no_series() {
        assert!(read_series("header\n".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn zero_byte_input_is_a_parse_error() {
        let err = read_series("".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");
        let err = read_series_quarantined("".as_bytes(), &IngestPolicy::default()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn truncated_final_line_is_a_parse_error() {
        let full = doc(&[row(1, 0), row(1, 1)]);
        let truncated = &full[..full.len() - 20];
        let err = read_series(truncated.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn crlf_line_endings_are_tolerated() {
        let input = doc(&[row(1, 0), row(1, 1)]).replace('\n', "\r\n");
        let series = read_series(input.as_bytes()).unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].len(), 2);
    }

    #[test]
    fn extra_and_missing_columns_name_the_line() {
        let extra = doc(&[row(1, 0), format!("{},99", row(1, 1))]);
        let err = read_series(extra.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 3, .. }), "{err}");

        let missing = doc(&[row(1, 0), row(1, 1).rsplit_once(',').unwrap().0.to_string()]);
        let err = read_series(missing.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn non_utf8_bytes_are_a_parse_error_not_a_panic() {
        let mut buf = doc(&[row(1, 0)]).into_bytes();
        buf.extend_from_slice(b"1,0,,1,\xff\xfe,2,3,4,5,6,7,8,9,10,11\n");
        let err = read_series(buf.as_slice()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 3, .. }), "{err}");
        match err {
            CsvError::Parse { reason, .. } => assert!(reason.contains("UTF-8"), "{reason}"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn strict_reader_sorts_and_dedups() {
        // Out of order + a duplicated hour; last write wins.
        let dup = row_with(1, 1, 76); // distinguishable values 77..=88
        let input = doc(&[row(1, 2), row(1, 1), dup]);
        let series = read_series(input.as_bytes()).unwrap();
        assert_eq!(series.len(), 1);
        let hours: Vec<u32> = series[0].samples().iter().map(|s| s.hour.0).collect();
        assert_eq!(hours, vec![1, 2]);
        // The later file row (with 77) replaced the earlier hour-1 row.
        assert!(series[0].samples()[0].values.contains(&77.0));
    }

    #[test]
    fn strict_reader_rejects_nan_and_out_of_range() {
        let nan = doc(&[row(1, 0).replace(",3,", ",NaN,")]);
        let err = read_series(nan.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");

        let huge = doc(&[row(1, 0).replace(",3,", ",9e12,")]);
        let err = read_series(huge.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn quarantine_skips_and_counts_instead_of_aborting() {
        let input = doc(&[
            row(1, 0),
            "garbage!!".to_string(),
            row(1, 1).replace(",3,", ",NaN,"),
            row(1, 2).replace(",3,", ",-5,"),
            row(1, 3),
            row(1, 3), // duplicate timestamp
            row(1, 2), // out of order
            row(2, 0),
        ]);
        let policy = IngestPolicy {
            max_quarantine_fraction: 0.9,
        };
        let import = read_series_quarantined(input.as_bytes(), &policy).unwrap();
        let r = import.report;
        assert_eq!(r.rows_seen, 8);
        assert_eq!(r.parse_failures, 1);
        assert_eq!(r.non_finite_rows, 1);
        assert_eq!(r.out_of_range_rows, 1);
        assert_eq!(r.duplicate_timestamps, 1);
        assert_eq!(r.out_of_order_rows, 1);
        assert_eq!(r.rows_ingested, 4, "hours 0, 2, 3 for drive 1 + drive 2");
        assert_eq!(import.series.len(), 2);
        assert_eq!(import.series[0].len(), 3);
    }

    #[test]
    fn quarantine_ceiling_is_enforced() {
        let input = doc(&[row(1, 0), "junk".to_string(), "junk".to_string()]);
        let strict_policy = IngestPolicy {
            max_quarantine_fraction: 0.5,
        };
        let err = read_series_quarantined(input.as_bytes(), &strict_policy).unwrap_err();
        assert!(
            matches!(
                err,
                CsvError::QuarantineLimit {
                    quarantined: 2,
                    total: 3,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn fully_corrupt_drive_is_quarantined() {
        // Drive 1's only row holds NaN; drive 2 is fine.
        let input = doc(&[row(1, 0).replace(",3,", ",NaN,"), row(2, 0)]);
        let policy = IngestPolicy {
            max_quarantine_fraction: 0.9,
        };
        let import = read_series_quarantined(input.as_bytes(), &policy).unwrap();
        assert_eq!(import.report.drives_quarantined, 1);
        assert_eq!(import.series.len(), 1);
        assert_eq!(import.series[0].drive, DriveId(2));
    }

    #[test]
    fn conflicting_class_metadata_is_quarantined() {
        let mut failed_row = row(1, 1);
        failed_row = failed_row.replacen(",0,,", ",1,500,", 1);
        let input = doc(&[row(1, 0), failed_row, row(1, 2)]);
        let policy = IngestPolicy {
            max_quarantine_fraction: 0.9,
        };
        let import = read_series_quarantined(input.as_bytes(), &policy).unwrap();
        assert_eq!(import.report.conflicting_rows, 1);
        assert_eq!(import.series.len(), 1);
        assert_eq!(import.series[0].len(), 2);
        assert_eq!(import.series[0].class, DriveClass::Good);
    }

    #[test]
    fn parse_data_line_is_usable_standalone() {
        let (parsed, fault) = parse_data_line(&row(3, 7)).unwrap();
        assert_eq!(parsed.drive, DriveId(3));
        assert_eq!(parsed.class, DriveClass::Good);
        assert_eq!(parsed.sample.hour, Hour(7));
        assert_eq!(parsed.sample.values[0], 1.0);
        assert!(fault.is_none());

        let (_, fault) = parse_data_line(&row(3, 7).replace(",3,", ",NaN,")).unwrap();
        assert_eq!(fault, Some(ValueFault::NonFinite));
        let (_, fault) = parse_data_line(&row(3, 7).replace(",3,", ",-2,")).unwrap();
        assert_eq!(fault, Some(ValueFault::OutOfRange));
        assert!(parse_data_line("1,2,3").is_err());
    }

    #[test]
    fn header_lines_are_recognized() {
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        let header = String::from_utf8(buf).unwrap();
        assert!(is_header_line(header.trim_end()));
        assert!(!is_header_line(&row(1, 0)));
        assert!(!is_header_line(""));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::Parse {
            line: 3,
            reason: "bad hour".to_string(),
        };
        assert_eq!(e.to_string(), "line 3: bad hour");
        let e = CsvError::QuarantineLimit {
            quarantined: 10,
            total: 20,
            max_fraction: 0.25,
        };
        assert!(e.to_string().contains("10 of 20"), "{e}");
        let r = QuarantineReport {
            rows_seen: 5,
            rows_ingested: 4,
            parse_failures: 1,
            ..QuarantineReport::default()
        };
        assert!(r.to_string().contains("4/5"), "{r}");
        assert!(!r.is_clean());
        assert!((r.quarantined_fraction() - 0.2).abs() < 1e-12);
    }
}
