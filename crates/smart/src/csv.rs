//! CSV interchange for SMART series.
//!
//! Real deployments would feed the models from `smartctl` logs; this module
//! defines a simple flat format so synthesized traces can be exported for
//! external analysis, and externally collected traces (e.g. the public
//! Backblaze dataset reshaped to Table II's features) can be imported.
//!
//! Format: a header line followed by one row per sample —
//! `drive,failed,fail_hour,hour,<12 feature columns>`; `fail_hour` is empty
//! for good drives.

use crate::attr::{BASIC_ATTRIBUTES, NUM_ATTRIBUTES};
use crate::drive::{DriveClass, DriveId};
use crate::series::{SmartSample, SmartSeries};
use crate::time::Hour;
use std::io::{self, BufRead, Write};

/// Error from CSV import.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a reason.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Write the header line.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_header<W: Write>(mut w: W) -> io::Result<()> {
    write!(w, "drive,failed,fail_hour,hour")?;
    for attr in BASIC_ATTRIBUTES {
        write!(w, ",{}", attr.mnemonic())?;
    }
    writeln!(w)
}

/// Append every sample of `series` as CSV rows.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_series<W: Write>(mut w: W, series: &SmartSeries) -> io::Result<()> {
    let (failed, fail_hour) = match series.class {
        DriveClass::Good => (0, String::new()),
        DriveClass::Failed { fail_hour } => (1, fail_hour.0.to_string()),
    };
    for s in series.samples() {
        write!(
            w,
            "{},{},{},{}",
            series.drive.0, failed, fail_hour, s.hour.0
        )?;
        for v in s.values {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read every series from a CSV stream written by [`write_header`] +
/// [`write_series`]. Rows of one drive must be contiguous and
/// chronologically ordered.
///
/// # Errors
///
/// Returns [`CsvError::Parse`] on malformed rows and [`CsvError::Io`] on
/// read failures.
pub fn read_series<R: BufRead>(r: R) -> Result<Vec<SmartSeries>, CsvError> {
    let mut out: Vec<SmartSeries> = Vec::new();
    let mut current: Option<(DriveId, DriveClass, Vec<SmartSample>)> = None;

    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if idx == 0 || line.is_empty() {
            continue; // header / trailing blank
        }
        let parse = |reason: &str| CsvError::Parse {
            line: lineno,
            reason: reason.to_string(),
        };
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 + NUM_ATTRIBUTES {
            return Err(parse(&format!(
                "expected {} fields, got {}",
                4 + NUM_ATTRIBUTES,
                fields.len()
            )));
        }
        let drive = DriveId(fields[0].parse().map_err(|_| parse("bad drive id"))?);
        let failed: u8 = fields[1].parse().map_err(|_| parse("bad failed flag"))?;
        let class = if failed == 1 {
            DriveClass::Failed {
                fail_hour: Hour(fields[2].parse().map_err(|_| parse("bad fail hour"))?),
            }
        } else {
            DriveClass::Good
        };
        let hour = Hour(fields[3].parse().map_err(|_| parse("bad hour"))?);
        let mut values = [0.0f32; NUM_ATTRIBUTES];
        for (i, field) in fields[4..].iter().enumerate() {
            values[i] = field.parse().map_err(|_| parse("bad feature value"))?;
        }
        let sample = SmartSample { hour, values };

        match &mut current {
            Some((id, _, samples)) if *id == drive => samples.push(sample),
            _ => {
                if let Some((id, class, samples)) = current.take() {
                    out.push(SmartSeries::new(id, class, samples));
                }
                current = Some((drive, class, vec![sample]));
            }
        }
    }
    if let Some((id, class, samples)) = current {
        out.push(SmartSeries::new(id, class, samples));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::FamilyProfile;
    use crate::gen::DatasetGenerator;

    #[test]
    fn round_trip_preserves_series() {
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.001), 21).generate();
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        let mut originals = Vec::new();
        for spec in ds.drives().iter().take(4) {
            let series = ds.series(spec);
            write_series(&mut buf, &series).unwrap();
            originals.push(series);
        }
        let parsed = read_series(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), originals.len());
        for (a, b) in parsed.iter().zip(&originals) {
            assert_eq!(a.drive, b.drive);
            assert_eq!(a.class, b.class);
            assert_eq!(a.len(), b.len());
            assert_eq!(a.samples()[0].values, b.samples()[0].values);
        }
    }

    #[test]
    fn rejects_malformed_rows() {
        let input = "header\n1,0,,5,1,2,3\n";
        let err = read_series(input.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_numbers() {
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        let mut row = String::from("x,0,,5");
        for _ in 0..NUM_ATTRIBUTES {
            row.push_str(",1.0");
        }
        buf.extend_from_slice(row.as_bytes());
        buf.push(b'\n');
        assert!(read_series(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_input_gives_no_series() {
        assert!(read_series("header\n".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::Parse {
            line: 3,
            reason: "bad hour".to_string(),
        };
        assert_eq!(e.to_string(), "line 3: bad hour");
    }
}
