//! The fleet-level dataset: drive specs plus on-demand series synthesis.

use crate::drive::{DriveId, DriveSpec};
use crate::family::FamilyProfile;
use crate::gen::{generate_series, generate_series_in, recorded_range};
use crate::rng::DeterministicRng;
use crate::series::SmartSeries;
use crate::time::Hour;
use std::collections::BTreeMap;

/// A fleet of drives with deterministic, lazily synthesized SMART series.
///
/// Construct with [`DatasetGenerator::generate`](crate::DatasetGenerator).
/// Series are synthesized on access — a `Dataset` holding the paper's full
/// 23k-drive family "W" occupies a few megabytes, not gigabytes.
#[derive(Debug, Clone)]
pub struct Dataset {
    profile: FamilyProfile,
    seed: u64,
    specs: Vec<DriveSpec>,
    by_id: BTreeMap<DriveId, usize>,
}

/// Composition summary printed as the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of good drives.
    pub good_drives: u32,
    /// Number of failed drives.
    pub failed_drives: u32,
    /// Total recorded samples of good drives.
    pub good_samples: u64,
    /// Total recorded samples of failed drives.
    pub failed_samples: u64,
}

impl Dataset {
    /// Assemble a dataset. Prefer
    /// [`DatasetGenerator::generate`](crate::DatasetGenerator::generate).
    #[must_use]
    pub fn new(profile: FamilyProfile, seed: u64, specs: Vec<DriveSpec>) -> Self {
        let by_id = specs.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        Dataset {
            profile,
            seed,
            specs,
            by_id,
        }
    }

    /// The family profile this fleet was drawn from.
    #[must_use]
    pub fn profile(&self) -> &FamilyProfile {
        &self.profile
    }

    /// The dataset seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All drives (good first, then failed, in id order).
    #[must_use]
    pub fn drives(&self) -> &[DriveSpec] {
        &self.specs
    }

    /// Iterator over good drives.
    pub fn good_drives(&self) -> impl Iterator<Item = &DriveSpec> {
        self.specs.iter().filter(|s| !s.is_failed())
    }

    /// Iterator over failed drives.
    pub fn failed_drives(&self) -> impl Iterator<Item = &DriveSpec> {
        self.specs.iter().filter(|s| s.is_failed())
    }

    /// Look up a drive by id.
    #[must_use]
    pub fn get(&self, id: DriveId) -> Option<&DriveSpec> {
        self.by_id.get(&id).map(|&i| &self.specs[i])
    }

    /// Synthesize the full recorded series of `spec`.
    #[must_use]
    pub fn series(&self, spec: &DriveSpec) -> SmartSeries {
        generate_series(&self.profile, self.seed, spec)
    }

    /// Synthesize `spec`'s series restricted to `range`.
    #[must_use]
    pub fn series_in(&self, spec: &DriveSpec, range: std::ops::Range<Hour>) -> SmartSeries {
        generate_series_in(&self.profile, self.seed, spec, range)
    }

    /// The hour range over which `spec` is recorded.
    #[must_use]
    pub fn recorded_range(&self, spec: &DriveSpec) -> std::ops::Range<Hour> {
        recorded_range(spec)
    }

    /// A random subset keeping `fraction` of good and failed drives each
    /// (the paper's Table V datasets A–D keep 10/25/50/75%).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn subsample(&self, fraction: f64, seed: u64) -> Dataset {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "subsample fraction must be in (0, 1]"
        );
        let rng = DeterministicRng::new(seed ^ 0xD5_A7_5A_7D);
        let keep = |spec: &&DriveSpec| rng.uniform(u64::from(spec.id.0), 77) < fraction;
        let specs: Vec<DriveSpec> = self
            .good_drives()
            .filter(keep)
            .chain(self.failed_drives().filter(keep))
            .cloned()
            .collect();
        let mut profile = self.profile.clone();
        profile.n_good = specs.iter().filter(|s| !s.is_failed()).count() as u32;
        profile.n_failed = specs.iter().filter(|s| s.is_failed()).count() as u32;
        Dataset::new(profile, self.seed, specs)
    }

    /// Count drives and recorded samples (synthesizes every series; cost is
    /// proportional to the fleet's total sample count).
    #[must_use]
    pub fn stats(&self) -> DatasetStats {
        let mut stats = DatasetStats {
            good_drives: 0,
            failed_drives: 0,
            good_samples: 0,
            failed_samples: 0,
        };
        for spec in &self.specs {
            let n = self.series(spec).len() as u64;
            if spec.is_failed() {
                stats.failed_drives += 1;
                stats.failed_samples += n;
            } else {
                stats.good_drives += 1;
                stats.good_samples += n;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::DatasetGenerator;

    fn tiny() -> Dataset {
        DatasetGenerator::new(FamilyProfile::w().scaled(0.004), 11).generate()
    }

    #[test]
    fn lookup_by_id() {
        let ds = tiny();
        let spec = &ds.drives()[3];
        assert_eq!(ds.get(spec.id), Some(spec));
        assert_eq!(ds.get(DriveId(u32::MAX)), None);
    }

    #[test]
    fn index_rebuild_preserves_spec_order() {
        // Regression for the BTreeMap migration: the id index is derived
        // state; rebuilding a dataset from the same specs must reproduce
        // the same drive order and the same lookups regardless of any
        // map-internal ordering.
        let ds = tiny();
        let rebuilt = Dataset::new(ds.profile().clone(), 11, ds.drives().to_vec());
        let ids_a: Vec<DriveId> = ds.drives().iter().map(|s| s.id).collect();
        let ids_b: Vec<DriveId> = rebuilt.drives().iter().map(|s| s.id).collect();
        assert_eq!(ids_a, ids_b);
        for spec in ds.drives() {
            assert_eq!(rebuilt.get(spec.id), Some(spec));
        }
    }

    #[test]
    fn good_then_failed_partition() {
        let ds = tiny();
        let n_good = ds.good_drives().count();
        let n_failed = ds.failed_drives().count();
        assert_eq!(n_good + n_failed, ds.drives().len());
        assert!(n_failed >= 1);
    }

    #[test]
    fn subsample_keeps_roughly_fraction() {
        let ds = DatasetGenerator::new(FamilyProfile::w().scaled(0.05), 12).generate();
        let sub = ds.subsample(0.5, 1);
        let total = ds.drives().len() as f64;
        let kept = sub.drives().len() as f64;
        assert!((kept / total - 0.5).abs() < 0.1, "kept {kept} of {total}");
        // Profile counts updated.
        assert_eq!(sub.profile().n_good as usize, sub.good_drives().count());
    }

    #[test]
    fn subsample_is_deterministic() {
        let ds = tiny();
        let a = ds.subsample(0.5, 9);
        let b = ds.subsample(0.5, 9);
        assert_eq!(
            a.drives().iter().map(|s| s.id).collect::<Vec<_>>(),
            b.drives().iter().map(|s| s.id).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn subsample_rejects_zero() {
        let _ = tiny().subsample(0.0, 1);
    }

    #[test]
    fn stats_counts_match() {
        let ds = tiny();
        let stats = ds.stats();
        assert_eq!(stats.good_drives, ds.profile().n_good);
        assert_eq!(stats.failed_drives, ds.profile().n_failed);
        assert!(stats.good_samples > u64::from(stats.good_drives) * 1200);
        assert!(stats.failed_samples > 0);
    }

    #[test]
    fn series_in_respects_recorded_bounds() {
        let ds = tiny();
        let failed = ds.failed_drives().next().unwrap();
        let range = ds.recorded_range(failed);
        let s = ds.series_in(failed, Hour(0)..Hour(100_000));
        assert!(s.samples().iter().all(|x| range.contains(&x.hour)));
    }
}
