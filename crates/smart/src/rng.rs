//! Small deterministic PRNG utilities for trace generation.
//!
//! Trace generation must be (a) deterministic given the dataset seed, and
//! (b) *random-access*: a drive's series for hours 500..600 must be
//! identical whether or not hours 0..500 were generated. We therefore derive
//! every random quantity from a counter-based hash (SplitMix64) of
//! `(dataset seed, drive id, stream, hour)` instead of a sequential stream.

/// A counter-based deterministic random source.
///
/// `DeterministicRng` is a keyed SplitMix64 finalizer: each draw hashes the
/// key together with the caller-supplied coordinates, so values are stable
/// under any generation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterministicRng {
    key: u64,
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DeterministicRng {
    /// Create a source keyed by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DeterministicRng {
            key: splitmix64(seed),
        }
    }

    /// Derive an independent sub-source (e.g. one per drive).
    #[must_use]
    pub fn derive(&self, stream: u64) -> DeterministicRng {
        DeterministicRng {
            key: splitmix64(self.key ^ splitmix64(stream.wrapping_mul(0xA24B_AED4_963E_E407))),
        }
    }

    /// A uniform `u64` at coordinate `(a, b)`.
    #[must_use]
    pub fn bits(&self, a: u64, b: u64) -> u64 {
        splitmix64(self.key ^ splitmix64(a).rotate_left(17) ^ splitmix64(b ^ 0x5851_F42D_4C95_7F2D))
    }

    /// A uniform `f64` in `[0, 1)` at coordinate `(a, b)`.
    #[must_use]
    pub fn uniform(&self, a: u64, b: u64) -> f64 {
        // 53 mantissa bits of the hash, scaled to [0, 1).
        (self.bits(a, b) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A standard normal draw at coordinate `(a, b)` via Box–Muller.
    #[must_use]
    pub fn gaussian(&self, a: u64, b: u64) -> f64 {
        let u1 = self.uniform(a, b ^ 0x9E37_79B9).max(f64::MIN_POSITIVE);
        let u2 = self.uniform(a ^ 0x85EB_CA6B, b);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A uniform draw in `[lo, hi)` at coordinate `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn range(&self, lo: f64, hi: f64, a: u64, b: u64) -> f64 {
        assert!(lo <= hi, "range requires lo <= hi");
        lo + (hi - lo) * self.uniform(a, b)
    }

    /// Bernoulli draw with probability `p` at coordinate `(a, b)`.
    #[must_use]
    pub fn chance(&self, p: f64, a: u64, b: u64) -> bool {
        self.uniform(a, b) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = DeterministicRng::new(7);
        let b = DeterministicRng::new(7);
        for i in 0..100 {
            assert_eq!(a.bits(i, i * 3), b.bits(i, i * 3));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DeterministicRng::new(1);
        let b = DeterministicRng::new(2);
        let same = (0..64).filter(|&i| a.bits(i, 0) == b.bits(i, 0)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_gives_independent_streams() {
        let root = DeterministicRng::new(9);
        let s1 = root.derive(1);
        let s2 = root.derive(2);
        assert_ne!(s1.bits(0, 0), s2.bits(0, 0));
        // Deriving the same stream twice is stable.
        assert_eq!(root.derive(1).bits(5, 5), s1.bits(5, 5));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let rng = DeterministicRng::new(3);
        for i in 0..10_000 {
            let u = rng.uniform(i, 1);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_near_half() {
        let rng = DeterministicRng::new(11);
        let n = 50_000;
        let mean = (0..n).map(|i| rng.uniform(i, 0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let rng = DeterministicRng::new(13);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|i| rng.gaussian(i, 7)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_frequency() {
        let rng = DeterministicRng::new(17);
        let n = 100_000;
        let hits = (0..n).filter(|&i| rng.chance(0.25, i, 3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn range_bounds() {
        let rng = DeterministicRng::new(19);
        for i in 0..1000 {
            let v = rng.range(-3.0, 4.5, i, 0);
            assert!((-3.0..4.5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn range_panics_when_reversed() {
        let _ = DeterministicRng::new(1).range(2.0, 1.0, 0, 0);
    }
}
