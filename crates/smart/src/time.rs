//! Simulation time: hours since the start of the observation period.

use std::fmt;
use std::ops::{Add, Sub};

/// Hours in a day.
pub const HOURS_PER_DAY: u32 = 24;
/// Hours in a week.
pub const HOURS_PER_WEEK: u32 = 7 * HOURS_PER_DAY;
/// Length of the observation period, in weeks (the paper collected good
/// samples for 56 days).
pub const OBSERVATION_WEEKS: u32 = 8;
/// Total observation horizon in hours.
pub const OBSERVATION_HOURS: u32 = OBSERVATION_WEEKS * HOURS_PER_WEEK;
/// Failed drives are recorded for twenty days before the failure event.
pub const PRE_FAILURE_HOURS: u32 = 20 * HOURS_PER_DAY;

/// An hour offset from the start of the observation period.
///
/// `Hour` is the only notion of time in the simulator: good drives are
/// sampled once per hour over [`OBSERVATION_HOURS`]; a failed drive's series
/// covers the [`PRE_FAILURE_HOURS`] leading up to its failure hour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hour(pub u32);

impl Hour {
    /// The zero-based week index this hour falls in.
    #[must_use]
    pub fn week(self) -> u32 {
        self.0 / HOURS_PER_WEEK
    }

    /// The zero-based day index this hour falls in.
    #[must_use]
    pub fn day(self) -> u32 {
        self.0 / HOURS_PER_DAY
    }

    /// Hours elapsed since `earlier`, or zero if `earlier` is later.
    #[must_use]
    pub fn saturating_since(self, earlier: Hour) -> u32 {
        self.0.saturating_sub(earlier.0)
    }

    /// The inclusive-exclusive hour range of the given zero-based week.
    #[must_use]
    pub fn week_range(week: u32) -> std::ops::Range<Hour> {
        Hour(week * HOURS_PER_WEEK)..Hour((week + 1) * HOURS_PER_WEEK)
    }
}

impl fmt::Display for Hour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u32> for Hour {
    fn from(h: u32) -> Self {
        Hour(h)
    }
}

impl Add<u32> for Hour {
    type Output = Hour;
    fn add(self, rhs: u32) -> Hour {
        Hour(self.0 + rhs)
    }
}

impl Sub<u32> for Hour {
    type Output = Hour;
    fn sub(self, rhs: u32) -> Hour {
        Hour(self.0.saturating_sub(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn week_indexing() {
        assert_eq!(Hour(0).week(), 0);
        assert_eq!(Hour(HOURS_PER_WEEK - 1).week(), 0);
        assert_eq!(Hour(HOURS_PER_WEEK).week(), 1);
        assert_eq!(Hour(OBSERVATION_HOURS - 1).week(), OBSERVATION_WEEKS - 1);
    }

    #[test]
    fn day_indexing() {
        assert_eq!(Hour(23).day(), 0);
        assert_eq!(Hour(24).day(), 1);
    }

    #[test]
    fn saturating_since_is_zero_when_reversed() {
        assert_eq!(Hour(5).saturating_since(Hour(10)), 0);
        assert_eq!(Hour(10).saturating_since(Hour(5)), 5);
    }

    #[test]
    fn week_range_covers_week() {
        let r = Hour::week_range(2);
        assert_eq!(r.start, Hour(2 * HOURS_PER_WEEK));
        assert_eq!(r.end, Hour(3 * HOURS_PER_WEEK));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Hour(5) + 3, Hour(8));
        assert_eq!(Hour(5) - 3, Hour(2));
        assert_eq!(Hour(2) - 5, Hour(0), "subtraction saturates");
    }

    #[test]
    fn constants_consistent() {
        assert_eq!(OBSERVATION_HOURS, 1344);
        assert_eq!(PRE_FAILURE_HOURS, 480);
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Hour::from(7u32).to_string(), "h7");
    }
}
