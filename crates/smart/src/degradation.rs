//! Failure modes and their SMART attribute signatures.
//!
//! Hard drives do not fail abruptly (with rare exceptions): a latent defect
//! accumulates and leaks into the SMART telemetry over days to weeks. The
//! paper's whole premise — in particular the health-degree model built on
//! deterioration windows — rests on this gradual process. We model it as a
//! per-drive latent deterioration level `z ∈ [0, 1]` that ramps from the
//! deterioration onset to the failure event, and a per-failure-mode
//! *signature* mapping `z` to shifts of individual attributes.

use crate::attr::{Attribute, NUM_ATTRIBUTES};

/// The dominant physical cause of a drive failure.
///
/// The mode determines *which* attributes react during deterioration, which
/// is what makes the classification tree's rules interpretable ("Q drives
/// fail with high seek error rate", §V-B1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureMode {
    /// Growing media defects: sectors get remapped, read errors climb.
    MediaDefects,
    /// Mechanical wear of the spindle/head assembly: spin-up slows, seek
    /// errors and high-fly writes increase.
    MechanicalWear,
    /// Thermal stress: the drive runs hot, seeks and reads degrade.
    Thermal,
    /// Electronics/firmware faults: uncorrectable errors reported to the
    /// host, ECC works overtime.
    Electronic,
}

/// All failure modes.
pub const ALL_FAILURE_MODES: [FailureMode; 4] = [
    FailureMode::MediaDefects,
    FailureMode::MechanicalWear,
    FailureMode::Thermal,
    FailureMode::Electronic,
];

/// Attribute shifts at full deterioration (`z = 1`).
///
/// Normalized attributes are shifted *down* by `normalized[i] * z`;
/// raw counters are increased by `raw[i] * z^1.3` (monotonically, the way
/// real error counters only ever grow).
#[derive(Debug, Clone, PartialEq)]
pub struct ModeSignature {
    /// Downward shift of each normalized attribute at `z = 1`.
    pub normalized: [f64; NUM_ATTRIBUTES],
    /// Increase of each raw counter at `z = 1`.
    pub raw: [f64; NUM_ATTRIBUTES],
}

impl ModeSignature {
    fn zero() -> Self {
        ModeSignature {
            normalized: [0.0; NUM_ATTRIBUTES],
            raw: [0.0; NUM_ATTRIBUTES],
        }
    }

    fn with_normalized(mut self, attr: Attribute, shift: f64) -> Self {
        self.normalized[attr.index()] = shift;
        self
    }

    fn with_raw(mut self, attr: Attribute, growth: f64) -> Self {
        self.raw[attr.index()] = growth;
        self
    }
}

impl FailureMode {
    /// The attribute signature of this mode, as used by family "W".
    ///
    /// Family profiles may scale these (see
    /// [`FamilyProfile`](crate::FamilyProfile)).
    #[must_use]
    pub fn signature(self) -> ModeSignature {
        use Attribute as A;
        match self {
            FailureMode::MediaDefects => ModeSignature::zero()
                .with_normalized(A::ReallocatedSectors, 65.0)
                .with_normalized(A::RawReadErrorRate, 85.0)
                .with_normalized(A::HardwareEccRecovered, 80.0)
                .with_normalized(A::ReportedUncorrectable, 45.0)
                .with_raw(A::ReallocatedSectorsRaw, 260.0),
            FailureMode::MechanicalWear => ModeSignature::zero()
                .with_normalized(A::SpinUpTime, 58.0)
                .with_normalized(A::SeekErrorRate, 78.0)
                .with_normalized(A::HighFlyWrites, 45.0)
                .with_normalized(A::RawReadErrorRate, 26.0),
            FailureMode::Thermal => ModeSignature::zero()
                .with_normalized(A::TemperatureCelsius, 62.0)
                .with_normalized(A::SeekErrorRate, 35.0)
                .with_normalized(A::RawReadErrorRate, 30.0)
                .with_normalized(A::HardwareEccRecovered, 26.0),
            FailureMode::Electronic => ModeSignature::zero()
                .with_normalized(A::ReportedUncorrectable, 42.0)
                .with_normalized(A::HardwareEccRecovered, 74.0)
                .with_normalized(A::RawReadErrorRate, 51.0)
                .with_raw(A::ReallocatedSectorsRaw, 45.0),
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FailureMode::MediaDefects => "media-defects",
            FailureMode::MechanicalWear => "mechanical-wear",
            FailureMode::Thermal => "thermal",
            FailureMode::Electronic => "electronic",
        }
    }
}

/// Shape exponent of the deterioration ramp. Values below 1 make the ramp
/// rise quickly right after onset and then grind slowly toward failure —
/// which is what produces the long detection lead times (TIA ≈ 350 h
/// average) the paper reports in Figures 3–4.
pub const RAMP_EXPONENT: f64 = 0.45;

/// Family "W"'s deterioration level immediately after the onset: a latent
/// defect manifests abruptly (a head starts mis-reading, a sector cluster
/// goes bad) and *then* grows. The jump keeps the telemetry of a
/// deteriorating drive clearly apart from healthy measurement noise, which
/// is what lets a tree place its thresholds in the gap between the two
/// populations. Families with a *small* jump (like "Q") instead produce a
/// borderline continuum that every model finds harder — and that
/// mean-squared-error learners handle worst (§V-B1).
pub const DEFAULT_ONSET_JUMP: f64 = 0.55;

/// The latent deterioration level at `hours_into_window` of a deterioration
/// window `window_hours` long, with the given onset jump.
///
/// Zero before the onset; jumps to `onset_jump` at the onset, then rises
/// steeply (see [`RAMP_EXPONENT`]) and saturates at 1.0 at the failure
/// event.
///
/// # Panics
///
/// Panics if `onset_jump` is outside `[0, 1]`.
#[must_use]
pub fn latent_level(hours_into_window: f64, window_hours: f64, onset_jump: f64) -> f64 {
    assert!((0.0..=1.0).contains(&onset_jump), "onset jump in [0, 1]");
    if window_hours <= 0.0 || hours_into_window <= 0.0 {
        return 0.0;
    }
    let ramp = (hours_into_window / window_hours)
        .clamp(0.0, 1.0)
        .powf(RAMP_EXPONENT);
    onset_jump + (1.0 - onset_jump) * ramp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latent_level_is_zero_before_onset() {
        assert_eq!(latent_level(-5.0, 100.0, 0.5), 0.0);
        assert_eq!(latent_level(0.0, 100.0, 0.5), 0.0);
    }

    #[test]
    fn latent_level_saturates_at_one() {
        assert_eq!(latent_level(100.0, 100.0, 0.5), 1.0);
        assert_eq!(latent_level(250.0, 100.0, 0.5), 1.0);
    }

    #[test]
    fn latent_level_monotone() {
        let mut prev = 0.0;
        for h in 0..=100 {
            let z = latent_level(f64::from(h), 100.0, 0.4);
            assert!(z >= prev, "z must be non-decreasing");
            prev = z;
        }
    }

    #[test]
    fn latent_level_degenerate_window() {
        assert_eq!(latent_level(5.0, 0.0, 0.5), 0.0);
    }

    #[test]
    fn every_mode_touches_some_attribute() {
        for mode in ALL_FAILURE_MODES {
            let sig = mode.signature();
            let total: f64 = sig.normalized.iter().sum::<f64>() + sig.raw.iter().sum::<f64>();
            assert!(total > 0.0, "{mode:?} has an empty signature");
        }
    }

    #[test]
    fn media_defects_grow_reallocated_raw() {
        let sig = FailureMode::MediaDefects.signature();
        assert!(sig.raw[Attribute::ReallocatedSectorsRaw.index()] > 100.0);
    }

    #[test]
    fn raw_growth_only_on_raw_counters() {
        for mode in ALL_FAILURE_MODES {
            let sig = mode.signature();
            for (i, &g) in sig.raw.iter().enumerate() {
                if g > 0.0 {
                    let attr = Attribute::from_index(i).unwrap();
                    assert!(attr.higher_is_worse(), "{mode:?} grows non-counter {attr}");
                }
            }
        }
    }

    #[test]
    fn labels_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = ALL_FAILURE_MODES.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), ALL_FAILURE_MODES.len());
    }
}
