//! SMART attribute model and synthetic data-center trace generator.
//!
//! The DSN'14 paper *Hard Drive Failure Prediction Using Classification and
//! Regression Trees* evaluates its models on a proprietary data-center
//! dataset (families "W" and "Q", 25,792 drives, hourly SMART samples over
//! eight weeks for good drives and twenty days before failure for failed
//! drives). That dataset is not publicly available, so this crate provides a
//! faithful synthetic substitute:
//!
//! * a typed model of the twelve basic SMART features of the paper's
//!   Table II ([`Attribute`]),
//! * per-family population profiles ([`FamilyProfile`]) matching the paper's
//!   Table I composition,
//! * a failure-mode-driven degradation process ([`FailureMode`],
//!   [`degradation`]) that makes failed drives deteriorate *gradually* over
//!   their last days, exactly the property the paper's health-degree model
//!   exploits,
//! * population-wide aging drift that reproduces the model-aging phenomenon
//!   behind the paper's Figures 6–9, and
//! * a deterministic, seedable, lazily-evaluated generator
//!   ([`DatasetGenerator`]) so the full 30M-sample population never has to
//!   be materialized at once.
//!
//! # Example
//!
//! ```
//! use hdd_smart::{DatasetGenerator, FamilyProfile};
//!
//! // A small deterministic population for tests and examples.
//! let dataset = DatasetGenerator::new(FamilyProfile::w().scaled(0.01), 42).generate();
//! assert!(dataset.good_drives().count() > 0);
//! let drive = dataset.good_drives().next().unwrap();
//! let series = dataset.series(drive);
//! assert!(!series.samples().is_empty());
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod attr;
pub mod csv;
pub mod dataset;
pub mod degradation;
pub mod drive;
pub mod family;
pub mod gen;
pub mod rng;
pub mod series;
pub mod time;

pub use attr::{Attribute, AttributeKind, BASIC_ATTRIBUTES, NUM_ATTRIBUTES};
pub use csv::{CsvError, CsvImport, IngestPolicy, QuarantineReport};
pub use dataset::{Dataset, DatasetStats};
pub use degradation::FailureMode;
pub use drive::{DriveClass, DriveId, DriveSpec};
pub use family::FamilyProfile;
pub use gen::DatasetGenerator;
pub use series::{SmartSample, SmartSeries};
pub use time::{Hour, HOURS_PER_DAY, HOURS_PER_WEEK, OBSERVATION_WEEKS, PRE_FAILURE_HOURS};
