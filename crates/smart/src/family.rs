//! Per-family population profiles.
//!
//! A *drive family* is a (vendor, model) line. Families differ in baseline
//! attribute distributions, noise, failure-mode mix, and fleet size; the
//! paper evaluates on family "W" (23,224 drives) and the much smaller
//! family "Q" (2,568 drives) and finds the CT model transfers while the BP
//! ANN degrades. The numbers below were calibrated so the *shape* of every
//! experiment in the paper holds; see DESIGN.md §2.

use crate::attr::{Attribute, NUM_ATTRIBUTES};
use crate::degradation::FailureMode;

/// Generative model of one normalized attribute for a family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrModel {
    /// Population mean of the per-drive baseline.
    pub base_mean: f64,
    /// Standard deviation of the per-drive baseline around the mean.
    pub base_std: f64,
    /// Per-sample measurement noise standard deviation.
    pub noise_std: f64,
    /// Fleet-wide drift per week (negative: the whole population's value
    /// declines week over week — workload intensification, room
    /// temperature, firmware counters). This is what ages prediction
    /// models (the paper's Figs. 6–9).
    pub drift_per_week: f64,
}

impl AttrModel {
    /// A constant attribute with tiny noise and no drift.
    #[must_use]
    pub fn constant(value: f64, noise_std: f64) -> Self {
        AttrModel {
            base_mean: value,
            base_std: 0.0,
            noise_std,
            drift_per_week: 0.0,
        }
    }
}

/// Distribution of observable deterioration window lengths for failed
/// drives (a mixture over how long before failure the drive's SMART
/// telemetry starts to react).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeteriorationMix {
    /// Fraction of failures that are *sudden*: nothing observable until a
    /// few hours before the event (these bound the achievable FDR).
    pub sudden: f64,
    /// Fraction with a short window, uniform in `short_range`.
    pub short: f64,
    /// Fraction with a medium window, uniform in `medium_range`.
    pub medium: f64,
    // The remaining mass has a long window, uniform in `long_range`.
    /// Short window bounds in hours.
    pub short_range: (f64, f64),
    /// Medium window bounds in hours.
    pub medium_range: (f64, f64),
    /// Long window bounds in hours.
    pub long_range: (f64, f64),
}

/// A complete per-family generative profile.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyProfile {
    /// Family label ("W", "Q").
    pub name: String,
    /// Number of good drives in the fleet.
    pub n_good: u32,
    /// Number of drives that fail during the observation period.
    pub n_failed: u32,
    /// Per-attribute baseline models (indexed by [`Attribute::index`]).
    /// `PowerOnHours` is special-cased via `poh_decay_hours`; raw counters
    /// use `raw_base_prob` / chronic levels below.
    pub attrs: [AttrModel; NUM_ATTRIBUTES],
    /// Normalized Power-On-Hours loses one point per this many hours of
    /// age, starting from 253.
    pub poh_decay_hours: f64,
    /// Good drives' age (hours) at observation start: uniform range.
    pub good_age_range: (f64, f64),
    /// Failed drives' age at observation start: uniform range (failed
    /// drives skew older — "long power on hours" is a failure cause in
    /// §V-B1).
    pub failed_age_range: (f64, f64),
    /// Mixture over failure modes, `(mode, probability)`; probabilities
    /// sum to 1.
    pub mode_mix: Vec<(FailureMode, f64)>,
    /// Scale applied to every mode signature (families react with
    /// different intensity).
    pub signature_scale: f64,
    /// Deterioration level right after the onset (see
    /// [`latent_level`](crate::degradation::latent_level)). Large values
    /// (family "W") separate deteriorating drives cleanly from healthy
    /// noise; small values (family "Q") produce a borderline continuum.
    pub onset_jump: f64,
    /// Deterioration window mixture.
    pub deterioration: DeteriorationMix,
    /// Convexity of the fleet-wide drift: the effective drift after `w`
    /// weeks is `drift_per_week × w × (w / 8)^drift_accel`. `0` is linear;
    /// `1` (the default) concentrates the drift in the later weeks, which
    /// reproduces the paper's observation that the fixed strategy's false
    /// alarm rate rises gently at first and "becomes very steep" after the
    /// sixth week (§V-B3).
    pub drift_accel: f64,
    /// Per drive-hour probability that a good drive starts a transient
    /// anomaly event (1–3 h long). Events look like brief deterioration
    /// and are the source of single-sample false alarms that voting
    /// suppresses.
    pub event_prob: f64,
    /// Per drive-day probability of a *degraded spell*: a 6–18 h episode
    /// (vibration, a flaky cable, a thermal excursion) during which the
    /// drive looks like it is deteriorating. Spells defeat small voting
    /// windows but not large ones — they are why the false alarm rate
    /// keeps falling all the way to N = 27 voters (Fig. 2).
    pub spell_prob_per_day: f64,
    /// Fraction of good drives that are chronic outliers (permanently
    /// failed-looking telemetry) — the irreducible false-alarm floor.
    pub chronic_prob: f64,
    /// Latent level range of chronic outliers.
    pub chronic_level: (f64, f64),
    /// Probability that any individual sample is missing (collection
    /// errors, §IV-A).
    pub missing_prob: f64,
    /// Probability that a good drive has a small non-zero Reallocated
    /// Sectors raw count from early-life defects.
    pub benign_realloc_prob: f64,
    /// Probability that a media-defect failure is *quiet*: sectors remap
    /// (the raw counter grows) but the analog telemetry barely reacts.
    /// Only models that exploit the raw counters catch these drives.
    pub quiet_media_prob: f64,
    /// Analog-signature multiplier of quiet media failures.
    pub quiet_media_attenuation: f64,
}

impl FamilyProfile {
    /// The paper's family "W": 22,790 good and 434 failed drives.
    #[must_use]
    pub fn w() -> Self {
        use Attribute as A;
        let mut attrs = [AttrModel::constant(100.0, 0.5); NUM_ATTRIBUTES];
        attrs[A::RawReadErrorRate.index()] = AttrModel {
            base_mean: 115.0,
            base_std: 3.5,
            noise_std: 2.4,
            drift_per_week: -0.85,
        };
        attrs[A::SpinUpTime.index()] = AttrModel {
            base_mean: 97.0,
            base_std: 2.5,
            noise_std: 1.2,
            drift_per_week: -0.3,
        };
        attrs[A::ReallocatedSectors.index()] = AttrModel {
            base_mean: 100.0,
            base_std: 1.5,
            noise_std: 0.4,
            drift_per_week: 0.0,
        };
        attrs[A::SeekErrorRate.index()] = AttrModel {
            base_mean: 75.0,
            base_std: 4.0,
            noise_std: 2.6,
            drift_per_week: -0.68,
        };
        // PowerOnHours is derived from drive age; only its noise is used.
        attrs[A::PowerOnHours.index()] = AttrModel::constant(0.0, 0.1);
        attrs[A::ReportedUncorrectable.index()] = AttrModel {
            base_mean: 100.0,
            base_std: 1.0,
            noise_std: 0.4,
            drift_per_week: 0.0,
        };
        attrs[A::HighFlyWrites.index()] = AttrModel {
            base_mean: 100.0,
            base_std: 2.0,
            noise_std: 0.8,
            drift_per_week: -0.3,
        };
        attrs[A::TemperatureCelsius.index()] = AttrModel {
            base_mean: 65.0,
            base_std: 3.0,
            noise_std: 2.4,
            drift_per_week: -1.25,
        };
        attrs[A::HardwareEccRecovered.index()] = AttrModel {
            base_mean: 110.0,
            base_std: 4.0,
            noise_std: 1.2,
            drift_per_week: -0.75,
        };
        // Current Pending Sector Count carries no class signal (the paper's
        // statistical feature selection rejects it): near-constant
        // normalized value and symmetric transient raw counts.
        attrs[A::CurrentPendingSector.index()] = AttrModel::constant(100.0, 0.3);
        attrs[A::ReallocatedSectorsRaw.index()] = AttrModel::constant(0.0, 0.0);
        attrs[A::CurrentPendingSectorRaw.index()] = AttrModel::constant(0.0, 0.0);

        FamilyProfile {
            name: "W".to_string(),
            n_good: 22_790,
            n_failed: 434,
            attrs,
            poh_decay_hours: 250.0,
            good_age_range: (2_000.0, 36_000.0),
            failed_age_range: (20_000.0, 48_000.0),
            mode_mix: vec![
                (FailureMode::MediaDefects, 0.40),
                (FailureMode::MechanicalWear, 0.25),
                (FailureMode::Thermal, 0.20),
                (FailureMode::Electronic, 0.15),
            ],
            signature_scale: 1.0,
            onset_jump: crate::degradation::DEFAULT_ONSET_JUMP,
            drift_accel: 0.8,
            deterioration: DeteriorationMix {
                sudden: 0.07,
                short: 0.075,
                medium: 0.215,
                short_range: (6.0, 48.0),
                medium_range: (200.0, 400.0),
                long_range: (400.0, 472.0),
            },
            event_prob: 2.5e-5,
            spell_prob_per_day: 2.2e-4,
            chronic_prob: 1.2e-4,
            chronic_level: (0.3, 0.6),
            missing_prob: 0.02,
            benign_realloc_prob: 0.18,
            quiet_media_prob: 0.20,
            quiet_media_attenuation: 0.0,
        }
    }

    /// The paper's family "Q": 2,441 good and 127 failed drives.
    ///
    /// Q drives are noisier and fail predominantly through mechanical wear
    /// and thermal stress ("long POH, high temperature or high seek error
    /// rate", §V-B1), which makes prediction harder than on "W".
    #[must_use]
    pub fn q() -> Self {
        use Attribute as A;
        let mut profile = FamilyProfile::w();
        profile.name = "Q".to_string();
        profile.n_good = 2_441;
        profile.n_failed = 127;
        // Different vendor calibration and noisier telemetry.
        profile.attrs[A::RawReadErrorRate.index()] = AttrModel {
            base_mean: 103.0,
            base_std: 4.5,
            noise_std: 3.2,
            drift_per_week: -0.8,
        };
        profile.attrs[A::SeekErrorRate.index()] = AttrModel {
            base_mean: 82.0,
            base_std: 5.5,
            noise_std: 3.0,
            drift_per_week: -0.8,
        };
        profile.attrs[A::TemperatureCelsius.index()] = AttrModel {
            base_mean: 58.0,
            base_std: 4.0,
            noise_std: 3.0,
            drift_per_week: -1.3,
        };
        profile.attrs[A::HardwareEccRecovered.index()] = AttrModel {
            base_mean: 104.0,
            base_std: 5.0,
            noise_std: 1.8,
            drift_per_week: -0.8,
        };
        profile.mode_mix = vec![
            (FailureMode::MediaDefects, 0.18),
            (FailureMode::MechanicalWear, 0.42),
            (FailureMode::Thermal, 0.30),
            (FailureMode::Electronic, 0.10),
        ];
        profile.signature_scale = 0.7;
        profile.onset_jump = 0.18;
        profile.failed_age_range = (20_000.0, 40_000.0);
        profile.event_prob = 6.0e-5;
        profile.spell_prob_per_day = 1.6e-3;
        profile.chronic_prob = 6.0e-4;
        // Q fails faster and less predictably: no truly sudden failures,
        // but many short deterioration windows that large voting windows
        // miss (Fig. 5: FDR falls from 100% to ~93.5% as N grows).
        profile.deterioration = DeteriorationMix {
            sudden: 0.0,
            short: 0.22,
            medium: 0.18,
            short_range: (3.0, 24.0),
            medium_range: (150.0, 340.0),
            long_range: (340.0, 440.0),
        };
        profile.quiet_media_prob = 0.50;
        profile
    }

    /// Scale the fleet size by `fraction` (experiments default to reduced
    /// populations; `--scale 1.0` reproduces the paper's counts).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`... it may exceed 1 for
    /// stress tests, but must be positive and finite.
    #[must_use]
    pub fn scaled(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction.is_finite(),
            "scale fraction must be positive and finite"
        );
        self.n_good = ((f64::from(self.n_good) * fraction).round() as u32).max(1);
        self.n_failed = ((f64::from(self.n_failed) * fraction).round() as u32).max(1);
        self
    }

    /// Fleet size (good + failed).
    #[must_use]
    pub fn n_total(&self) -> u32 {
        self.n_good + self.n_failed
    }

    /// Validate internal consistency (mode mix sums to 1, probabilities in
    /// range). Returns a description of the first problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable reason if any probability is out
    /// of range or the mode mix does not sum to 1.
    pub fn validate(&self) -> Result<(), String> {
        let mix_sum: f64 = self.mode_mix.iter().map(|(_, p)| p).sum();
        if (mix_sum - 1.0).abs() > 1e-9 {
            return Err(format!("mode mix sums to {mix_sum}, expected 1.0"));
        }
        for (mode, p) in &self.mode_mix {
            if !(0.0..=1.0).contains(p) {
                return Err(format!("mode {mode:?} probability {p} out of range"));
            }
        }
        for (name, p) in [
            ("event_prob", self.event_prob),
            ("spell_prob_per_day", self.spell_prob_per_day),
            ("chronic_prob", self.chronic_prob),
            ("missing_prob", self.missing_prob),
            ("benign_realloc_prob", self.benign_realloc_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} out of range"));
            }
        }
        let d = &self.deterioration;
        if d.sudden + d.short + d.medium > 1.0 + 1e-9 {
            return Err("deterioration mixture exceeds 1".to_string());
        }
        if self.n_failed == 0 || self.n_good == 0 {
            return Err("fleet must contain both good and failed drives".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_one() {
        let w = FamilyProfile::w();
        assert_eq!(w.n_good, 22_790);
        assert_eq!(w.n_failed, 434);
        let q = FamilyProfile::q();
        assert_eq!(q.n_good, 2_441);
        assert_eq!(q.n_failed, 127);
    }

    #[test]
    fn presets_validate() {
        FamilyProfile::w().validate().unwrap();
        FamilyProfile::q().validate().unwrap();
    }

    #[test]
    fn scaled_rounds_and_keeps_minimum() {
        let w = FamilyProfile::w().scaled(0.01);
        assert_eq!(w.n_good, 228);
        assert_eq!(w.n_failed, 4);
        let tiny = FamilyProfile::w().scaled(1e-6);
        assert_eq!(tiny.n_good, 1);
        assert_eq!(tiny.n_failed, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        let _ = FamilyProfile::w().scaled(0.0);
    }

    #[test]
    fn validate_catches_bad_mix() {
        let mut w = FamilyProfile::w();
        w.mode_mix[0].1 = 0.9;
        assert!(w.validate().is_err());
    }

    #[test]
    fn validate_catches_empty_fleet() {
        let mut w = FamilyProfile::w();
        w.n_failed = 0;
        assert!(w.validate().is_err());
    }

    #[test]
    fn q_is_smaller_and_noisier() {
        let w = FamilyProfile::w();
        let q = FamilyProfile::q();
        assert!(q.n_total() < w.n_total() / 5);
        assert!(q.event_prob > w.event_prob);
    }

    #[test]
    fn total_counts() {
        assert_eq!(FamilyProfile::w().n_total(), 23_224);
        assert_eq!(FamilyProfile::q().n_total(), 2_568);
    }
}
