//! The twelve basic SMART features of the paper's Table II.
//!
//! Each SMART attribute has a vendor-specific six-byte *raw* value and a
//! one-byte *normalized* value in 1–253 derived from it. Normalized values
//! conventionally *decrease* as the drive's condition worsens. The paper
//! keeps ten normalized values plus the raw values of *Reallocated Sectors
//! Count* and *Current Pending Sector Count* because those raw counters are
//! more sensitive than their saturating normalized forms.

use std::fmt;

/// Number of basic features (Table II rows).
pub const NUM_ATTRIBUTES: usize = 12;

/// One of the twelve basic SMART features used for model building.
///
/// The discriminants match the `ID #` column of Table II (1-based in the
/// paper; stored 0-based here for direct indexing into sample vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Attribute {
    /// Normalized *Raw Read Error Rate* (SMART 1).
    RawReadErrorRate = 0,
    /// Normalized *Spin Up Time* (SMART 3).
    SpinUpTime = 1,
    /// Normalized *Reallocated Sectors Count* (SMART 5).
    ReallocatedSectors = 2,
    /// Normalized *Seek Error Rate* (SMART 7).
    SeekErrorRate = 3,
    /// Normalized *Power On Hours* (SMART 9). Decreases as the drive ages.
    PowerOnHours = 4,
    /// Normalized *Reported Uncorrectable Errors* (SMART 187).
    ReportedUncorrectable = 5,
    /// Normalized *High Fly Writes* (SMART 189).
    HighFlyWrites = 6,
    /// Normalized *Temperature Celsius* (SMART 194). Lower is hotter.
    TemperatureCelsius = 7,
    /// Normalized *Hardware ECC Recovered* (SMART 195).
    HardwareEccRecovered = 8,
    /// Normalized *Current Pending Sector Count* (SMART 197).
    CurrentPendingSector = 9,
    /// Raw *Reallocated Sectors Count* (SMART 5, raw counter).
    ReallocatedSectorsRaw = 10,
    /// Raw *Current Pending Sector Count* (SMART 197, raw counter).
    CurrentPendingSectorRaw = 11,
}

/// Whether a feature is a 1–253 normalized value or a raw counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeKind {
    /// One-byte normalized value in 1–253; lower means less healthy.
    Normalized,
    /// Vendor raw counter; higher means less healthy.
    RawCounter,
}

/// All twelve basic features in Table II order.
pub const BASIC_ATTRIBUTES: [Attribute; NUM_ATTRIBUTES] = [
    Attribute::RawReadErrorRate,
    Attribute::SpinUpTime,
    Attribute::ReallocatedSectors,
    Attribute::SeekErrorRate,
    Attribute::PowerOnHours,
    Attribute::ReportedUncorrectable,
    Attribute::HighFlyWrites,
    Attribute::TemperatureCelsius,
    Attribute::HardwareEccRecovered,
    Attribute::CurrentPendingSector,
    Attribute::ReallocatedSectorsRaw,
    Attribute::CurrentPendingSectorRaw,
];

impl Attribute {
    /// Zero-based index of this feature in a sample's value vector.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The feature at `index`, if `index < NUM_ATTRIBUTES`.
    #[must_use]
    pub fn from_index(index: usize) -> Option<Attribute> {
        BASIC_ATTRIBUTES.get(index).copied()
    }

    /// The attribute name as printed in Table II.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Attribute::RawReadErrorRate => "Raw Read Error Rate",
            Attribute::SpinUpTime => "Spin Up Time",
            Attribute::ReallocatedSectors => "Reallocated Sectors Count",
            Attribute::SeekErrorRate => "Seek Error Rate",
            Attribute::PowerOnHours => "Power On Hours",
            Attribute::ReportedUncorrectable => "Reported Uncorrectable Errors",
            Attribute::HighFlyWrites => "High Fly Writes",
            Attribute::TemperatureCelsius => "Temperature Celsius",
            Attribute::HardwareEccRecovered => "Hardware ECC Recovered",
            Attribute::CurrentPendingSector => "Current Pending Sector Count",
            Attribute::ReallocatedSectorsRaw => "Reallocated Sectors Count (raw value)",
            Attribute::CurrentPendingSectorRaw => "Current Pending Sector Count (raw value)",
        }
    }

    /// Short mnemonic used when printing decision rules (e.g. `POH`, `RUE`),
    /// matching the abbreviations of the paper's Figure 1.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Attribute::RawReadErrorRate => "RRER",
            Attribute::SpinUpTime => "SUT",
            Attribute::ReallocatedSectors => "RSC",
            Attribute::SeekErrorRate => "SER",
            Attribute::PowerOnHours => "POH",
            Attribute::ReportedUncorrectable => "RUE",
            Attribute::HighFlyWrites => "HFW",
            Attribute::TemperatureCelsius => "TC",
            Attribute::HardwareEccRecovered => "HER",
            Attribute::CurrentPendingSector => "CPSC",
            Attribute::ReallocatedSectorsRaw => "RSC_raw",
            Attribute::CurrentPendingSectorRaw => "CPSC_raw",
        }
    }

    /// Whether the feature is a normalized value or a raw counter.
    #[must_use]
    pub fn kind(self) -> AttributeKind {
        match self {
            Attribute::ReallocatedSectorsRaw | Attribute::CurrentPendingSectorRaw => {
                AttributeKind::RawCounter
            }
            _ => AttributeKind::Normalized,
        }
    }

    /// `true` if *larger* values indicate a *less* healthy drive.
    ///
    /// Raw counters grow as errors accumulate; normalized values shrink.
    #[must_use]
    pub fn higher_is_worse(self) -> bool {
        matches!(self.kind(), AttributeKind::RawCounter)
    }

    /// Clamp a generated value to this feature's domain.
    ///
    /// Normalized values live in `[1, 253]`; raw counters are non-negative.
    #[must_use]
    pub fn clamp(self, value: f64) -> f64 {
        match self.kind() {
            AttributeKind::Normalized => value.clamp(1.0, 253.0),
            AttributeKind::RawCounter => value.max(0.0),
        }
    }

    /// The SMART ID reported by drives for this attribute.
    #[must_use]
    pub fn smart_id(self) -> u8 {
        match self {
            Attribute::RawReadErrorRate => 1,
            Attribute::SpinUpTime => 3,
            Attribute::ReallocatedSectors | Attribute::ReallocatedSectorsRaw => 5,
            Attribute::SeekErrorRate => 7,
            Attribute::PowerOnHours => 9,
            Attribute::ReportedUncorrectable => 187,
            Attribute::HighFlyWrites => 189,
            Attribute::TemperatureCelsius => 194,
            Attribute::HardwareEccRecovered => 195,
            Attribute::CurrentPendingSector | Attribute::CurrentPendingSectorRaw => 197,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_bijective() {
        for (i, attr) in BASIC_ATTRIBUTES.iter().enumerate() {
            assert_eq!(attr.index(), i);
            assert_eq!(Attribute::from_index(i), Some(*attr));
        }
        assert_eq!(Attribute::from_index(NUM_ATTRIBUTES), None);
    }

    #[test]
    fn exactly_two_raw_counters() {
        let raw: Vec<_> = BASIC_ATTRIBUTES
            .iter()
            .filter(|a| a.kind() == AttributeKind::RawCounter)
            .collect();
        assert_eq!(
            raw,
            vec![
                &Attribute::ReallocatedSectorsRaw,
                &Attribute::CurrentPendingSectorRaw
            ]
        );
    }

    #[test]
    fn clamp_respects_domains() {
        assert_eq!(Attribute::PowerOnHours.clamp(300.0), 253.0);
        assert_eq!(Attribute::PowerOnHours.clamp(-5.0), 1.0);
        assert_eq!(Attribute::ReallocatedSectorsRaw.clamp(-5.0), 0.0);
        assert_eq!(Attribute::ReallocatedSectorsRaw.clamp(1e9), 1e9);
    }

    #[test]
    fn raw_counters_higher_is_worse() {
        assert!(Attribute::ReallocatedSectorsRaw.higher_is_worse());
        assert!(!Attribute::PowerOnHours.higher_is_worse());
    }

    #[test]
    fn names_and_mnemonics_unique() {
        use std::collections::HashSet;
        let names: HashSet<_> = BASIC_ATTRIBUTES.iter().map(|a| a.name()).collect();
        let mnems: HashSet<_> = BASIC_ATTRIBUTES.iter().map(|a| a.mnemonic()).collect();
        assert_eq!(names.len(), NUM_ATTRIBUTES);
        assert_eq!(mnems.len(), NUM_ATTRIBUTES);
    }

    #[test]
    fn paired_attrs_share_smart_id() {
        assert_eq!(
            Attribute::ReallocatedSectors.smart_id(),
            Attribute::ReallocatedSectorsRaw.smart_id()
        );
        assert_eq!(
            Attribute::CurrentPendingSector.smart_id(),
            Attribute::CurrentPendingSectorRaw.smart_id()
        );
    }

    #[test]
    fn display_uses_table_name() {
        assert_eq!(
            Attribute::PowerOnHours.to_string(),
            "Power On Hours".to_string()
        );
    }
}
