//! SMART sample records and per-drive time series.

use crate::attr::{Attribute, NUM_ATTRIBUTES};
use crate::drive::{DriveClass, DriveId};
use crate::time::Hour;

/// One hourly SMART reading: the twelve basic feature values of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartSample {
    /// Hour the sample was collected.
    pub hour: Hour,
    /// Feature values indexed by [`Attribute::index`]; normalized values in
    /// 1–253 and raw counters as non-negative counts, stored as `f32`.
    pub values: [f32; NUM_ATTRIBUTES],
}

impl SmartSample {
    /// Value of `attr` in this sample.
    #[must_use]
    pub fn value(&self, attr: Attribute) -> f64 {
        f64::from(self.values[attr.index()])
    }
}

/// The recorded series of one drive: hourly samples over its recorded
/// window, possibly with gaps (missing samples).
#[derive(Debug, Clone, PartialEq)]
pub struct SmartSeries {
    /// The drive this series belongs to.
    pub drive: DriveId,
    /// Ground-truth class of the drive.
    pub class: DriveClass,
    samples: Vec<SmartSample>,
}

impl SmartSeries {
    /// Build a series from samples.
    ///
    /// # Panics
    ///
    /// Panics if samples are not strictly increasing in time.
    #[must_use]
    pub fn new(drive: DriveId, class: DriveClass, samples: Vec<SmartSample>) -> Self {
        assert!(
            samples.windows(2).all(|w| w[0].hour < w[1].hour),
            "samples must be strictly increasing in time"
        );
        SmartSeries {
            drive,
            class,
            samples,
        }
    }

    /// All samples, in chronological order.
    #[must_use]
    pub fn samples(&self) -> &[SmartSample] {
        &self.samples
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples with `range.start <= hour < range.end`, chronological.
    #[must_use]
    pub fn in_range(&self, range: std::ops::Range<Hour>) -> &[SmartSample] {
        let start = self.samples.partition_point(|s| s.hour < range.start);
        let end = self.samples.partition_point(|s| s.hour < range.end);
        &self.samples[start..end]
    }

    /// The most recent sample at or before `hour`, if any.
    #[must_use]
    pub fn latest_at(&self, hour: Hour) -> Option<&SmartSample> {
        let idx = self.samples.partition_point(|s| s.hour <= hour);
        idx.checked_sub(1).map(|i| &self.samples[i])
    }

    /// The value of `attr` as a `(hour, value)` time series.
    pub fn attribute_series(&self, attr: Attribute) -> impl Iterator<Item = (Hour, f64)> + '_ {
        self.samples.iter().map(move |s| (s.hour, s.value(attr)))
    }

    /// Hours in advance of failure for a sample at `hour`; `None` for good
    /// drives.
    #[must_use]
    pub fn hours_before_failure(&self, hour: Hour) -> Option<u32> {
        self.class.fail_hour().map(|f| f.saturating_since(hour))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(hour: u32, fill: f32) -> SmartSample {
        SmartSample {
            hour: Hour(hour),
            values: [fill; NUM_ATTRIBUTES],
        }
    }

    fn series(hours: &[u32]) -> SmartSeries {
        SmartSeries::new(
            DriveId(1),
            DriveClass::Good,
            hours.iter().map(|&h| sample(h, 1.0)).collect(),
        )
    }

    #[test]
    fn in_range_selects_half_open_interval() {
        let s = series(&[0, 5, 10, 15, 20]);
        let got: Vec<u32> = s
            .in_range(Hour(5)..Hour(20))
            .iter()
            .map(|x| x.hour.0)
            .collect();
        assert_eq!(got, vec![5, 10, 15]);
    }

    #[test]
    fn in_range_empty_interval() {
        let s = series(&[0, 5, 10]);
        assert!(s.in_range(Hour(6)..Hour(6)).is_empty());
        assert!(s.in_range(Hour(11)..Hour(50)).is_empty());
    }

    #[test]
    fn latest_at_finds_preceding_sample() {
        let s = series(&[0, 5, 10]);
        assert_eq!(s.latest_at(Hour(7)).unwrap().hour, Hour(5));
        assert_eq!(s.latest_at(Hour(5)).unwrap().hour, Hour(5));
        assert!(s.latest_at(Hour(0)).is_some());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn constructor_rejects_unordered() {
        let _ = series(&[5, 5]);
    }

    #[test]
    fn hours_before_failure() {
        let s = SmartSeries::new(
            DriveId(2),
            DriveClass::Failed {
                fail_hour: Hour(100),
            },
            vec![sample(40, 0.0)],
        );
        assert_eq!(s.hours_before_failure(Hour(40)), Some(60));
        assert_eq!(s.hours_before_failure(Hour(100)), Some(0));
        assert_eq!(series(&[0]).hours_before_failure(Hour(0)), None);
    }

    #[test]
    fn attribute_series_extracts_column() {
        let s = series(&[0, 1]);
        let vals: Vec<(Hour, f64)> = s.attribute_series(Attribute::PowerOnHours).collect();
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0], (Hour(0), 1.0));
    }

    #[test]
    fn len_and_empty() {
        assert!(series(&[]).is_empty());
        assert_eq!(series(&[1, 2, 3]).len(), 3);
    }
}
